"""Tests of the parallel sweep runner and the content-addressed cache.

The load-bearing properties:

* parallel execution returns results bit-identical to serial,
* a warm cache serves a repeated sweep with zero simulations executed,
* cache keys track config content and code version (invalidation),
* corrupt cache entries degrade to misses, never errors.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.experiments.common import SingleHopConfig
from repro.experiments.figure1 import FigureOneConfig, run_figure1
from repro.runner import (
    ResultCache,
    SingleHopTask,
    SweepRunner,
    cache_key,
    canonical_payload,
    code_version,
    dependency_closure,
    fingerprint,
    module_imports,
    serial_runner,
    single_hop_summary,
    worker_code_version,
    worker_manifest,
)

#: Laptop-sized Figure 1 slice: 2 schedulers x 2 loads x 2 seeds.
TINY_FIG1 = FigureOneConfig(
    utilizations=(0.8, 0.92),
    seeds=(1, 2),
    horizon=2e4,
    warmup=1e3,
    check_feasibility=False,
)


def small_task(seed: int = 1) -> SingleHopTask:
    return SingleHopTask(
        config=SingleHopConfig(
            scheduler="wtp", utilization=0.9, horizon=5e3, warmup=200.0,
            seed=seed,
        )
    )


class TestHashing:
    def test_fingerprint_is_stable(self):
        task = small_task()
        assert fingerprint(canonical_payload(task)) == fingerprint(
            canonical_payload(small_task())
        )

    def test_fingerprint_tracks_config_content(self):
        assert fingerprint(canonical_payload(small_task(1))) != fingerprint(
            canonical_payload(small_task(2))
        )

    def test_canonical_payload_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonical_payload(object())

    def test_code_version_is_a_hex_digest(self):
        version = code_version()
        assert len(version) == 64
        int(version, 16)

    def test_cache_key_depends_on_worker_name(self):
        task = small_task()

        def other_worker(t):  # pragma: no cover - never called
            return t

        assert cache_key(single_hop_summary, task) != cache_key(
            other_worker, task
        )


class TestResultCache:
    def test_get_put_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        payload = {"ratios": [1.5, float("nan")], "n": 3}
        cache.put(key, payload)
        got = cache.get(key)
        assert got["n"] == 3
        assert got["ratios"][0] == 1.5
        assert math.isnan(got["ratios"][1])
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" + "0" * 62) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{ truncated")
        assert cache.get(key) is None

    def test_entry_with_wrong_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "12" + "0" * 62
        cache.put(key, {"x": 1})
        moved = "12" + "f" * 62
        cache.path_for(key).rename(cache.path_for(moved))
        assert cache.get(moved) is None

    def test_len_contains_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [c * 64 for c in "abc"]
        for key in keys:
            cache.put(key, {"k": key})
        assert len(cache) == 3
        assert keys[0] in cache
        assert cache.clear() == 3
        assert len(cache) == 0


class TestSweepRunner:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_jobs_none_means_cpu_count(self):
        assert SweepRunner(jobs=None).jobs >= 1

    def test_map_preserves_task_order(self):
        runner = serial_runner()
        tasks = [small_task(seed) for seed in (3, 1, 2)]
        summaries = runner.map(single_hop_summary, tasks)
        expected = [single_hop_summary(t) for t in tasks]
        assert summaries == expected

    def test_parallel_equals_serial(self):
        """Figure 1 via 2 worker processes == the serial reference, bit for bit."""
        serial = run_figure1(TINY_FIG1, runner=serial_runner())
        parallel = run_figure1(TINY_FIG1, runner=SweepRunner(jobs=2))
        assert serial == parallel

    def test_warm_cache_executes_zero_simulations(self, tmp_path):
        cold = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        first = run_figure1(TINY_FIG1, runner=cold)
        assert all(r.cache_hits == 0 for r in cold.reports)
        executed_cold = sum(r.executed for r in cold.reports)
        assert executed_cold == len(TINY_FIG1.utilizations) * 2 * len(
            TINY_FIG1.seeds
        )

        warm = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        second = run_figure1(TINY_FIG1, runner=warm)
        assert sum(r.executed for r in warm.reports) == 0
        assert sum(r.cache_hits for r in warm.reports) == executed_cold
        assert first == second

    def test_cached_results_match_fresh_exactly(self, tmp_path):
        """JSON round-trip through the cache must not perturb any float."""
        task = small_task()
        fresh = single_hop_summary(task)
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        runner.map(single_hop_summary, [task])
        (cached,) = SweepRunner(jobs=1, cache=ResultCache(tmp_path)).map(
            single_hop_summary, [task]
        )
        assert cached == fresh

    def test_changed_config_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        runner.map(single_hop_summary, [small_task(1)])
        runner.map(single_hop_summary, [small_task(2)])
        assert runner.reports[1].cache_hits == 0
        assert runner.reports[1].executed == 1

    def test_report_summary_mentions_counts(self):
        runner = serial_runner()
        runner.map(single_hop_summary, [small_task()])
        report = runner.last_report
        assert report.total == 1 and report.executed == 1
        assert "1 runs" in report.summary()
        assert "cache hits" in report.summary()


class TestDeltaAwareHashing:
    def test_package_worker_uses_closure_version(self):
        # single_hop_summary lives in repro.runner.tasks; its version
        # must track the closure manifest, not the whole package.
        version = worker_code_version(single_hop_summary)
        assert version != code_version()
        manifest = worker_manifest(single_hop_summary)
        assert "repro.runner.tasks" in manifest
        assert "repro.sim.link" in manifest
        assert "repro.cli" not in manifest

    def test_outside_worker_falls_back_to_package_version(self):
        def local_worker(task):  # pragma: no cover - never called
            return task

        assert worker_code_version(local_worker) == code_version()
        assert worker_manifest(local_worker) == {}

    def test_closure_is_transitive_and_sorted(self):
        closure = dependency_closure("repro.runner.tasks")
        assert closure == tuple(sorted(closure))
        assert "repro.runner.tasks" in closure
        # The sim engine is only reached through intermediate modules.
        assert "repro.sim.engine" in closure

    def test_module_imports_sees_lazy_imports(self):
        # runner.tasks imports the experiment helpers lazily inside the
        # worker function body; the AST walk must still find them.
        assert "repro.experiments.common" in module_imports(
            "repro.runner.tasks"
        )


class TestWarmPoolAndChunks:
    def test_pool_persists_across_maps(self):
        with SweepRunner(jobs=2) as runner:
            runner.map(single_hop_summary, [small_task(1), small_task(2)])
            first_pool = runner._pool
            runner.map(single_hop_summary, [small_task(3), small_task(4)])
            assert runner._pool is first_pool
        assert runner._pool is None  # released on exit

    def test_shutdown_is_idempotent(self):
        runner = SweepRunner(jobs=2)
        runner.shutdown()
        runner.shutdown()

    def test_auto_chunksize_matches_serial(self):
        tasks = [small_task(seed) for seed in (1, 2, 3, 4, 5)]
        serial = serial_runner().map(single_hop_summary, tasks)
        with SweepRunner(jobs=2, chunksize=0) as runner:
            chunked = runner.map(single_hop_summary, tasks)
        assert chunked == serial

    def test_rejects_negative_chunksize(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=1, chunksize=-1)


class TestTaskShape:
    def test_tasks_are_frozen_and_hashable(self):
        task = small_task()
        with pytest.raises(dataclasses.FrozenInstanceError):
            task.scheduler = "bpr"
        hash(task)

    def test_summary_payload_is_json_able(self):
        summary = single_hop_summary(small_task())
        round_tripped = json.loads(json.dumps(summary))
        assert round_tripped["target_ratios"] == summary["target_ratios"]
