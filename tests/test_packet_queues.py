"""Tests for Packet and ClassQueueSet."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sim.queues import ClassQueueSet

from .conftest import make_packet


class TestPacket:
    def test_queueing_delay_is_wait_until_service(self):
        packet = make_packet(created_at=10.0)
        packet.arrived_at = 10.0
        packet.service_start = 25.0
        assert packet.queueing_delay == 15.0

    def test_total_queueing_delay_sums_hops(self):
        packet = make_packet()
        packet.hop_delays.extend([3.0, 4.5, 0.5])
        assert packet.total_queueing_delay == 8.0

    def test_new_packet_has_no_hop_history(self):
        assert make_packet().hop_delays == []

    def test_arrived_at_initialized_to_creation(self):
        packet = make_packet(created_at=42.0)
        assert packet.arrived_at == 42.0

    def test_flow_id_defaults_to_none(self):
        assert make_packet().flow_id is None

    def test_hop_delays_are_per_instance(self):
        a, b = make_packet(0), make_packet(1)
        a.hop_delays.append(1.0)
        assert b.hop_delays == []


class TestClassQueueSet:
    def test_push_pop_fifo_within_class(self):
        queues = ClassQueueSet(2)
        first = make_packet(0, class_id=1)
        second = make_packet(1, class_id=1)
        queues.push(first)
        queues.push(second)
        assert queues.pop(1) is first
        assert queues.pop(1) is second

    def test_byte_accounting(self):
        queues = ClassQueueSet(2)
        queues.push(make_packet(0, class_id=0, size=100.0))
        queues.push(make_packet(1, class_id=0, size=50.0))
        queues.push(make_packet(2, class_id=1, size=25.0))
        assert queues.backlog_bytes(0) == 150.0
        assert queues.backlog_bytes(1) == 25.0
        assert queues.total_bytes == 175.0
        queues.pop(0)
        assert queues.backlog_bytes(0) == 50.0

    def test_packet_accounting(self):
        queues = ClassQueueSet(3)
        for i in range(5):
            queues.push(make_packet(i, class_id=i % 3))
        assert queues.total_packets == 5
        assert len(queues) == 5
        assert queues.backlog_packets(0) == 2
        assert queues.backlog_packets(2) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            ClassQueueSet(1).pop(0)

    def test_pop_tail_removes_newest(self):
        queues = ClassQueueSet(1)
        first = make_packet(0)
        second = make_packet(1)
        queues.push(first)
        queues.push(second)
        assert queues.pop_tail(0) is second
        assert queues.pop(0) is first

    def test_pop_tail_empty_raises(self):
        with pytest.raises(SchedulingError):
            ClassQueueSet(1).pop_tail(0)

    def test_head_peeks_without_removal(self):
        queues = ClassQueueSet(1)
        packet = make_packet(0)
        queues.push(packet)
        assert queues.head(0) is packet
        assert queues.total_packets == 1

    def test_head_of_empty_is_none(self):
        assert ClassQueueSet(2).head(1) is None

    def test_out_of_range_class_raises(self):
        queues = ClassQueueSet(2)
        with pytest.raises(SchedulingError):
            queues.push(make_packet(0, class_id=5))

    def test_backlogged_classes_iterates_nonempty(self):
        queues = ClassQueueSet(4)
        queues.push(make_packet(0, class_id=1))
        queues.push(make_packet(1, class_id=3))
        assert list(queues.backlogged_classes()) == [1, 3]

    def test_is_empty(self):
        queues = ClassQueueSet(1)
        assert queues.is_empty()
        queues.push(make_packet(0))
        assert not queues.is_empty()
        queues.pop(0)
        assert queues.is_empty()

    def test_zero_classes_rejected(self):
        with pytest.raises(SchedulingError):
            ClassQueueSet(0)
