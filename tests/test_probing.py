"""Tests for the active probing estimator."""

from __future__ import annotations

import math

import pytest

from repro.analysis import ProbeInjector
from repro.errors import ConfigurationError
from repro.schedulers import WTPScheduler
from repro.sim import DelayMonitor, Link, PacketSink, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import (
    PacketIdAllocator,
    ParetoInterarrivals,
    TrafficSource,
    paper_trimodal_sizes,
)
from repro.units import PAPER_LINK_CAPACITY


def build_probed_link(utilization=0.95, horizon=1.5e5, probe_period=500.0,
                      seed=31):
    sim = Simulator()
    streams = RandomStreams(seed)
    link = Link(
        sim, WTPScheduler((1.0, 2.0, 4.0, 8.0)), PAPER_LINK_CAPACITY,
        target=PacketSink(),
    )
    truth = DelayMonitor(4, warmup=horizon * 0.05)
    link.add_monitor(truth)
    probes = ProbeInjector(sim, link, num_classes=4, period=probe_period)
    link.add_monitor(probes)
    probes.start()
    ids = PacketIdAllocator()
    sizes_mean = paper_trimodal_sizes().mean
    shares = (0.4, 0.3, 0.2, 0.1)
    for cid, share in enumerate(shares):
        rate = utilization * PAPER_LINK_CAPACITY / sizes_mean * share
        TrafficSource(
            sim, link, cid,
            ParetoInterarrivals(1.0 / rate, rng=streams.generator()),
            paper_trimodal_sizes(streams.generator()), ids=ids,
        ).start()
    sim.run(until=horizon)
    return probes, truth, link


class TestProbeInjector:
    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            ProbeInjector(sim, PacketSink(), 0, period=1.0)
        with pytest.raises(ConfigurationError):
            ProbeInjector(sim, PacketSink(), 2, period=0.0)

    def test_probe_load_is_negligible(self, sim):
        probes = ProbeInjector(sim, PacketSink(), 4, period=500.0)
        assert probes.offered_probe_load() < 0.01 * PAPER_LINK_CAPACITY

    def test_probes_emitted_periodically(self, sim):
        sink = PacketSink(keep_packets=True)
        probes = ProbeInjector(sim, sink, num_classes=2, period=10.0)
        probes.start()
        sim.run(until=100.0)
        assert probes.probes_sent() == sink.received
        assert probes.probes_sent() >= 18
        classes = {p.class_id for p in sink.packets}
        assert classes == {0, 1}

    def test_start_idempotent(self, sim):
        sink = PacketSink()
        probes = ProbeInjector(sim, sink, 1, period=10.0)
        probes.start()
        probes.start()
        sim.run(until=55.0)
        assert sink.received == 5

    def test_estimates_track_ground_truth(self):
        probes, truth, _ = build_probed_link()
        estimated = probes.estimated_delays()
        actual = truth.mean_delays()
        for cid in range(4):
            assert not math.isnan(estimated[cid])
            # Probes are sparse samples of a heavy-tailed process: accept
            # a generous band, but they must be the right magnitude.
            assert 0.3 * actual[cid] < estimated[cid] < 3.0 * actual[cid]

    def test_estimated_ratios_show_differentiation(self):
        probes, _, _ = build_probed_link()
        ratios = probes.estimated_ratios()
        assert all(r > 1.1 for r in ratios)  # ordering clearly visible

    def test_ignores_non_probe_traffic(self):
        probes, truth, link = build_probed_link(horizon=5e4)
        total_probe_samples = sum(len(d) for d in probes.probe_delays)
        assert total_probe_samples == probes.probes_sent() - link.backlog_packets \
            or total_probe_samples <= probes.probes_sent()
        # Ground-truth monitor saw vastly more packets than probes.
        assert sum(truth.counts()) > 10 * total_probe_samples
