"""Golden-run regression corpus.

Fixed-seed scenarios (see :mod:`tests.golden.scenarios`) whose worker
summaries are committed as JSON next to this file.  The golden test
re-runs every scenario and compares against the committed summary with
explicit tolerances; regenerate the corpus after an *intentional*
behaviour change with::

    PYTHONPATH=src python -m tests.golden.regenerate
"""
