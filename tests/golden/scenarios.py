"""The golden scenarios: small fixed-seed runs with committed outputs.

Each scenario is exactly one runner task executed through its
module-level worker -- the same code path the sweep runner and the
result cache use -- so a golden mismatch means the *pipeline's* output
changed, not merely some internal quantity.  All scenarios run under
the invariant checker: every golden regression test is simultaneously
an invariant-checked run of a Figure 1/2-style configuration.

Scenario sizes are chosen so the whole corpus replays in a few seconds:
long enough that every class departs thousands of packets (no NaN
ratios), short enough for the tier-1 suite.

Tolerances: the simulation is deterministic and JSON round-trips Python
floats exactly, so reproduction on the same platform matches to the
last bit; the comparison still uses explicit tolerances (relative 1e-9,
absolute 1e-12) to absorb harmless cross-platform libm differences.
Integers (packet counts, busy periods, inconsistency counts) must match
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.experiments.common import SingleHopConfig
from repro.network.multihop import MultiHopConfig
from repro.runner import (
    MultiHopTask,
    SingleHopTask,
    multihop_summary,
    single_hop_summary,
)
from repro.scenarios.city import CityScenarioConfig, CityTask, city_summary
from repro.sim.hybrid import HybridConfig

__all__ = ["GOLDEN_DIR", "GoldenScenario", "golden_scenarios"]

GOLDEN_DIR = Path(__file__).resolve().parent

#: Default float tolerances recorded in every golden file.
RELATIVE_TOLERANCE = 1e-9
ABSOLUTE_TOLERANCE = 1e-12


@dataclass(frozen=True)
class GoldenScenario:
    """One corpus entry: a named task plus the worker that runs it."""

    name: str
    description: str
    worker: Callable[[Any], dict]
    task: Any

    @property
    def path(self) -> Path:
        return GOLDEN_DIR / f"{self.name}.json"

    def run(self) -> dict:
        """Execute the scenario and return its summary."""
        return self.worker(self.task)


@dataclass(frozen=True)
class DifferentialTask:
    """A differential-harness cell frozen into the corpus."""

    scheduler: str
    shape: str
    seed: int = 9


def differential_summary(task: DifferentialTask) -> dict:
    """Run one differential-harness cell and summarize it (JSON-able).

    The cell runs evented/object under the invariant checker -- the
    harness's own grid already proves the other three execution modes
    bit-identical to this one, so pinning the oracle-checked reference
    pins all four.
    """
    from ..differential import run_cell

    capture, _ = run_cell(
        task.scheduler,
        task.shape,
        kernel="evented",
        storage="object",
        seed=task.seed,
        check_invariants=True,
    )
    return {
        "flow_delays": [list(delays) for delays in capture.delays],
        "links": [
            [
                state[0],  # arrivals
                state[1],  # departures
                state[2],  # bytes_sent
                state[3],  # busy_time
                state[4],  # busy
                state[5],  # queued packets
                list(state[6]),  # head arrivals
                list(state[7]),  # byte backlogs
            ]
            for state in capture.links
        ],
        "now": capture.now,
        "invariants": capture.invariants,
    }


def _single_hop(scheduler: str) -> SingleHopTask:
    return SingleHopTask(
        config=SingleHopConfig(
            scheduler=scheduler,
            sdps=(1.0, 2.0, 4.0, 8.0),
            utilization=0.9,
            horizon=3e4,
            warmup=2e3,
            seed=42,
        ),
        check_invariants=True,
    )


def golden_scenarios() -> list[GoldenScenario]:
    """The corpus, in a fixed order (file names derive from `name`)."""
    scenarios = [
        GoldenScenario(
            name=f"single_hop_{scheduler}",
            description=(
                f"{scheduler.upper()} single hop, SDP ratio 2, rho=0.9, "
                "seed 42, invariant-checked"
            ),
            worker=single_hop_summary,
            task=_single_hop(scheduler),
        )
        for scheduler in ("wtp", "bpr", "fcfs")
    ]
    scenarios.append(
        GoldenScenario(
            name="multihop_wtp",
            description=(
                "Two-hop WTP path with cross traffic, three user "
                "experiments, rho=0.85, seed 11, invariant-checked"
            ),
            worker=multihop_summary,
            task=MultiHopTask(
                config=MultiHopConfig(
                    hops=2,
                    utilization=0.85,
                    flow_packets=10,
                    flow_rate_kbps=50.0,
                    experiments=3,
                    experiment_period=500.0,
                    warmup=1000.0,
                    drain=1500.0,
                    seed=11,
                ),
                check_invariants=True,
            ),
        )
    )
    for scheduler in ("bpr", "drr"):
        scenarios.append(
            GoldenScenario(
                name=f"fanin_{scheduler}",
                description=(
                    f"{scheduler.upper()} fan-in merge (two upstreams + "
                    "cross traffic into one server), differential-harness "
                    "cell, seed 9, invariant-checked"
                ),
                worker=differential_summary,
                task=DifferentialTask(scheduler=scheduler, shape="fanin"),
            )
        )
    scenarios.append(
        GoldenScenario(
            name="hybrid_city_wtp",
            description=(
                "Hybrid fluid/packet long-horizon city cell: WTP star "
                "hub, 100 flows over 40k ms, epsilon=0.05 -- pins the "
                "segment plan, the fluid-credited class means, and the "
                "packet/fluid handoff bookkeeping (runs unchecked: the "
                "fluid segments have no event stream to check)"
            ),
            worker=city_summary,
            task=CityTask(
                config=CityScenarioConfig(
                    flows=100,
                    horizon=40_000.0,
                    warmup=1_000.0,
                    seed=7,
                    hybrid=HybridConfig(epsilon=0.05),
                )
            ),
        )
    )
    for scheduler in ("bpr", "drr"):
        scenarios.append(
            GoldenScenario(
                name=f"routed_dag_{scheduler}",
                description=(
                    f"{scheduler.upper()} routed diamond DAG (RouteDemux "
                    "merge over the shared tail edge), differential-"
                    "harness cell, seed 9, invariant-checked"
                ),
                worker=differential_summary,
                task=DifferentialTask(scheduler=scheduler, shape="routed"),
            )
        )
    return scenarios
