"""Regenerate the committed golden summaries.

Usage (from the repository root)::

    PYTHONPATH=src python -m tests.golden.regenerate

Only run this after an *intentional* behaviour change, and review the
resulting JSON diff like any other code change: the corpus exists to
make silent numeric drift loud.
"""

from __future__ import annotations

import json
import sys

from .scenarios import (
    ABSOLUTE_TOLERANCE,
    RELATIVE_TOLERANCE,
    golden_scenarios,
)


def regenerate() -> int:
    for scenario in golden_scenarios():
        summary = scenario.run()
        payload = {
            "scenario": scenario.name,
            "description": scenario.description,
            "tolerances": {
                "relative": RELATIVE_TOLERANCE,
                "absolute": ABSOLUTE_TOLERANCE,
            },
            "summary": summary,
        }
        scenario.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {scenario.path}")
    return 0


if __name__ == "__main__":
    sys.exit(regenerate())
