"""Tests for the Eq 7 feasibility conditions and Eq 5 conservation law."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DelayDifferentiationParameters,
    check_feasibility,
    check_proportional_feasibility,
    conservation_residual,
    fcfs_mean_delay,
    fcfs_mean_delay_per_class,
    proper_subsets,
    subset_delay_function,
)
from repro.core.conservation import fcfs_waiting_times
from repro.errors import ConfigurationError
from repro.theory import ServiceDistribution, mg1_mean_wait
from repro.traffic import FixedPacketSize, PoissonInterarrivals
from repro.traffic.trace import build_class_trace, merge_traces


def mg1_subset_delay(rates, service):
    """Analytic subset-delay callback for Poisson classes."""

    def subset_delay(subset):
        return mg1_mean_wait(sum(rates[i] for i in subset), service)

    return subset_delay


class TestProperSubsets:
    def test_count_is_2n_minus_2(self):
        assert len(list(proper_subsets(4))) == 2**4 - 2

    def test_excludes_empty_and_full(self):
        subsets = list(proper_subsets(3))
        assert () not in subsets
        assert (0, 1, 2) not in subsets

    def test_single_class(self):
        assert list(proper_subsets(1)) == []


class TestLindleyRecursion:
    def test_no_queueing_when_spaced_out(self):
        times = np.array([0.0, 10.0, 20.0])
        sizes = np.array([1.0, 1.0, 1.0])
        waits = fcfs_waiting_times(times, sizes, capacity=1.0)
        assert waits.tolist() == [0.0, 0.0, 0.0]

    def test_back_to_back_accumulates(self):
        times = np.array([0.0, 0.0, 0.0])
        sizes = np.array([2.0, 2.0, 2.0])
        waits = fcfs_waiting_times(times, sizes, capacity=1.0)
        assert waits.tolist() == [0.0, 2.0, 4.0]

    def test_partial_drain(self):
        times = np.array([0.0, 1.0])
        sizes = np.array([3.0, 1.0])
        waits = fcfs_waiting_times(times, sizes, capacity=1.0)
        assert waits.tolist() == [0.0, 2.0]

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            fcfs_waiting_times(
                np.array([1.0, 0.0]), np.array([1.0, 1.0]), 1.0
            )

    def test_matches_pollaczek_khinchine(self, rng):
        """Empirical FCFS mean wait ~ M/D/1 formula."""
        rate = 0.8
        trace = build_class_trace(
            0, PoissonInterarrivals(1.0 / rate, rng), FixedPacketSize(1.0),
            horizon=2e5,
        )
        measured = fcfs_mean_delay(trace, capacity=1.0, warmup=1e3)
        expected = mg1_mean_wait(rate, ServiceDistribution.deterministic(1.0))
        assert measured == pytest.approx(expected, rel=0.05)


class TestConservationResidual:
    def test_zero_for_exact_model(self):
        rates = [1.0, 2.0]
        delays = [4.0, 3.0]
        aggregate = (1.0 * 4.0 + 2.0 * 3.0) / 3.0
        assert conservation_residual(rates, delays, aggregate) == pytest.approx(0.0)

    def test_sign_of_residual(self):
        assert conservation_residual([1.0], [5.0], 4.0) > 0
        assert conservation_residual([1.0], [3.0], 4.0) < 0

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            conservation_residual([1.0], [1.0, 2.0], 1.0)


class TestFeasibilityAnalytic:
    """Eq 7 evaluated with exact M/G/1 subset delays (Poisson classes)."""

    service = ServiceDistribution.deterministic(1.0)
    rates = [0.32, 0.24, 0.16, 0.08]  # rho = 0.8, 40/30/20/10 split

    def test_fcfs_delays_are_feasible(self):
        """Equal delays (the FCFS outcome) always satisfy Eq 7."""
        aggregate = mg1_mean_wait(sum(self.rates), self.service)
        report = check_feasibility(
            self.rates,
            [aggregate] * 4,
            mg1_subset_delay(self.rates, self.service),
        )
        assert report.feasible
        assert report.conservation_residual == pytest.approx(0.0, abs=1e-12)

    def test_moderate_ddps_feasible_at_high_load(self):
        ddps = DelayDifferentiationParameters((8.0, 4.0, 2.0, 1.0))
        report = check_proportional_feasibility(
            ddps, self.rates, mg1_subset_delay(self.rates, self.service)
        )
        assert report.feasible
        assert report.worst_margin() >= 0.0

    def test_extreme_ddps_infeasible_at_low_load(self):
        """At rho = 0.3 no scheduler can push class 4's delay a factor
        512 below class 1's: the subset backlog bound (Eq 7) bites."""
        low_rates = [r * 0.3 / 0.8 for r in self.rates]
        ddps = DelayDifferentiationParameters((512.0, 64.0, 8.0, 1.0))
        report = check_proportional_feasibility(
            ddps, low_rates, mg1_subset_delay(low_rates, self.service)
        )
        assert not report.feasible
        assert report.violations
        subset, lhs, rhs = report.violations[0]
        assert lhs < rhs

    def test_violating_subset_identified(self):
        """Hand-built infeasible vector: class 1 far below its FCFS floor."""
        aggregate = mg1_mean_wait(sum(self.rates), self.service)
        subset_delay = mg1_subset_delay(self.rates, self.service)
        delays = [0.0, aggregate, aggregate, aggregate]
        # Rebalance class 1's share onto class 4 to keep Eq 5 plausible.
        delays[3] += (
            self.rates[0] * aggregate / self.rates[3]
        )
        report = check_feasibility(self.rates, delays, subset_delay)
        assert not report.feasible
        violating = {s for s, _, _ in report.violations}
        assert (0,) in violating

    def test_margins_reported_for_all_subsets(self):
        aggregate = mg1_mean_wait(sum(self.rates), self.service)
        report = check_feasibility(
            self.rates,
            [aggregate] * 4,
            mg1_subset_delay(self.rates, self.service),
        )
        assert len(report.margins) == 2**4 - 2

    def test_invalid_inputs_rejected(self):
        subset_delay = mg1_subset_delay(self.rates, self.service)
        with pytest.raises(ConfigurationError):
            check_feasibility([0.0, 1.0], [1.0, 1.0], subset_delay)
        with pytest.raises(ConfigurationError):
            check_feasibility([1.0], [1.0, 2.0], subset_delay)


class TestFeasibilityEmpirical:
    """Eq 7 with measured (trace-based) subset delays, as the paper does."""

    def test_subset_delay_function_memoizes_and_matches_direct(self, rng):
        traces = [
            build_class_trace(
                cid, PoissonInterarrivals(4.0, rng), FixedPacketSize(1.0), 1e4
            )
            for cid in range(3)
        ]
        trace = merge_traces(traces)
        subset_delay = subset_delay_function(trace, capacity=1.0)
        direct = fcfs_mean_delay(trace.filter_classes((0, 2)), 1.0)
        assert subset_delay((0, 2)) == pytest.approx(direct)
        assert subset_delay((2, 0)) == pytest.approx(direct)  # cache key sorted

    def test_per_class_fcfs_delays_average_to_aggregate(self, rng):
        traces = [
            build_class_trace(
                cid, PoissonInterarrivals(3.0, rng), FixedPacketSize(1.0), 5e4
            )
            for cid in range(2)
        ]
        trace = merge_traces(traces)
        per_class = fcfs_mean_delay_per_class(trace, 1.0)
        counts = np.bincount(trace.class_ids)
        blended = float(np.dot(per_class, counts) / counts.sum())
        assert blended == pytest.approx(fcfs_mean_delay(trace, 1.0), rel=1e-9)
