"""Tests for the DRR baseline and the adaptive-WTP extension."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.schedulers import AdaptiveWTPScheduler, DRRScheduler, WTPScheduler
from repro.sim import Link, PacketSink, Simulator

from .conftest import make_packet, run_poisson_link


class TestDRR:
    def test_weights_validated(self):
        with pytest.raises(ConfigurationError):
            DRRScheduler(())
        with pytest.raises(ConfigurationError):
            DRRScheduler((1.0, -1.0))
        with pytest.raises(ConfigurationError):
            DRRScheduler((1.0,), quantum_scale=0.0)

    def test_bandwidth_shares_follow_weights(self):
        """Persistent backlogs split the link ~1:3 with weights (1, 3)."""
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        link = Link(sim, DRRScheduler((1.0, 3.0)), capacity=1.0, target=sink)
        for i in range(400):
            sim.schedule(0.0, link.receive, make_packet(i, class_id=0, size=100.0))
            sim.schedule(0.0, link.receive, make_packet(1000 + i, class_id=1, size=100.0))
        sim.run(until=20_000.0)
        served = [0, 0]
        for packet in sink.packets:
            served[packet.class_id] += 1
        assert served[1] / served[0] == pytest.approx(3.0, rel=0.15)

    def test_single_class_round_trips(self):
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        link = Link(sim, DRRScheduler((1.0,)), capacity=1.0, target=sink)
        for i in range(5):
            sim.schedule(float(i), link.receive, make_packet(i, size=2.0))
        sim.run()
        assert sink.received == 5
        assert [p.packet_id for p in sink.packets] == list(range(5))

    def test_large_packets_accumulate_deficit(self):
        """A class whose quantum is below its packet size still gets
        served after enough rounds (no permanent starvation)."""
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        scheduler = DRRScheduler((1.0, 8.0), quantum_scale=800.0)
        link = Link(sim, scheduler, capacity=100.0, target=sink)
        # Class 1 quantum = 100 bytes; its packets are 700 bytes.
        for i in range(3):
            sim.schedule(0.0, link.receive, make_packet(i, class_id=0, size=700.0))
        for i in range(30):
            sim.schedule(0.0, link.receive, make_packet(100 + i, class_id=1, size=700.0))
        sim.run()
        assert sink.received == 33
        low_served = [p.packet_id for p in sink.packets if p.class_id == 0]
        assert low_served == [0, 1, 2]

    def test_delay_ratio_drifts_with_load_split(self):
        """Capacity differentiation: DRR's delay ratio moves with the
        class load split (the Section 2.1 critique), unlike WTP."""
        ratios = {}
        for label, split in (("even", (0.5, 0.5)), ("skewed", (0.8, 0.2))):
            rates = [0.9 * split[0], 0.9 * split[1]]
            delays, _ = run_poisson_link(
                DRRScheduler((1.0, 2.0)), rates, horizon=1e5, seed=7
            )
            ratios[label] = delays[0] / delays[1]
        assert abs(ratios["even"] - ratios["skewed"]) / ratios["even"] > 0.4


class TestAdaptiveWTP:
    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            AdaptiveWTPScheduler((1.0, 2.0), gain=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveWTPScheduler((1.0, 2.0), adjustment_period=0)
        with pytest.raises(ConfigurationError):
            AdaptiveWTPScheduler((1.0, 2.0), ewma_alpha=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveWTPScheduler((1.0, 2.0), max_drift=0.5)

    def test_zero_gain_is_plain_wtp(self):
        rates = [0.85 * s for s in (0.5, 0.5)]
        adaptive, _ = run_poisson_link(
            AdaptiveWTPScheduler((1.0, 4.0), gain=0.0), rates,
            horizon=1e5, seed=3,
        )
        plain, _ = run_poisson_link(
            WTPScheduler((1.0, 4.0)), rates, horizon=1e5, seed=3
        )
        assert adaptive == pytest.approx(plain)

    @pytest.mark.slow
    def test_moderate_load_ratio_corrected(self):
        """The headline: at rho=0.75 plain WTP undershoots the target
        ratio 4; the adaptive variant lands much closer."""
        rates = [0.75 * s for s in (0.5, 0.5)]
        target = 4.0
        plain, _ = run_poisson_link(
            WTPScheduler((1.0, 4.0)), rates, horizon=4e5, seed=5
        )
        adaptive, _ = run_poisson_link(
            AdaptiveWTPScheduler((1.0, 4.0)), rates, horizon=4e5, seed=5
        )
        plain_error = abs(plain[0] / plain[1] - target)
        adaptive_error = abs(adaptive[0] / adaptive[1] - target)
        assert plain_error > 0.4          # documented undershoot exists
        assert adaptive_error < 0.6 * plain_error

    def test_drift_is_bounded(self):
        rates = [0.8 * s for s in (0.5, 0.5)]
        scheduler = AdaptiveWTPScheduler((1.0, 2.0), max_drift=2.0)
        run_poisson_link(scheduler, rates, horizon=1e5, seed=1)
        for cid in range(2):
            assert 0.5 <= scheduler.drift(cid) <= 2.0

    def test_heavy_load_stays_on_target(self):
        """Adaptation must not break the regime where WTP already works."""
        rates = [0.97 * s for s in (0.4, 0.3, 0.2, 0.1)]
        delays, _ = run_poisson_link(
            AdaptiveWTPScheduler((1.0, 2.0, 4.0, 8.0)), rates,
            horizon=3e5, seed=2,
        )
        for i in range(3):
            assert delays[i] / delays[i + 1] == pytest.approx(2.0, rel=0.2)

    def test_registry_name(self):
        from repro.schedulers import make_scheduler

        scheduler = make_scheduler("adaptive-wtp", (1.0, 2.0))
        assert scheduler.name == "adaptive-wtp"
