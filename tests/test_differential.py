"""Pytest entry for the differential harness (``tests/differential.py``).

Covers the full (scheduler x topology) grid -- every cell runs all four
execution modes and must capture bit-identically -- plus the codegen
contract (every generated drain body's class-level proof holds) and
sensitivity tests showing the six newly-registered scheduler oracles
(PAD, HPD, adaptive WTP, DRR, SCFQ, additive) reject impostors instead
of vacuously passing.
"""

from __future__ import annotations

import pytest

from repro.errors import InvariantViolation
from repro.experiments.common import generate_trace, replay_through_scheduler
from repro.invariants import registered_scheduler_checks
from repro.schedulers.adaptive_wtp import AdaptiveWTPScheduler
from repro.schedulers.additive import AdditiveDelayScheduler
from repro.schedulers.drr import DRRScheduler
from repro.schedulers.hpd import HPDScheduler
from repro.schedulers.pad import PADScheduler
from repro.schedulers.registry import available_schedulers
from repro.schedulers.wfq import SCFQScheduler
from repro.schedulers.draingen import (
    generated_drain_pair,
    generation_report,
    supported_classes,
)

from .differential import (
    SCHEDULERS,
    SHAPES,
    differential_cell,
    hybrid_epsilon_zero_cell,
    hybrid_multihop_epsilon_zero_cell,
    run_cell,
)
from .test_invariants import SDPS, small_config


# ----------------------------------------------------------------------
# The grid: 12 schedulers x 4 shapes x 4 execution modes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", tuple(SHAPES))
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_differential_cell(scheduler: str, shape: str) -> None:
    differential_cell(scheduler, shape)


def test_hybrid_epsilon_zero_is_pure_packet() -> None:
    """Hybrid mode of the harness: epsilon=0 plans a single packet
    segment and reproduces the evented city run bit-for-bit."""
    hybrid_epsilon_zero_cell()


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_hybrid_multihop_epsilon_zero_is_pure_packet(scheduler: str) -> None:
    """Network-wide hybrid at epsilon=0: bit-identical to the evented
    multihop city run for every registry scheduler (fluid map or not)."""
    hybrid_multihop_epsilon_zero_cell(scheduler)


def test_every_registry_name_covered() -> None:
    """The grid really does sweep the whole registry (the ISSUE's 12)."""
    assert SCHEDULERS == available_schedulers()
    assert len(SCHEDULERS) == 12


def test_every_registry_name_has_an_oracle() -> None:
    """No scheduler gap: each registry name resolves to a registered
    dispatch check (``wfq`` through its ``scfq`` instance name)."""
    from repro.schedulers import make_scheduler

    registered = registered_scheduler_checks()
    for name in SCHEDULERS:
        assert make_scheduler(name, SDPS).name in registered


# ----------------------------------------------------------------------
# Codegen contract
# ----------------------------------------------------------------------
def test_generated_bodies_all_verified() -> None:
    """Class-level verification must hold for every template -- a
    codegen regression should fail here, not silently fall back."""
    report = generation_report()
    assert len(report) == len(supported_classes()) == 6
    failures = {k: v for k, v in report.items() if v is not True}
    assert not failures, f"codegen verification failures: {failures}"


def test_generated_pair_bound_and_cached() -> None:
    scheduler = DRRScheduler(SDPS)
    pair = generated_drain_pair(scheduler)
    assert pair is not None
    gsel, genq = pair
    assert callable(gsel) and genq is None  # DRR has no enqueue hook
    assert generated_drain_pair(scheduler) is pair  # instance-cached


def test_scfq_pair_includes_enqueue_hook() -> None:
    gsel, genq = generated_drain_pair(SCFQScheduler(SDPS))
    assert callable(gsel) and callable(genq)


def test_unbound_bpr_capacity_blocks_generation() -> None:
    """BPR without a bound capacity cannot run its generated on_select;
    the gate must leave it on the wrapper path instead of crashing."""
    from repro.schedulers.bpr import BPRScheduler

    assert generated_drain_pair(BPRScheduler(SDPS)) is None
    bound = BPRScheduler(SDPS, capacity=1.0)
    assert generated_drain_pair(bound) is not None


def test_stock_scheduler_has_no_template() -> None:
    """Stock schedulers (inlined directly by the drain) need none."""
    from repro.schedulers.wtp import WTPScheduler

    assert generated_drain_pair(WTPScheduler(SDPS)) is None


# ----------------------------------------------------------------------
# Oracle-checked replays (the --check-invariants CI leg, in miniature)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scheduler", ("pad", "hpd", "adaptive-wtp", "drr", "scfq", "additive")
)
def test_oracle_checked_replay(scheduler: str) -> None:
    run_cell(scheduler, "fanin", kernel="evented", storage="object",
             check_invariants=True)


# ----------------------------------------------------------------------
# Sensitivity: each new oracle rejects an impostor.  Every impostor
# keeps its parent's ``name`` so the registry applies the real
# discipline's contract.
# ----------------------------------------------------------------------
class InvertedPAD(PADScheduler):
    """Serves the *minimum* normalized-average-delay class."""

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_metric = float("inf")
        for cid in range(self.num_classes):
            queue = self.queues.queues[cid]
            if not queue:
                continue
            head_wait = now - queue[0].arrived_at
            metric = (
                (self._delay_sums[cid] + head_wait)
                / (self._delay_counts[cid] + 1)
                * self.sdps[cid]
            )
            if metric < best_metric:
                best_metric = metric
                best_class = cid
        return best_class


class DriftingHPD(HPDScheduler):
    """Ignores the PAD half (g forced to 1 at decision time only)."""

    def choose_class(self, now: float) -> int:
        real_g = self.g
        self.g = 1.0
        try:
            return super().choose_class(now)
        finally:
            self.g = real_g


class FrozenAdaptiveWTP(AdaptiveWTPScheduler):
    """Never runs the controller step."""

    def _adjust(self) -> None:
        pass


class LeakyDRR(DRRScheduler):
    """Forgets to charge the served packet against its deficit."""

    def on_select(self, packet, now: float) -> None:
        pass


class InvertedSCFQ(SCFQScheduler):
    """Serves the *largest* finish tag."""

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_tag = float("-inf")
        for cid in range(self.num_classes):
            head = self.queues.head(cid)
            if head is None:
                continue
            tag = self._finish_tags[head.packet_id]
            if tag > best_tag:
                best_tag = tag
                best_class = cid
        return best_class


class InvertedAdditive(AdditiveDelayScheduler):
    """Serves the *minimum* offset-adjusted waiting time."""

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_priority = float("inf")
        heads = self.queues.head_arrivals
        for cid in range(self.num_classes):
            if self.queues.queues[cid]:
                priority = (now - heads[cid]) + self.offsets[cid]
                if priority < best_priority:
                    best_priority = priority
                    best_class = cid
        return best_class


@pytest.mark.parametrize(
    "impostor, base_name, invariant",
    [
        (lambda: InvertedPAD(SDPS), "pad", "pad-normalized-average-order"),
        (lambda: DriftingHPD(SDPS), "hpd", "hpd-hybrid-metric-order"),
        (
            lambda: FrozenAdaptiveWTP(SDPS),
            "adaptive-wtp",
            "adaptive-wtp-controller",
        ),
        (lambda: LeakyDRR(SDPS), "drr", "drr-deficit-state"),
        (lambda: InvertedSCFQ(SDPS), "scfq", "scfq-finish-tag-order"),
        (
            lambda: InvertedAdditive([s - 1.0 for s in SDPS]),
            "additive",
            "additive-priority-order",
        ),
    ],
)
def test_impostor_triggers_violation(impostor, base_name, invariant) -> None:
    config = small_config(base_name)
    trace = generate_trace(config)
    with pytest.raises(InvariantViolation) as excinfo:
        replay_through_scheduler(
            trace, impostor(), config, check_invariants=True
        )
    assert excinfo.value.invariant == invariant
