"""Hybrid fluid/packet engine: maps, planner, handoffs, wiring.

Covers the fluid edge-case guards in :mod:`repro.schedulers.bpr`, the
load-shape modulators and rate envelopes feeding the planner, the Eq 5
exactness of the fluid per-class split, the packet<->fluid handoff
seams on :class:`~repro.sim.link.Link`, and the end-to-end controller:
``epsilon = 0`` short-circuits to a run bit-identical to the evented
path, and ``epsilon > 0`` holds the DDP fidelity of a steady cell
within the knob.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conservation import fcfs_waiting_times
from repro.errors import ConfigurationError
from repro.schedulers.bpr import (
    FluidBPRTracker,
    fluid_backlogs,
    fluid_clearing_time,
)
from repro.scenarios.city import (
    CityScenarioConfig,
    CityTask,
    city_summary,
    compile_city_traces,
    trace_group_key,
)
from repro.scenarios.generators import LoadShape
from repro.sim.hybrid import (
    FLUID_SCHEDULERS,
    HybridConfig,
    HybridController,
    Segment,
    drain_idle,
    fluid_split,
    fluid_window,
    plan_segments,
    run_hybrid_city,
)
from repro.traffic.compile import RateEnvelope

SDPS = (1.0, 2.0, 4.0, 8.0)


# ----------------------------------------------------------------------
# Fluid edge-case guards (repro.schedulers.bpr)
# ----------------------------------------------------------------------
class TestFluidGuards:
    def test_all_empty_system_stays_empty(self):
        assert fluid_backlogs([0.0, 0.0], (1.0, 2.0), 5.0, 123.0) == [0.0, 0.0]
        assert fluid_backlogs([0.0], (1.0,), 5.0, 0.0) == [0.0]

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ConfigurationError, match="elapsed"):
            fluid_backlogs([1.0, 1.0], (1.0, 2.0), 5.0, -0.1)

    def test_nonempty_system_past_clearing_rejected(self):
        # Total 10 bytes at R=5 clears at t=2; asking for t=3 raises.
        with pytest.raises(ConfigurationError, match="empties"):
            fluid_backlogs([4.0, 6.0], (1.0, 2.0), 5.0, 3.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            fluid_backlogs([1.0], (1.0,), 0.0, 1.0)
        with pytest.raises(ConfigurationError, match="capacity"):
            fluid_clearing_time([1.0], 0.0)

    def test_clearing_time_checks_each_element(self):
        # Sum is positive, but one element is negative: must raise.
        with pytest.raises(ConfigurationError, match="non-negative"):
            fluid_clearing_time([5.0, -1.0], 2.0)

    def test_tracker_add_fluid_bounds(self):
        tracker = FluidBPRTracker((1.0, 2.0), 4.0)
        with pytest.raises(ConfigurationError, match="class_id"):
            tracker.add_fluid(2, 1.0)
        with pytest.raises(ConfigurationError, match="class_id"):
            tracker.add_fluid(-1, 1.0)
        with pytest.raises(ConfigurationError, match="amount"):
            tracker.add_fluid(0, -1.0)

    @pytest.mark.property
    @settings(max_examples=50, deadline=None)
    @given(
        q=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=4
        ),
        frac=st.floats(min_value=0.0, max_value=0.999),
    )
    def test_fluid_drain_conserves_work(self, q, frac):
        """sum q_i(t) = Q(0) - R*t and each class only drains."""
        sdps = tuple(float(2**i) for i in range(len(q)))
        capacity = 3.0
        total = sum(q)
        elapsed = frac * total / capacity
        after = fluid_backlogs(q, sdps, capacity, elapsed)
        assert sum(after) == pytest.approx(
            total - capacity * elapsed, rel=1e-6, abs=1e-6
        )
        for before_i, after_i in zip(q, after):
            assert -1e-9 <= after_i <= before_i + 1e-9

    @pytest.mark.property
    @settings(max_examples=50, deadline=None)
    @given(
        q=st.lists(
            st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=4
        ),
        frac=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_higher_sdp_drains_faster(self, q, frac):
        """Relative survival q_i(t)/q_i(0) is monotone in the SDP."""
        sdps = tuple(float(2**i) for i in range(len(q)))
        capacity = 3.0
        elapsed = frac * sum(q) / capacity
        after = fluid_backlogs(q, sdps, capacity, elapsed)
        survival = [a / b for a, b in zip(after, q)]
        for left, right in zip(survival, survival[1:]):
            assert right <= left + 1e-9


# ----------------------------------------------------------------------
# Load shapes (satellite: diurnal + flash crowd)
# ----------------------------------------------------------------------
class TestLoadShape:
    def test_flat_is_identity(self):
        shape = LoadShape()
        assert shape.flat
        times = np.array([0.0, 1.5, 7.0])
        assert np.array_equal(shape.warp_times(times), times)
        assert shape.internal_horizon(100.0) == 100.0
        assert shape.transient_edges(100.0) == ()

    def test_zero_amplitude_and_unit_factor_are_flat(self):
        assert LoadShape(kind="diurnal", amplitude=0.0).flat
        assert LoadShape(kind="flash_crowd", duration=0.0).flat
        assert LoadShape(
            kind="flash_crowd", start=1.0, duration=5.0, factor=1.0
        ).flat

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadShape(kind="square")
        with pytest.raises(ConfigurationError):
            LoadShape(kind="diurnal", amplitude=1.0)
        with pytest.raises(ConfigurationError):
            LoadShape(kind="diurnal", period=0.0)
        with pytest.raises(ConfigurationError):
            LoadShape(kind="flash_crowd", factor=0.0)
        with pytest.raises(ConfigurationError):
            LoadShape(kind="flash_crowd", start=-1.0)

    def test_flash_crowd_cumulative_and_edges(self):
        shape = LoadShape(
            kind="flash_crowd", start=10.0, duration=5.0, factor=3.0
        )
        # Lambda gains (factor-1)*duration over the crowd window.
        assert shape.cumulative(np.array([10.0]))[0] == pytest.approx(10.0)
        assert shape.cumulative(np.array([15.0]))[0] == pytest.approx(25.0)
        assert shape.cumulative(np.array([20.0]))[0] == pytest.approx(30.0)
        assert shape.internal_horizon(100.0) == pytest.approx(110.0)
        assert shape.transient_edges(100.0) == (10.0, 15.0)
        # Edges outside (0, horizon) are dropped.
        assert shape.transient_edges(12.0) == (10.0,)

    def test_diurnal_multiplier_mean_is_one(self):
        shape = LoadShape(kind="diurnal", amplitude=0.5, period=100.0)
        t = np.linspace(0.0, 100.0, 10_001)
        assert float(shape.multiplier(t).mean()) == pytest.approx(1.0, abs=1e-3)
        # Lambda over a whole period equals the period (mass preserved).
        assert shape.cumulative(np.array([100.0]))[0] == pytest.approx(100.0)

    @pytest.mark.property
    @settings(max_examples=30, deadline=None)
    @given(
        amplitude=st.floats(min_value=0.0, max_value=0.9),
        u=st.lists(
            st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=20
        ),
    )
    def test_diurnal_warp_inverts_cumulative(self, amplitude, u):
        shape = LoadShape(kind="diurnal", amplitude=amplitude, period=90.0)
        internal = np.sort(np.asarray(u))
        warped = shape.warp_times(internal)
        assert np.all(np.diff(warped) >= -1e-9)  # monotone
        roundtrip = shape.cumulative(warped)
        np.testing.assert_allclose(roundtrip, internal, rtol=1e-7, atol=1e-7)

    @pytest.mark.property
    @settings(max_examples=30, deadline=None)
    @given(
        factor=st.floats(min_value=1.1, max_value=5.0),
        u=st.lists(
            st.floats(min_value=0.0, max_value=500.0), min_size=1, max_size=20
        ),
    )
    def test_flash_warp_inverts_cumulative(self, factor, u):
        shape = LoadShape(
            kind="flash_crowd", start=50.0, duration=30.0, factor=factor
        )
        internal = np.sort(np.asarray(u))
        warped = shape.warp_times(internal)
        roundtrip = shape.cumulative(warped)
        np.testing.assert_allclose(roundtrip, internal, rtol=1e-9, atol=1e-9)

    def test_city_traces_flash_crowd_boosts_window(self):
        base = CityScenarioConfig(flows=120, horizon=12_000.0, warmup=500.0)
        crowd = dataclasses.replace(
            base,
            load_shape=LoadShape(
                kind="flash_crowd", start=4_000.0, duration=2_000.0, factor=3.0
            ),
        )
        flat_times = np.concatenate(
            [t.times for t in compile_city_traces(base)]
        )
        crowd_times = np.concatenate(
            [t.times for t in compile_city_traces(crowd)]
        )

        def rate(times, lo, hi):
            return ((times >= lo) & (times < hi)).sum() / (hi - lo)

        # Inside the crowd window the arrival rate is ~factor times the
        # pre-crowd rate; before the window the two compiles agree.
        before = rate(crowd_times, 0.0, 4_000.0)
        inside = rate(crowd_times, 4_000.0, 6_000.0)
        assert inside / before == pytest.approx(3.0, rel=0.15)
        assert rate(flat_times, 0.0, 4_000.0) == pytest.approx(
            before, rel=1e-12
        )
        # Distinct trace-group identity: modulated cells never share
        # compiled traces with flat ones.
        assert trace_group_key(base) != trace_group_key(crowd)


# ----------------------------------------------------------------------
# Rate envelopes + fast-forward (repro.traffic.compile)
# ----------------------------------------------------------------------
class TestRateEnvelope:
    def test_from_arrays_bins_bytes(self):
        times = np.array([0.5, 1.5, 2.5, 2.75])
        class_ids = np.array([0, 1, 0, 1])
        sizes = np.array([100.0, 200.0, 300.0, 400.0])
        env = RateEnvelope.from_arrays(times, class_ids, sizes, 3.0, 1.0)
        assert env.num_classes == 2
        assert env.bins == 3
        np.testing.assert_allclose(env.byte_rates[0], [100.0, 0.0, 300.0])
        np.testing.assert_allclose(env.byte_rates[1], [0.0, 200.0, 400.0])
        np.testing.assert_allclose(
            env.aggregate_byte_rates(), [100.0, 200.0, 700.0]
        )

    def test_change_points_flag_jumps_only(self):
        times = np.arange(0.0, 100.0, 0.5)
        sizes = np.where(times < 50.0, 10.0, 100.0)
        env = RateEnvelope.from_arrays(
            times, np.zeros(len(times), dtype=np.int64), sizes, 100.0, 10.0
        )
        points = env.change_points(rel_jump=0.25)
        assert list(points) == [50.0]
        flat = RateEnvelope.from_arrays(
            times,
            np.zeros(len(times), dtype=np.int64),
            np.full(len(times), 10.0),
            100.0,
            10.0,
        )
        assert len(flat.change_points(rel_jump=0.25)) == 0


# ----------------------------------------------------------------------
# Fluid split (Eq 5) and arrival-free drains
# ----------------------------------------------------------------------
class TestFluidSplit:
    def test_conservation_exact(self):
        counts = [40, 30, 20, 10]
        d_agg = 3.7
        for scheduler in ("fcfs", "wtp", "bpr"):
            delays = fluid_split(scheduler, SDPS, counts, d_agg)
            weighted = sum(n * d for n, d in zip(counts, delays))
            assert weighted == pytest.approx(sum(counts) * d_agg, rel=1e-12)

    def test_fcfs_is_uniform_wtp_is_inverse_sdp(self):
        counts = [10, 10, 10, 10]
        fcfs = fluid_split("fcfs", SDPS, counts, 2.0)
        assert fcfs == pytest.approx([2.0] * 4)
        wtp = fluid_split("wtp", SDPS, counts, 2.0)
        for i in range(3):
            assert wtp[i] / wtp[i + 1] == pytest.approx(
                SDPS[i + 1] / SDPS[i], rel=1e-12
            )

    def test_calibration_overrides_analytic(self):
        counts = [10, 10, 10, 10]
        measured = [8.0, 4.0, 2.0, 1.0]
        delays = fluid_split("wtp", SDPS, counts, 3.0, calibration=measured)
        # Shape follows the measurement; level satisfies Eq 5.
        assert delays[0] / delays[3] == pytest.approx(8.0, rel=1e-12)
        assert sum(n * d for n, d in zip(counts, delays)) == pytest.approx(
            40 * 3.0, rel=1e-12
        )

    def test_strict_and_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="successive-subset"):
            fluid_split("strict", SDPS, [1, 1, 1, 1], 1.0)
        # qwtp is a registered *scheduler* but has no fluid map: the
        # registry error must name the supported set.
        with pytest.raises(ConfigurationError, match="register_fluid_map"):
            fluid_split("qwtp", SDPS, [1, 1, 1, 1], 1.0)
        with pytest.raises(ConfigurationError, match="calibration"):
            fluid_split(
                "wtp", SDPS, [1, 1, 1, 1], 1.0, calibration=[1.0, 0.0, 1.0, 1.0]
            )

    def test_empty_window_is_nan(self):
        delays = fluid_split("wtp", SDPS, [0, 0, 0, 0], 1.0)
        assert all(math.isnan(d) for d in delays)


class TestDrainIdle:
    def test_clears_past_clearing_time(self):
        for scheduler in FLUID_SCHEDULERS:
            out = drain_idle(scheduler, SDPS, 2.0, [4.0, 4.0, 0.0, 0.0], 4.0)
            assert out == [0.0] * 4

    def test_strict_drains_top_class_first(self):
        out = drain_idle("strict", SDPS, 2.0, [10.0, 0.0, 0.0, 6.0], 2.0)
        assert out == pytest.approx([10.0, 0.0, 0.0, 2.0])
        out = drain_idle("strict", SDPS, 2.0, [10.0, 0.0, 0.0, 6.0], 4.0)
        assert out == pytest.approx([8.0, 0.0, 0.0, 0.0])

    def test_bpr_matches_tracker(self):
        backlogs = [8.0, 6.0, 4.0, 2.0]
        tracker = FluidBPRTracker(SDPS, 2.0)
        for cid, q in enumerate(backlogs):
            tracker.add_fluid(cid, q)
        tracker.advance(3.0)
        out = drain_idle("bpr", SDPS, 2.0, backlogs, 3.0)
        assert out == pytest.approx(tracker.backlogs)

    def test_proportional_conserves_work(self):
        backlogs = [9.0, 3.0, 6.0, 0.0]
        out = drain_idle("wtp", SDPS, 2.0, backlogs, 3.0)
        assert sum(out) == pytest.approx(sum(backlogs) - 6.0)
        # Composition is preserved under the proportional drain.
        assert out[0] / out[1] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Fluid windows
# ----------------------------------------------------------------------
def _uniform_window(n=400, gap=1.0, size=0.8, capacity=1.0):
    times = np.arange(n) * gap
    class_ids = np.arange(n) % 4
    sizes = np.full(n, size)
    return times, class_ids, sizes, capacity


class TestFluidWindow:
    def test_aggregate_matches_lindley(self):
        times, class_ids, sizes, capacity = _uniform_window()
        result = fluid_window(
            times, class_ids, sizes, 4, capacity, 0.0, 400.0,
            "wtp", SDPS, [0.0] * 4,
        )
        waits = fcfs_waiting_times(times, sizes, capacity)
        assert result.d_agg == pytest.approx(float(waits.mean()), rel=1e-12)
        assert result.counts == [100] * 4
        weighted = sum(
            n * d for n, d in zip(result.counts, result.delays)
        )
        assert weighted == pytest.approx(400 * result.d_agg, rel=1e-12)

    def test_carried_backlog_enters_as_virtual_arrival(self):
        times, class_ids, sizes, capacity = _uniform_window()
        loaded = fluid_window(
            times, class_ids, sizes, 4, capacity, 0.0, 400.0,
            "wtp", SDPS, [5.0, 0.0, 0.0, 0.0],
        )
        empty = fluid_window(
            times, class_ids, sizes, 4, capacity, 0.0, 400.0,
            "wtp", SDPS, [0.0] * 4,
        )
        assert loaded.d_agg > empty.d_agg

    def test_empty_window_drains_carried(self):
        result = fluid_window(
            np.empty(0), np.empty(0, dtype=np.int64), np.empty(0),
            4, 2.0, 0.0, 1.0, "bpr", SDPS, [8.0, 0.0, 0.0, 0.0],
        )
        assert result.counts == [0] * 4
        assert sum(result.end_backlogs) == pytest.approx(6.0)
        result = fluid_window(
            np.empty(0), np.empty(0, dtype=np.int64), np.empty(0),
            4, 2.0, 0.0, 100.0, "bpr", SDPS, [8.0, 0.0, 0.0, 0.0],
        )
        assert result.regenerated
        assert result.end_backlogs == [0.0] * 4

    def test_regeneration_prefers_idle_boundary(self):
        # Sparse arrivals (gap 2, size 0.5, capacity 1): every arrival
        # sees an idle server, so the last arrival in the regen window
        # is a zero-wait regeneration point.
        times = np.arange(0.0, 100.0, 2.0)
        class_ids = np.zeros(len(times), dtype=np.int64)
        sizes = np.full(len(times), 0.5)
        result = fluid_window(
            times, class_ids, sizes, 1, 1.0, 0.0, 100.0,
            "fcfs", (1.0,), [0.0], regen_window=10.0,
        )
        assert result.regenerated
        assert result.deferred == 1
        assert result.handoff_time == pytest.approx(98.0)
        assert result.end_backlogs == [0.0]

    def test_strict_subset_delays_telescope(self):
        times, class_ids, sizes, capacity = _uniform_window()
        result = fluid_window(
            times, class_ids, sizes, 4, capacity, 0.0, 400.0,
            "strict", SDPS, [0.0] * 4,
        )
        # Eq 5 conservation holds through the subset telescope too.
        weighted = sum(n * d for n, d in zip(result.counts, result.delays))
        assert weighted == pytest.approx(400 * result.d_agg, rel=1e-9)
        # Higher class id = higher priority here: delays decrease.
        for left, right in zip(result.delays, result.delays[1:]):
            assert right <= left + 1e-9


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_epsilon_zero_is_single_packet_segment(self):
        plan = plan_segments(
            1e4, 1e3, HybridConfig(epsilon=0.0), [5e3], lambda a, b: 0.0
        )
        assert plan == [Segment(0.0, 1e4, "packet")]

    def test_forced_prefix_and_guards(self):
        hybrid = HybridConfig(
            epsilon=0.5, spinup=1e3, guard=500.0, min_fluid=1e3
        )
        plan = plan_segments(20e3, 1e3, hybrid, [10e3], lambda a, b: 0.0)
        assert plan[0] == Segment(0.0, 2e3, "packet")
        modes = {(s.start, s.end): s.mode for s in plan}
        assert modes[(2e3, 9.5e3)] == "fluid"
        assert modes[(9.5e3, 10.5e3)] == "packet"
        assert modes[(10.5e3, 20e3)] == "fluid"
        # Contiguity: segments tile [0, horizon) exactly.
        assert plan[0].start == 0.0
        assert plan[-1].end == 20e3
        for a, b in zip(plan, plan[1:]):
            assert a.end == b.start

    def test_high_predicted_error_stays_packet(self):
        hybrid = HybridConfig(epsilon=0.05, spinup=1e3, min_fluid=1e3)
        plan = plan_segments(20e3, 1e3, hybrid, [], lambda a, b: 0.2)
        assert plan == [Segment(0.0, 20e3, "packet")]

    def test_short_gaps_not_worth_switching(self):
        hybrid = HybridConfig(
            epsilon=0.5, spinup=1e3, guard=500.0, min_fluid=5e3
        )
        # Transients every 2k: every gap is under min_fluid.
        plan = plan_segments(
            10e3, 1e3, hybrid, [2e3, 4e3, 6e3, 8e3], lambda a, b: 0.0
        )
        assert all(s.mode == "packet" for s in plan)

    def test_knob_validation(self):
        with pytest.raises(ConfigurationError):
            HybridConfig(epsilon=-0.1)
        with pytest.raises(ConfigurationError):
            HybridConfig(bin_width=0.0)
        with pytest.raises(ConfigurationError):
            HybridConfig(guard=-1.0)


# ----------------------------------------------------------------------
# Controller wiring
# ----------------------------------------------------------------------
def _small_cell(**overrides) -> CityScenarioConfig:
    defaults = dict(flows=80, horizon=8_000.0, warmup=500.0, seed=3)
    defaults.update(overrides)
    return CityScenarioConfig(**defaults)


class TestController:
    def test_epsilon_zero_bit_identical_to_evented(self):
        config = _small_cell(hybrid=HybridConfig(epsilon=0.0))
        traces = compile_city_traces(config)
        controller = HybridController(config, traces)
        assert [s.mode for s in controller.plan(config.horizon)] == ["packet"]
        controller.run()
        reference = city_summary(
            CityTask(dataclasses.replace(config, hybrid=None))
        )
        assert controller.monitor.mean_delays() == reference["mean_delays"]
        assert controller.monitor.counts() == reference["class_counts"]
        assert controller.packet_departures == reference["hub_departures"]

    def test_fluid_segments_run_and_monitor_credits(self):
        config = _small_cell(
            hybrid=HybridConfig(epsilon=0.5, spinup=500.0, min_fluid=500.0)
        )
        summary = city_summary(CityTask(config))
        hybrid = summary["hybrid"]
        assert hybrid["fluid_time_fraction"] > 0.5
        assert hybrid["fluid_credited"] > 0
        assert any(t["mode"] == "fluid" for t in hybrid["timeline"])
        total = hybrid["fluid_credited"] + summary["hub_departures"]
        assert sum(summary["class_counts"]) <= total

    @pytest.mark.integration
    def test_fidelity_within_epsilon_on_steady_cell(self):
        epsilon = 0.05
        config = _small_cell(
            flows=200, horizon=60_000.0, warmup=1_000.0,
            hybrid=HybridConfig(epsilon=epsilon),
        )
        hybrid = city_summary(CityTask(config))
        pure = city_summary(
            CityTask(dataclasses.replace(config, hybrid=None))
        )
        errors = [
            abs(h - p) / p
            for h, p in zip(hybrid["mean_delays"], pure["mean_delays"])
        ]
        assert sum(errors) / len(errors) <= epsilon, errors
        assert hybrid["hybrid"]["fluid_time_fraction"] > 0.8

    def test_unsupported_scheduler_rejected(self):
        # qwtp has no registered fluid map (drr/scfq/pad/hpd now do).
        config = _small_cell(
            scheduler="qwtp", hybrid=HybridConfig(epsilon=0.1)
        )
        with pytest.raises(ConfigurationError, match="no fluid map"):
            HybridController(config, compile_city_traces(config))

    def test_epsilon_zero_allows_any_scheduler(self):
        config = _small_cell(scheduler="qwtp", hybrid=HybridConfig(epsilon=0.0))
        controller = run_hybrid_city(config, compile_city_traces(config))
        assert controller.packet_departures > 0

    def test_invariants_and_hybrid_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="pure packet"):
            _small_cell(hybrid=HybridConfig(), check_invariants=True)

    def test_run_hybrid_delegates_through_simulator(self):
        from repro.errors import SimulationError
        from repro.sim.engine import Simulator

        config = _small_cell(hybrid=HybridConfig(epsilon=0.0))
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError, match="hybrid"):
            sim.run(until=10.0, hybrid=object())


class TestSeededHandoff:
    def test_seed_backlog_preserves_backdated_ages(self):
        from repro.schedulers import make_scheduler
        from repro.sim import Link, PacketSink, Simulator
        from repro.sim.packet import Packet

        sim = Simulator()
        link = Link(
            sim,
            make_scheduler("wtp", SDPS),
            capacity=1.0,
            target=PacketSink(),
            name="seeded",
        )
        seeds = [
            Packet(packet_id=i, class_id=i % 2, size=2.0, created_at=-3.0 + i)
            for i in range(3)
        ]
        sim.schedule(0.0, link.seed_backlog, seeds)
        sim.run(until=10.0)
        assert link.departures == 3
        assert link.arrivals == 3

    def test_backlog_snapshot_reads_queue_and_remnant(self):
        from repro.schedulers import make_scheduler
        from repro.sim import Link, PacketSink, Simulator
        from repro.traffic.trace import ArrivalTrace, TraceSource

        sim = Simulator()
        link = Link(
            sim,
            make_scheduler("fcfs", SDPS),
            capacity=1.0,
            target=PacketSink(),
            name="snap",
        )
        trace = ArrivalTrace(
            np.array([0.0, 0.0, 0.0]),
            np.array([0, 1, 2], dtype=np.int64),
            np.array([4.0, 3.0, 2.0]),
        )
        TraceSource(sim, link, trace).start()
        sim.run(until=1.0)
        snapshot = link.backlog_snapshot()
        # 9 bytes arrived, 1 byte-time served: 8 bytes remain, with the
        # in-service remnant attributed to the serving class.
        assert sum(snapshot) == pytest.approx(8.0)
        assert snapshot[0] == pytest.approx(3.0)


class TestMultihopHybrid:
    def test_fast_forward_preserves_experiment_results(self):
        from repro.network.multihop import MultiHopConfig, run_multihop

        config = MultiHopConfig(hops=2, experiments=5, warmup=8_000.0)
        full = run_multihop(config)
        fast = run_multihop(config, hybrid=HybridConfig(epsilon=0.05))
        # Cross-traffic draws are consumed identically, so post-warm-up
        # arrivals (and the experiments riding on them) are unchanged.
        assert fast.rd == pytest.approx(full.rd, rel=1e-9)
        assert fast.truncated_experiments == full.truncated_experiments

    def test_requires_compiled_arrivals(self):
        from repro.network.multihop import MultiHopConfig, run_multihop

        with pytest.raises(ConfigurationError, match="compiled"):
            run_multihop(
                MultiHopConfig(hops=2, experiments=2, warmup=2_000.0),
                compiled_arrivals=False,
                hybrid=HybridConfig(epsilon=0.05),
            )


class TestFastForward:
    def test_skip_then_emit_matches_full_tail(self):
        from repro.sim.rng import RandomStreams
        from repro.traffic.compile import CompiledMixedSource
        from repro.traffic.pareto import ParetoInterarrivals

        class _Capture:
            def __init__(self):
                self.times = []

            def receive(self, packet, now):
                self.times.append(now)

        def build(seed=7):
            streams = RandomStreams(seed)
            return CompiledMixedSource(
                _Capture(),
                ParetoInterarrivals(2.0, 1.9, streams.generator()),
                (0.5, 0.5),
                1.0,
                streams.generator(),
            )

        full = build()
        drained = []
        t = full.peek_time()
        while t is not None and t < 200.0:
            drained.append(t)
            full.emit()
            t = full.peek_time()

        skipped = build()
        nskip, _ = skipped.fast_forward(100.0)
        tail = []
        t = skipped.peek_time()
        while t is not None and t < 200.0:
            tail.append(t)
            skipped.emit()
            t = skipped.peek_time()
        expected_tail = [x for x in drained if x >= 100.0]
        assert tail == expected_tail
        assert nskip == len(drained) - len(expected_tail)

    def test_rejected_after_emission(self):
        from repro.sim.rng import RandomStreams
        from repro.traffic.compile import CompiledMixedSource
        from repro.traffic.pareto import ParetoInterarrivals

        class _Sink:
            def receive(self, packet, now):
                pass

        streams = RandomStreams(7)
        source = CompiledMixedSource(
            _Sink(),
            ParetoInterarrivals(2.0, 1.9, streams.generator()),
            (0.5, 0.5),
            1.0,
            streams.generator(),
        )
        source.peek_time()
        source.emit()
        with pytest.raises(ConfigurationError, match="fast_forward"):
            source.fast_forward(10.0)


class TestDelayCurveCrossCheck:
    """The fluid aggregate is the same d(lambda) the paper's delay-curve
    estimator computes: both run the exact O(n) FCFS recursion, so at
    the measured operating point (keep fraction 1.0) they must agree
    to the last bit."""

    def test_fluid_aggregate_matches_delay_curve_operating_point(self):
        from repro.core.delay_curve import estimate_delay_curve
        from repro.traffic.trace import merge_traces

        config = CityScenarioConfig(flows=32, horizon=8_000.0, warmup=0.0)
        trace = merge_traces(compile_city_traces(config))
        capacity = float(trace.sizes.sum()) / config.horizon / 0.9
        result = fluid_window(
            trace.times,
            trace.class_ids,
            trace.sizes,
            config.num_classes,
            capacity,
            start=0.0,
            end=config.horizon,
            scheduler="fcfs",
            sdps=config.sdps,
            carried=[0.0] * config.num_classes,
        )
        curve = estimate_delay_curve(trace, capacity, fractions=(0.5, 1.0))
        measured_rate = len(trace) / float(trace.times[-1])
        assert result.d_agg == curve(measured_rate)
