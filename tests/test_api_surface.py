"""Tests of the public API surface and the error hierarchy.

A downstream user programs against ``repro``'s top-level exports; these
tests pin that surface so refactors cannot silently break it.
"""

from __future__ import annotations

import importlib

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    FeasibilityError,
    ReproError,
    SchedulingError,
    SimulationError,
    TopologyError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, FeasibilityError, SchedulingError,
                    SimulationError, TopologyError):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(FeasibilityError, ValueError)
        assert issubclass(TopologyError, ValueError)

    def test_runtime_errors(self):
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(SchedulingError, RuntimeError)

    def test_one_except_clause_catches_everything(self):
        caught = []
        for exc in (ConfigurationError, SimulationError, TopologyError):
            try:
                raise exc("boom")
            except ReproError as err:
                caught.append(type(err))
        assert len(caught) == 3


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    @pytest.mark.parametrize(
        "name",
        [
            "SingleHopConfig", "run_single_hop", "MultiHopConfig",
            "run_multihop", "WTPScheduler", "BPRScheduler", "Simulator",
            "Link", "Packet", "ParetoInterarrivals",
            "ProportionalDelayModel", "check_proportional_feasibility",
        ],
    )
    def test_key_entry_points_exported(self, name):
        assert name in repro.__all__

    def test_subpackages_importable(self):
        for module in (
            "repro.core", "repro.sim", "repro.traffic", "repro.schedulers",
            "repro.network", "repro.dropping", "repro.theory",
            "repro.experiments", "repro.analysis", "repro.cli",
        ):
            assert importlib.import_module(module) is not None

    def test_subpackage_all_lists_resolve(self):
        for module_name in (
            "repro.core", "repro.sim", "repro.traffic", "repro.schedulers",
            "repro.network", "repro.dropping", "repro.theory",
            "repro.experiments", "repro.analysis",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"


class TestQuickstartContract:
    """The README quickstart must keep working verbatim."""

    def test_readme_quickstart(self):
        from repro import SingleHopConfig, run_single_hop

        result = run_single_hop(SingleHopConfig(
            scheduler="wtp",
            sdps=(1.0, 2.0, 4.0, 8.0),
            utilization=0.95,
            horizon=5e4, warmup=2e3, seed=7,
        ))
        ratios = result.successive_ratios
        assert len(ratios) == 3
        assert all(1.0 < r < 3.0 for r in ratios)
        assert isinstance(result.conservation_residual(), float)
        assert result.feasibility_report().feasible in (True, False)
