"""Behavioural tests for WTP, FCFS and strict priority schedulers."""

from __future__ import annotations

import pytest

from repro.core.conservation import fcfs_waiting_times
from repro.errors import ConfigurationError, SchedulingError
from repro.schedulers import (
    FCFSScheduler,
    StrictPriorityScheduler,
    WTPScheduler,
    validate_sdps,
)
from repro.sim import Link, PacketSink, Simulator
from repro.traffic import FixedPacketSize, PoissonInterarrivals
from repro.traffic.trace import build_class_trace, merge_traces, TraceSource

from .conftest import make_packet, run_poisson_link


class TestValidateSdps:
    def test_valid(self):
        assert validate_sdps([1, 2, 4]) == (1.0, 2.0, 4.0)

    def test_not_increasing_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_sdps([1.0, 1.0])

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_sdps([0.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_sdps([])


class TestWTPSelection:
    def test_highest_waiting_time_priority_wins(self):
        scheduler = WTPScheduler((1.0, 2.0))
        old_low = make_packet(0, class_id=0, created_at=0.0)
        young_high = make_packet(1, class_id=1, created_at=8.0)
        scheduler.enqueue(old_low, 0.0)
        scheduler.enqueue(young_high, 8.0)
        # At t=10: low priority = 10*1 = 10, high = 2*2 = 4.
        assert scheduler.select(10.0) is old_low

    def test_sdp_scales_priority(self):
        scheduler = WTPScheduler((1.0, 8.0))
        low = make_packet(0, class_id=0, created_at=0.0)
        high = make_packet(1, class_id=1, created_at=8.0)
        scheduler.enqueue(low, 0.0)
        scheduler.enqueue(high, 8.0)
        # At t=10: low = 10, high = 2*8 = 16.
        assert scheduler.select(10.0) is high

    def test_tie_goes_to_higher_class(self):
        scheduler = WTPScheduler((1.0, 2.0))
        low = make_packet(0, class_id=0, created_at=0.0)
        high = make_packet(1, class_id=1, created_at=5.0)
        scheduler.enqueue(low, 0.0)
        scheduler.enqueue(high, 5.0)
        # At t=10: low = 10*1, high = 5*2 -> tie.
        assert scheduler.select(10.0) is high

    def test_fifo_within_class(self):
        scheduler = WTPScheduler((1.0, 2.0))
        first = make_packet(0, class_id=0, created_at=0.0)
        second = make_packet(1, class_id=0, created_at=1.0)
        scheduler.enqueue(first, 0.0)
        scheduler.enqueue(second, 1.0)
        assert scheduler.select(5.0) is first
        assert scheduler.select(5.0) is second

    def test_select_empty_raises(self):
        with pytest.raises(SchedulingError):
            WTPScheduler((1.0, 2.0)).select(0.0)

    def test_single_backlogged_class_always_chosen(self):
        scheduler = WTPScheduler((1.0, 2.0, 4.0))
        packet = make_packet(0, class_id=1, created_at=0.0)
        scheduler.enqueue(packet, 0.0)
        assert scheduler.select(0.5) is packet


class TestWTPHeavyLoad:
    def test_ratios_approach_inverse_sdp_ratios(self):
        """Paper Eq 13 with Poisson traffic at rho = 0.95."""
        rho = 0.95
        rates = [rho * share for share in (0.4, 0.3, 0.2, 0.1)]
        delays, _ = run_poisson_link(
            WTPScheduler((1.0, 2.0, 4.0, 8.0)), rates, horizon=2e5
        )
        for i in range(3):
            assert delays[i] / delays[i + 1] == pytest.approx(2.0, rel=0.15)

    def test_classes_ordered_even_in_moderate_load(self):
        rates = [0.75 * s for s in (0.4, 0.3, 0.2, 0.1)]
        delays, _ = run_poisson_link(
            WTPScheduler((1.0, 2.0, 4.0, 8.0)), rates, horizon=1e5
        )
        assert delays[0] > delays[1] > delays[2] > delays[3]


class TestWTPStarvation:
    def test_proposition_2_burst_overtakes(self):
        """s1/s2 < 1 - R/R1 => the whole burst precedes a waiting class-1
        packet, for an arbitrarily long burst."""
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        link = Link(sim, WTPScheduler((1.0, 16.0)), capacity=1.0, target=sink)
        peak_gap = 0.5  # R1 = 2 R; condition: 1/16 < 1 - 1/2 holds
        sim.schedule(0.0, link.receive, make_packet(-1, class_id=0, size=1.0))
        sim.schedule(0.0, link.receive, make_packet(0, class_id=0, size=1.0))
        burst = 64
        for k in range(burst):
            sim.schedule(
                k * peak_gap,
                link.receive,
                make_packet(1 + k, class_id=1, size=1.0, created_at=k * peak_gap),
            )
        sim.run()
        order = [p.packet_id for p in sink.packets]
        served_before_low = order[: order.index(0)]
        assert sum(1 for pid in served_before_low if pid >= 1) == burst

    def test_no_starvation_when_condition_fails(self):
        """s1/s2 > 1 - R/R1 => the low packet is served mid-burst."""
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        link = Link(sim, WTPScheduler((1.0, 1.5)), capacity=1.0, target=sink)
        peak_gap = 0.5  # 1/1.5 = 0.67 > 0.5: condition (12) fails
        sim.schedule(0.0, link.receive, make_packet(-1, class_id=0, size=1.0))
        sim.schedule(0.0, link.receive, make_packet(0, class_id=0, size=1.0))
        burst = 64
        for k in range(burst):
            sim.schedule(
                k * peak_gap,
                link.receive,
                make_packet(1 + k, class_id=1, size=1.0, created_at=k * peak_gap),
            )
        sim.run()
        order = [p.packet_id for p in sink.packets]
        overtakers = sum(1 for pid in order[: order.index(0)] if pid >= 1)
        assert overtakers < burst


class TestFCFS:
    def test_serves_globally_oldest(self):
        scheduler = FCFSScheduler(2)
        late_high = make_packet(0, class_id=1, created_at=5.0)
        early_low = make_packet(1, class_id=0, created_at=1.0)
        scheduler.enqueue(early_low, 1.0)
        scheduler.enqueue(late_high, 5.0)
        assert scheduler.select(10.0) is early_low

    def test_no_differentiation_between_classes(self):
        rates = [0.85 * s for s in (0.5, 0.5)]
        delays, _ = run_poisson_link(FCFSScheduler(2), rates, horizon=2e5)
        assert delays[0] == pytest.approx(delays[1], rel=0.1)

    def test_event_sim_matches_lindley_recursion(self, rng):
        """The event-driven FCFS link reproduces the analytic recursion
        used for conservation/feasibility checks, packet by packet."""
        traces = [
            build_class_trace(
                cid, PoissonInterarrivals(2.5, rng), FixedPacketSize(1.0), 500.0
            )
            for cid in range(2)
        ]
        trace = merge_traces(traces)
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        link = Link(sim, FCFSScheduler(2), capacity=1.0, target=sink)
        TraceSource(sim, link, trace).start()
        sim.run()
        expected = fcfs_waiting_times(trace.times, trace.sizes, 1.0)
        measured = [p.queueing_delay for p in sink.packets]
        assert measured == pytest.approx(expected.tolist())


class TestStrictPriority:
    def test_highest_class_always_first(self):
        scheduler = StrictPriorityScheduler(3)
        low = make_packet(0, class_id=0, created_at=0.0)
        high = make_packet(1, class_id=2, created_at=9.0)
        scheduler.enqueue(low, 0.0)
        scheduler.enqueue(high, 9.0)
        assert scheduler.select(10.0) is high

    def test_low_class_starves_under_high_load(self):
        """Sustained high-class overload starves class 1 (Section 2.1)."""
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        link = Link(sim, StrictPriorityScheduler(2), capacity=1.0, target=sink)
        # Class 2 saturates the link; one class-1 packet waits throughout.
        # The first high-class packet arrives just ahead of the low one
        # so the low packet queues instead of grabbing the idle server.
        low = make_packet(0, class_id=0, size=1.0)
        sim.schedule(0.0, link.receive, make_packet(999, class_id=1, size=1.0))
        sim.schedule(0.0, link.receive, low)
        for k in range(50):
            sim.schedule(
                k * 1.0,
                link.receive,
                make_packet(1 + k, class_id=1, size=1.0, created_at=k * 1.0),
            )
        sim.run()
        order = [p.packet_id for p in sink.packets]
        assert order.index(0) >= 50  # low-class packet served dead last

    def test_no_quality_spacing_knob(self):
        """Strict priority ratios drift with load (not controllable):
        the class-delay ratio differs wildly between two load points."""
        ratios = []
        for rho in (0.6, 0.95):
            rates = [rho * 0.5, rho * 0.5]
            delays, _ = run_poisson_link(
                StrictPriorityScheduler(2), rates, horizon=2e5
            )
            ratios.append(delays[0] / delays[1])
        assert ratios[1] / ratios[0] > 2.0
