"""Tests for trace persistence and the analysis statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import batch_means, mser_warmup
from repro.errors import ConfigurationError
from repro.traffic import (
    FixedPacketSize,
    PoissonInterarrivals,
    load_trace,
    load_trace_csv,
    save_trace,
    save_trace_csv,
)
from repro.traffic.trace import ArrivalTrace, build_class_trace, merge_traces


@pytest.fixture
def sample_trace(rng):
    traces = [
        build_class_trace(
            cid, PoissonInterarrivals(2.0, rng), FixedPacketSize(100.0 + cid),
            horizon=500.0,
        )
        for cid in range(3)
    ]
    return merge_traces(traces)


class TestNpzRoundTrip:
    def test_exact_round_trip(self, sample_trace, tmp_path):
        path = save_trace(sample_trace, tmp_path / "trace.npz")
        loaded = load_trace(path)
        assert np.array_equal(loaded.times, sample_trace.times)
        assert np.array_equal(loaded.class_ids, sample_trace.class_ids)
        assert np.array_equal(loaded.sizes, sample_trace.sizes)

    def test_extension_normalization(self, sample_trace, tmp_path):
        path = save_trace(sample_trace, tmp_path / "trace")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_trace(path)


class TestCsvRoundTrip:
    def test_round_trip(self, sample_trace, tmp_path):
        path = save_trace_csv(sample_trace, tmp_path / "trace.csv")
        loaded = load_trace_csv(path)
        assert np.allclose(loaded.times, sample_trace.times)
        assert np.array_equal(loaded.class_ids, sample_trace.class_ids)
        assert np.allclose(loaded.sizes, sample_trace.sizes)

    def test_classes_stored_one_based(self, sample_trace, tmp_path):
        path = save_trace_csv(sample_trace, tmp_path / "trace.csv")
        body = path.read_text().splitlines()
        classes_in_file = {int(line.split(",")[1]) for line in body[1:]}
        assert min(classes_in_file) == 1

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,1,100\n")
        with pytest.raises(ConfigurationError):
            load_trace_csv(path)

    def test_zero_based_class_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,class,size\n1.0,0,100\n")
        with pytest.raises(ConfigurationError):
            load_trace_csv(path)


class TestBatchMeans:
    def test_recovers_known_mean(self, rng):
        samples = rng.normal(5.0, 2.0, size=10_000)
        result = batch_means(samples, num_batches=20)
        assert result.contains(5.0)
        assert result.half_width < 0.2

    def test_half_width_shrinks_with_samples(self, rng):
        small = batch_means(rng.normal(0, 1, 400), num_batches=20)
        large = batch_means(rng.normal(0, 1, 40_000), num_batches=20)
        assert large.half_width < small.half_width

    def test_interval_is_symmetric(self, rng):
        result = batch_means(rng.normal(0, 1, 1000))
        low, high = result.interval
        assert (low + high) / 2 == pytest.approx(result.mean)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            batch_means([1.0] * 10, num_batches=20)

    def test_too_few_batches_rejected(self):
        with pytest.raises(ConfigurationError):
            batch_means([1.0] * 100, num_batches=1)


class TestMserWarmup:
    def test_detects_transient(self, rng):
        """A decaying start-up transient should be (mostly) cut."""
        transient = np.linspace(50.0, 0.0, 200)
        steady = rng.normal(0.0, 1.0, 2000)
        cut = mser_warmup(np.concatenate([transient, steady]))
        assert 100 <= cut <= 400

    def test_stationary_series_keeps_everything(self, rng):
        cut = mser_warmup(rng.normal(3.0, 1.0, 1000))
        assert cut <= 100  # little or nothing removed

    def test_cut_is_multiple_of_batch_size(self, rng):
        cut = mser_warmup(rng.normal(0, 1, 500), batch_size=5)
        assert cut % 5 == 0

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            mser_warmup([1.0] * 10, batch_size=5)

    @pytest.mark.slow
    def test_end_to_end_with_simulated_delays(self):
        """MSER + batch means on real simulator output: the CI must
        cover the M/D/1 value."""
        from repro.schedulers import FCFSScheduler
        from repro.sim import DelayMonitor, Link, PacketSink, Simulator
        from repro.sim.rng import RandomStreams
        from repro.traffic import PacketIdAllocator, TrafficSource
        from repro.theory import ServiceDistribution, mg1_mean_wait

        sim = Simulator()
        streams = RandomStreams(9)
        link = Link(sim, FCFSScheduler(1), capacity=1.0, target=PacketSink())
        monitor = DelayMonitor(1, warmup=0.0, keep_samples=True)
        link.add_monitor(monitor)
        TrafficSource(
            sim, link, 0, PoissonInterarrivals(1.25, streams.generator()),
            FixedPacketSize(1.0), ids=PacketIdAllocator(),
        ).start()
        sim.run(until=3e5)
        samples = np.asarray(monitor.samples[0])
        cut = mser_warmup(samples)
        result = batch_means(samples[cut:], num_batches=20)
        expected = mg1_mean_wait(0.8, ServiceDistribution.deterministic(1.0))
        # Batch means on autocorrelated data underestimate variance, so
        # accept the CI inflated by 3x.
        assert abs(result.mean - expected) < 3 * max(result.half_width, 0.05)
