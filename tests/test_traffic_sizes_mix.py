"""Tests for packet sizes, load distributions, and RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.traffic import (
    ClassLoadDistribution,
    DiscretePacketSizes,
    FIGURE2_LOAD_DISTRIBUTIONS,
    FixedPacketSize,
    PAPER_DEFAULT_LOADS,
    paper_trimodal_sizes,
    uniform_loads,
)
from repro.units import PAPER_LINK_CAPACITY, PAPER_MEAN_PACKET_BYTES, PAPER_P_UNIT


class TestFixedPacketSize:
    def test_constant_output(self):
        sizes = FixedPacketSize(500.0)
        assert sizes.next_size() == 500.0
        assert sizes.mean == 500.0

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPacketSize(-1.0)


class TestDiscretePacketSizes:
    def test_paper_mix_mean_is_441(self):
        assert paper_trimodal_sizes().mean == pytest.approx(441.0)

    def test_only_listed_sizes_drawn(self, rng):
        sizes = paper_trimodal_sizes(rng)
        drawn = {sizes.next_size() for _ in range(1000)}
        assert drawn <= {40.0, 550.0, 1500.0}

    def test_empirical_frequencies(self, rng):
        sizes = paper_trimodal_sizes(rng)
        drawn = np.array([sizes.next_size() for _ in range(100_000)])
        assert np.mean(drawn == 40.0) == pytest.approx(0.4, abs=0.01)
        assert np.mean(drawn == 550.0) == pytest.approx(0.5, abs=0.01)
        assert np.mean(drawn == 1500.0) == pytest.approx(0.1, abs=0.01)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            DiscretePacketSizes([40.0, 550.0], [0.5, 0.4])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            DiscretePacketSizes([40.0], [0.5, 0.5])

    def test_non_positive_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            DiscretePacketSizes([0.0, 100.0], [0.5, 0.5])


class TestPaperUnits:
    def test_p_unit_consistency(self):
        """capacity * p-unit == mean packet size (paper normalization)."""
        assert PAPER_LINK_CAPACITY * PAPER_P_UNIT == pytest.approx(
            PAPER_MEAN_PACKET_BYTES
        )


class TestClassLoadDistribution:
    def test_paper_default_shares(self):
        assert PAPER_DEFAULT_LOADS.shares == (0.4, 0.3, 0.2, 0.1)
        assert PAPER_DEFAULT_LOADS.num_classes == 4

    def test_rates_hit_requested_utilization(self):
        rates = PAPER_DEFAULT_LOADS.class_rates(
            utilization=0.9, capacity=PAPER_LINK_CAPACITY,
            mean_packet_size=441.0,
        )
        offered = sum(rates) * 441.0
        assert offered / PAPER_LINK_CAPACITY == pytest.approx(0.9)

    def test_rates_split_by_share(self):
        rates = PAPER_DEFAULT_LOADS.class_rates(0.8, 10.0, 1.0)
        total = sum(rates)
        assert [r / total for r in rates] == pytest.approx([0.4, 0.3, 0.2, 0.1])

    def test_mean_gaps_are_inverse_rates(self):
        rates = PAPER_DEFAULT_LOADS.class_rates(0.5, 10.0, 1.0)
        gaps = PAPER_DEFAULT_LOADS.mean_gaps(0.5, 10.0, 1.0)
        for rate, gap in zip(rates, gaps):
            assert gap == pytest.approx(1.0 / rate)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            ClassLoadDistribution((0.5, 0.4))

    def test_non_positive_share_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassLoadDistribution((1.0, 0.0))

    def test_uniform_loads(self):
        loads = uniform_loads(4)
        assert loads.shares == pytest.approx((0.25,) * 4)

    def test_figure2_distributions_are_valid_and_distinct(self):
        assert len(FIGURE2_LOAD_DISTRIBUTIONS) == 7
        labels = {d.label() for d in FIGURE2_LOAD_DISTRIBUTIONS}
        assert len(labels) == 7
        for dist in FIGURE2_LOAD_DISTRIBUTIONS:
            assert dist.num_classes == 4

    def test_label_format(self):
        assert PAPER_DEFAULT_LOADS.label() == "40/30/20/10"


class TestRandomStreams:
    def test_same_seed_same_streams(self):
        a, b = RandomStreams(42), RandomStreams(42)
        ga, gb = a.generator(), b.generator()
        assert ga.random(5).tolist() == gb.random(5).tolist()

    def test_children_are_independent(self):
        streams = RandomStreams(42)
        first = streams.generator().random(5)
        second = streams.generator().random(5)
        assert not np.allclose(first, second)

    def test_spawn_counter(self):
        streams = RandomStreams(0)
        streams.generator()
        streams.generator()
        assert streams.spawned == 2
