"""Guard rails for the examples directory.

Examples rot silently; these tests compile every script and fully run
the cheapest one so a refactor that breaks the public API surface the
examples use fails CI rather than a reader's first session.
"""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {script.name for script in SCRIPTS}
        assert "quickstart.py" in names
        assert len(SCRIPTS) >= 8

    @pytest.mark.parametrize(
        "script", SCRIPTS, ids=[s.name for s in SCRIPTS]
    )
    def test_example_compiles(self, script):
        py_compile.compile(str(script), doraise=True)

    @pytest.mark.parametrize(
        "script", SCRIPTS, ids=[s.name for s in SCRIPTS]
    )
    def test_example_has_docstring_and_main(self, script):
        source = script.read_text()
        assert source.lstrip().startswith(("#!", '"""')), script.name
        assert "def main()" in source, script.name
        assert '__name__ == "__main__"' in source, script.name

    def test_quickstart_runs_end_to_end(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "Measured vs target delay ratios" in result.stdout
        assert "FEASIBLE" in result.stdout
