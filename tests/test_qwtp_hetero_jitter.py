"""Tests for quantized WTP, heterogeneous multi-hop paths, and jitter."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.network import MultiHopConfig, run_multihop
from repro.schedulers import QuantizedWTPScheduler, WTPScheduler, make_scheduler
from repro.sim.monitor import DelayMonitor, PacketTap

from .conftest import make_packet, run_poisson_link


class TestQuantizedWTP:
    def test_epoch_validated(self):
        with pytest.raises(ConfigurationError):
            QuantizedWTPScheduler((1.0, 2.0), epoch=0.0)

    def test_fine_epoch_matches_wtp_selection(self):
        """With an epoch far below any waiting time, decisions match WTP."""
        quantized = QuantizedWTPScheduler((1.0, 2.0), epoch=1e-6)
        plain = WTPScheduler((1.0, 2.0))
        for scheduler in (quantized, plain):
            scheduler.enqueue(make_packet(0, class_id=0, created_at=0.0), 0.0)
            scheduler.enqueue(make_packet(1, class_id=1, created_at=8.0), 8.0)
        assert quantized.select(10.0).packet_id == plain.select(10.0).packet_id

    def test_coarse_epoch_degrades_to_class_order(self):
        """If nobody has aged a full epoch, priorities are all zero and
        the tie-break serves the higher class -- static priority-ish."""
        scheduler = QuantizedWTPScheduler((1.0, 2.0), epoch=1e6)
        old_low = make_packet(0, class_id=0, created_at=0.0)
        young_high = make_packet(1, class_id=1, created_at=9.0)
        scheduler.enqueue(old_low, 0.0)
        scheduler.enqueue(young_high, 9.0)
        # Plain WTP would serve the old low packet (priority 10 > 2).
        assert scheduler.select(10.0) is young_high

    def test_heavy_load_ratios_with_reasonable_epoch(self):
        """One-p-unit quantization barely moves the long-run ratios."""
        rho = 0.95
        rates = [rho * s for s in (0.4, 0.3, 0.2, 0.1)]
        delays, _ = run_poisson_link(
            QuantizedWTPScheduler((1.0, 2.0, 4.0, 8.0), epoch=1.0),
            rates, horizon=2e5,
        )
        for i in range(3):
            assert delays[i] / delays[i + 1] == pytest.approx(2.0, rel=0.2)

    @pytest.mark.slow
    def test_accuracy_degrades_with_epoch(self):
        """Coarser epochs => worse ratio accuracy (the trade-off)."""
        rho = 0.95
        rates = [rho * s for s in (0.4, 0.3, 0.2, 0.1)]
        errors = {}
        for epoch in (1.0, 50.0):
            delays, _ = run_poisson_link(
                QuantizedWTPScheduler((1.0, 2.0, 4.0, 8.0), epoch=epoch),
                rates, horizon=2e5, seed=5,
            )
            errors[epoch] = max(
                abs(delays[i] / delays[i + 1] - 2.0) for i in range(3)
            )
        assert errors[50.0] > errors[1.0]

    def test_registry(self):
        scheduler = make_scheduler("qwtp", (1.0, 2.0))
        assert scheduler.name == "qwtp"
        assert scheduler.epoch == pytest.approx(11.2)


class TestHeterogeneousPath:
    def base(self, **overrides):
        defaults = dict(
            hops=3, utilization=0.7, flow_packets=5, flow_rate_kbps=200.0,
            experiments=4, warmup=2000.0, experiment_period=500.0,
            drain=3000.0, seed=6,
        )
        defaults.update(overrides)
        return MultiHopConfig(**defaults)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.base(hop_utilizations=(0.9, 0.9))  # wrong length
        with pytest.raises(ConfigurationError):
            self.base(hop_utilizations=(0.9, 1.2, 0.9))

    def test_utilization_of_hop(self):
        config = self.base(hop_utilizations=(0.5, 0.95, 0.5))
        assert config.utilization_of_hop(1) == 0.95
        assert self.base().utilization_of_hop(2) == 0.7

    def test_single_bottleneck_still_differentiates(self):
        """Only the middle hop is congested; end-to-end differentiation
        must still hold (it is created at the bottleneck)."""
        config = self.base(hop_utilizations=(0.3, 0.95, 0.3), experiments=6)
        result = run_multihop(config)
        assert len(result.comparisons) == 6
        assert result.rd > 1.3  # clear differentiation from one hop

    def test_uniform_equals_default_behaviour(self):
        explicit = run_multihop(self.base(hop_utilizations=(0.7, 0.7, 0.7)))
        implicit = run_multihop(self.base())
        assert explicit.rd == pytest.approx(implicit.rd)


class TestJitterMetrics:
    def test_delay_monitor_jitter(self):
        monitor = DelayMonitor(1)
        for delay in (1.0, 3.0, 5.0):
            packet = make_packet(class_id=0, created_at=0.0)
            packet.arrived_at = 0.0
            packet.service_start = delay
            monitor.on_departure(packet, delay)
        expected_std = math.sqrt(8.0 / 3.0)
        assert monitor.jitter(0) == pytest.approx(expected_std)

    def test_jitter_nan_when_idle(self):
        assert math.isnan(DelayMonitor(2).jitter(1))

    def test_packet_tap_ipdv(self):
        tap = PacketTap(1, 0.0, 100.0)
        for t, delay in ((1.0, 2.0), (2.0, 5.0), (3.0, 4.0)):
            packet = make_packet(class_id=0, created_at=0.0)
            packet.arrived_at = 0.0
            packet.service_start = delay
            tap.on_departure(packet, t)
        assert tap.ipdv(0) == pytest.approx((3.0 + 1.0) / 2.0)

    def test_ipdv_needs_two_samples(self):
        tap = PacketTap(1, 0.0, 100.0)
        assert math.isnan(tap.ipdv(0))

    def test_bpr_jitter_exceeds_wtp_on_same_traffic(self):
        """The sawtooth as a jitter statement: identical Pareto traffic,
        higher class-3 jitter under BPR than under WTP."""
        from repro.experiments import (
            SingleHopConfig,
            generate_trace,
            replay_through_scheduler,
        )
        from repro.traffic.mix import ClassLoadDistribution

        config = SingleHopConfig(
            sdps=(1.0, 2.0, 4.0),
            loads=ClassLoadDistribution((0.5, 0.3, 0.2)),
            utilization=0.95, horizon=1.5e5, warmup=7.5e3, seed=12,
        )
        trace = generate_trace(config)
        jitters = {}
        for name in ("bpr", "wtp"):
            result = replay_through_scheduler(
                trace, make_scheduler(name, config.sdps), config
            )
            # Normalize by the mean so scale differences don't dominate.
            jitters[name] = (
                result.monitor.jitter(2) / result.monitor.mean_delay(2)
            )
        assert jitters["bpr"] > jitters["wtp"]
