"""Property-based tests on scheduler invariants.

Random arrival patterns are pushed through every scheduler; the
invariants checked are the ones the paper's theory rests on:

* losslessness: every arrival eventually departs (unbounded buffers);
* work conservation: the server is never idle while packets wait, so
  the makespan of a single 0-started busy period equals total service;
* FIFO within a class;
* the conservation law: class-weighted mean delays are
  scheduler-independent (equal to the FCFS aggregate).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers import available_schedulers, make_scheduler
from repro.sim import Link, PacketSink, Simulator

from .conftest import make_packet

pytestmark = pytest.mark.property

SDPS = (1.0, 2.0, 4.0)

arrival_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=200.0),   # arrival time
        st.integers(min_value=0, max_value=2),       # class
        st.floats(min_value=1.0, max_value=50.0),    # size
    ),
    min_size=1,
    max_size=60,
)


def drive(scheduler_name, arrivals):
    """Run a scheduler over the given arrivals; return (sink, link, sim)."""
    sim = Simulator()
    scheduler = make_scheduler(scheduler_name, SDPS)
    sink = PacketSink(keep_packets=True)
    link = Link(sim, scheduler, capacity=1.0, target=sink)
    for i, (t, cid, size) in enumerate(sorted(arrivals)):
        packet = make_packet(i, class_id=cid, size=size, created_at=t)
        sim.schedule(t, link.receive, packet)
    sim.run()
    return sink, link, sim


class TestUniversalSchedulerInvariants:
    @given(arrival_strategy, st.sampled_from(sorted(available_schedulers())))
    @settings(max_examples=120, deadline=None)
    def test_lossless_every_arrival_departs(self, arrivals, name):
        sink, link, _ = drive(name, arrivals)
        assert sink.received == len(arrivals)
        assert link.drops == 0

    @given(arrival_strategy, st.sampled_from(sorted(available_schedulers())))
    @settings(max_examples=120, deadline=None)
    def test_work_conservation_busy_time(self, arrivals, name):
        sink, link, sim = drive(name, arrivals)
        total_service = sum(size for _, _, size in arrivals)
        # Every byte is transmitted exactly once at capacity 1, so the
        # accumulated busy time equals the total service demand.
        assert math.isclose(link.busy_time, total_service, rel_tol=1e-9)
        # The final departure can never precede the earliest possible
        # completion (work conservation lower bound).
        last_departure = max(p.departed_at for p in sink.packets)
        first_arrival = min(t for t, _, _ in arrivals)
        assert last_departure >= first_arrival + max(
            size for _, _, size in arrivals
        ) - 1e-9
        assert last_departure == sim.now

    @given(arrival_strategy, st.sampled_from(sorted(available_schedulers())))
    @settings(max_examples=120, deadline=None)
    def test_fifo_within_class(self, arrivals, name):
        sink, _, _ = drive(name, arrivals)
        per_class_service: dict[int, list[float]] = {}
        ordered = sorted(arrivals)
        for packet in sink.packets:
            per_class_service.setdefault(packet.class_id, []).append(
                packet.packet_id
            )
        for cid, served_ids in per_class_service.items():
            arrival_order = [
                i for i, (_, c, _) in enumerate(ordered) if c == cid
            ]
            assert served_ids == arrival_order

    @given(arrival_strategy, st.sampled_from(sorted(available_schedulers())))
    @settings(max_examples=120, deadline=None)
    def test_nonnegative_delays_and_causality(self, arrivals, name):
        sink, _, _ = drive(name, arrivals)
        for packet in sink.packets:
            assert packet.service_start >= packet.arrived_at - 1e-12
            assert packet.departed_at >= packet.service_start

    @given(arrival_strategy)
    @settings(max_examples=60, deadline=None)
    def test_conservation_law_across_schedulers(self, arrivals):
        """Sample-path conservation law (the basis of Eq 5): the
        *byte-weighted* total waiting time sum_p(size_p * wait_p) equals
        the time integral of unfinished work minus the fixed service
        term, so it is identical for every work-conserving,
        non-preemptive scheduler on the same arrivals."""
        totals = {}
        for name in ("fcfs", "wtp", "bpr", "strict", "pad", "scfq"):
            sink, _, _ = drive(name, arrivals)
            totals[name] = sum(p.size * p.queueing_delay for p in sink.packets)
        reference = totals["fcfs"]
        for name, value in totals.items():
            assert math.isclose(value, reference, rel_tol=1e-9, abs_tol=1e-6), (
                name, value, reference,
            )
