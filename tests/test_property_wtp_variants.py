"""Property tests tying the WTP variants back to exact WTP."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers import (
    AdaptiveWTPScheduler,
    QuantizedWTPScheduler,
    WTPScheduler,
)
from repro.sim import Link, PacketSink, Simulator

from .conftest import make_packet

pytestmark = pytest.mark.property

SDPS = (1.0, 2.0, 4.0)

arrival_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=1.0, max_value=20.0),
    ),
    min_size=1,
    max_size=50,
)


def departure_order(scheduler, arrivals):
    sim = Simulator()
    sink = PacketSink(keep_packets=True)
    link = Link(sim, scheduler, capacity=1.0, target=sink)
    for i, (t, cid, size) in enumerate(sorted(arrivals)):
        sim.schedule(t, link.receive, make_packet(i, class_id=cid, size=size))
    sim.run()
    return [p.packet_id for p in sink.packets]


class TestVariantEquivalences:
    @given(arrival_strategy)
    @settings(max_examples=80, deadline=None)
    def test_tiny_epoch_quantized_wtp_equals_wtp(self, arrivals):
        """As epoch -> 0 the quantized scheduler's service order
        converges to exact WTP's on any arrival pattern."""
        exact = departure_order(WTPScheduler(SDPS), arrivals)
        quantized = departure_order(
            QuantizedWTPScheduler(SDPS, epoch=1e-9), arrivals
        )
        assert quantized == exact

    @given(arrival_strategy)
    @settings(max_examples=80, deadline=None)
    def test_zero_gain_adaptive_wtp_equals_wtp(self, arrivals):
        """gain = 0 freezes the effective SDPs at nominal: identical
        service order to exact WTP."""
        exact = departure_order(WTPScheduler(SDPS), arrivals)
        adaptive = departure_order(
            AdaptiveWTPScheduler(SDPS, gain=0.0), arrivals
        )
        assert adaptive == exact

    @given(arrival_strategy, st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_adaptive_wtp_effective_sdps_stay_ordered(self, arrivals, gain):
        """Whatever the controller does, the effective SDPs must keep
        the class ordering (higher class ages faster)."""
        scheduler = AdaptiveWTPScheduler(SDPS, gain=gain, max_drift=1.3)
        departure_order(scheduler, arrivals)
        effective = scheduler.effective_sdps
        # Nominal ratios are 2x; drift is capped at 1.3x either way, so
        # adjacent effective SDPs can never cross.
        assert effective[0] < effective[1] < effective[2]
