"""Tests for the coroutine-process layer."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.process import AsyncQueue, Event, Process, spawn


class TestSleep:
    def test_timeouts_advance_the_clock(self, sim):
        log = []

        def worker():
            yield 5.0
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)

        spawn(sim, worker())
        sim.run()
        assert log == [5.0, 7.5]

    def test_two_processes_interleave(self, sim):
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield period
                log.append((name, sim.now))

        spawn(sim, ticker("fast", 1.0))
        spawn(sim, ticker("slow", 2.0))
        sim.run()
        # At t=2.0 both fire; the slow process's wake-up was scheduled
        # earlier (at t=0 vs t=1), so insertion order puts it first.
        assert log == [
            ("fast", 1.0), ("slow", 2.0), ("fast", 2.0),
            ("fast", 3.0), ("slow", 4.0), ("slow", 6.0),
        ]

    def test_negative_sleep_raises(self, sim):
        def bad():
            yield -1.0

        spawn(sim, bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_unsupported_yield_raises(self, sim):
        def bad():
            yield "nope"

        spawn(sim, bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestEvent:
    def test_wait_and_value(self, sim):
        event = Event(sim)
        got = []

        def waiter():
            value = yield event
            got.append((value, sim.now))

        def firer():
            yield 3.0
            event.succeed("payload")

        spawn(sim, waiter())
        spawn(sim, firer())
        sim.run()
        assert got == [("payload", 3.0)]

    def test_yield_on_already_triggered_event(self, sim):
        event = Event(sim)
        event.succeed(42)
        got = []

        def waiter():
            value = yield event
            got.append(value)

        spawn(sim, waiter())
        sim.run()
        assert got == [42]

    def test_multiple_waiters_all_wake(self, sim):
        event = Event(sim)
        got = []

        def waiter(name):
            value = yield event
            got.append((name, value))

        for name in "abc":
            spawn(sim, waiter(name))
        sim.schedule(1.0, event.succeed, "x")
        sim.run()
        assert sorted(got) == [("a", "x"), ("b", "x"), ("c", "x")]

    def test_double_trigger_raises(self, sim):
        event = Event(sim)
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            Event(sim).value


class TestProcessComposition:
    def test_wait_for_child_process_return_value(self, sim):
        def child():
            yield 4.0
            return "result"

        got = []

        def parent():
            value = yield spawn(sim, child())
            got.append((value, sim.now))

        spawn(sim, parent())
        sim.run()
        assert got == [("result", 4.0)]

    def test_finished_flag_and_done_event(self, sim):
        def quick():
            yield 1.0

        process = spawn(sim, quick())
        assert not process.finished
        sim.run()
        assert process.finished
        assert process.done.triggered


class TestAsyncQueue:
    def test_producer_consumer(self, sim):
        queue = AsyncQueue(sim)
        consumed = []

        def producer():
            for item in range(3):
                yield 2.0
                queue.put(item)

        def consumer():
            for _ in range(3):
                item = yield queue.get()
                consumed.append((item, sim.now))

        spawn(sim, producer())
        spawn(sim, consumer())
        sim.run()
        assert consumed == [(0, 2.0), (1, 4.0), (2, 6.0)]

    def test_get_resolves_immediately_when_stocked(self, sim):
        queue = AsyncQueue(sim)
        queue.put("ready")
        got = []

        def consumer():
            item = yield queue.get()
            got.append((item, sim.now))

        spawn(sim, consumer())
        sim.run()
        assert got == [("ready", 0.0)]
        assert len(queue) == 0

    def test_fifo_order_across_getters(self, sim):
        queue = AsyncQueue(sim)
        got = []

        def consumer(name):
            item = yield queue.get()
            got.append((name, item))

        spawn(sim, consumer("first"))
        spawn(sim, consumer("second"))
        sim.schedule(1.0, queue.put, "a")
        sim.schedule(2.0, queue.put, "b")
        sim.run()
        assert got == [("first", "a"), ("second", "b")]


class TestProcessWithLink:
    def test_process_driving_real_traffic(self, sim):
        """A coroutine can inject packets into the packet substrate."""
        from repro.schedulers import FCFSScheduler
        from repro.sim import Link, PacketSink
        from repro.sim.packet import Packet

        sink = PacketSink(keep_packets=True)
        link = Link(sim, FCFSScheduler(1), capacity=1.0, target=sink)

        def injector():
            for k in range(3):
                link.receive(Packet(k, 0, size=2.0, created_at=sim.now))
                yield 1.0

        spawn(sim, injector())
        sim.run()
        assert sink.received == 3
        # Back-to-back service: departures at 2, 4, 6.
        assert [p.departed_at for p in sink.packets] == [2.0, 4.0, 6.0]
