"""Tests for the SVG chart renderer and figure builders."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.svg_plot import (
    LineSeries,
    SvgCanvas,
    box_chart,
    grouped_bar_chart,
    line_chart,
    scatter_chart,
)
from repro.core.metrics import PercentileSummary
from repro.errors import ConfigurationError
from repro.experiments.figure1 import FigureOnePoint
from repro.experiments.figure2 import FigureTwoPoint
from repro.experiments.figure3 import FigureThreeBox
from repro.experiments.figure45 import MicroscopicViews
from repro.experiments.figures_svg import (
    figure1_svg,
    figure2_svg,
    figure3_svg,
    figure45_svg,
    save_figures,
)
from repro.traffic.mix import PAPER_DEFAULT_LOADS


SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(canvas: SvgCanvas) -> ET.Element:
    """Render and parse; raises if the SVG is not well-formed XML."""
    return ET.fromstring(canvas.render())


class TestSvgCanvas:
    def test_coordinate_mapping(self):
        canvas = SvgCanvas(x_min=0.0, x_max=10.0, y_min=0.0, y_max=10.0)
        assert canvas.px(0.0) == canvas.margin_left
        assert canvas.px(10.0) == canvas.width - canvas.margin_right
        # y is flipped.
        assert canvas.py(0.0) > canvas.py(10.0)

    def test_render_is_valid_xml(self):
        canvas = SvgCanvas(x_min=0, x_max=1, y_min=0, y_max=1)
        canvas.line(0, 0, 1, 1)
        canvas.circle(0.5, 0.5)
        canvas.text(10, 10, "hello & <world>")
        root = parse(canvas)
        assert root.tag == f"{SVG_NS}svg"

    def test_text_is_escaped(self):
        canvas = SvgCanvas(x_min=0, x_max=1, y_min=0, y_max=1)
        canvas.text(10, 10, "a<b&c")
        assert "a&lt;b&amp;c" in canvas.render()

    def test_invalid_viewport_rejected(self):
        with pytest.raises(ConfigurationError):
            SvgCanvas(x_min=1.0, x_max=1.0, y_min=0, y_max=1)

    def test_save(self, tmp_path):
        canvas = SvgCanvas(x_min=0, x_max=1, y_min=0, y_max=1)
        path = canvas.save(tmp_path / "chart.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestChartBuilders:
    def test_line_chart_structure(self):
        canvas = line_chart(
            [LineSeries("a", ((0.7, 1.5), (0.95, 1.9)))],
            title="t", x_label="x", y_label="y", y_reference=2.0,
        )
        root = parse(canvas)
        polylines = root.findall(f"{SVG_NS}polyline")
        circles = root.findall(f"{SVG_NS}circle")
        assert len(polylines) == 1
        assert len(circles) == 2

    def test_line_chart_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart([], "t", "x", "y")

    def test_box_chart_structure(self):
        canvas = box_chart(
            [("wtp", 1.0, 1.5, 2.0, 2.5, 3.0), ("bpr", 0.5, 1.0, 1.8, 2.2, 3.5)],
            title="t", y_label="y", y_reference=2.0,
        )
        root = parse(canvas)
        rects = root.findall(f"{SVG_NS}rect")
        # background + 2 boxes (+ no legend rects).
        assert len(rects) >= 3

    def test_scatter_chart_structure(self):
        canvas = scatter_chart(
            [("c1", [(0.0, 1.0), (1.0, 2.0)]), ("c2", [(0.5, 0.5)])],
            title="t", x_label="x", y_label="y",
        )
        root = parse(canvas)
        assert len(root.findall(f"{SVG_NS}circle")) == 3

    def test_grouped_bar_chart_structure(self):
        canvas = grouped_bar_chart(
            ["a", "b"], [("g1", [1.0, 2.0]), ("g2", [1.5, 0.5])],
            title="t", y_label="y",
        )
        root = parse(canvas)
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) >= 5  # background + 4 bars + legend swatches

    def test_grouped_bar_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            grouped_bar_chart(["a"], [("g", [1.0, 2.0])], "t", "y")


class TestFigureBuilders:
    def test_figure1_svg(self):
        points = [
            FigureOnePoint("wtp", 0.7, [1.5, 1.4, 1.3], [2.0] * 3, True),
            FigureOnePoint("wtp", 0.95, [1.9, 1.9, 1.8], [2.0] * 3, True),
            FigureOnePoint("bpr", 0.7, [1.3, 1.2, 1.1], [2.0] * 3, True),
            FigureOnePoint("bpr", 0.95, [1.8, 1.7, 1.5], [2.0] * 3, True),
        ]
        root = parse(figure1_svg(points))
        assert len(root.findall(f"{SVG_NS}polyline")) == 2

    def test_figure2_svg(self):
        points = [
            FigureTwoPoint("wtp", PAPER_DEFAULT_LOADS, [1.9] * 3, [2.0] * 3, True),
            FigureTwoPoint("bpr", PAPER_DEFAULT_LOADS, [1.6] * 3, [2.0] * 3, True),
        ]
        root = parse(figure2_svg(points))
        assert root.tag == f"{SVG_NS}svg"

    def test_figure3_svg(self):
        summary = PercentileSummary(1.0, 1.5, 2.0, 2.5, 3.0, 10)
        boxes = [FigureThreeBox("wtp", 10.0, summary),
                 FigureThreeBox("bpr", 10.0, summary)]
        root = parse(figure3_svg(boxes))
        assert root.tag == f"{SVG_NS}svg"

    def test_figure45_svg_names_figures(self):
        views = {
            "bpr": MicroscopicViews("bpr", np.empty((0, 2)),
                                    [[(1.0, 2.0)], [(1.5, 1.0)]]),
            "wtp": MicroscopicViews("wtp", np.empty((0, 2)),
                                    [[(1.0, 1.5)], []]),
        }
        charts = figure45_svg(views)
        assert set(charts) == {"bpr", "wtp"}
        assert "Figure 4" in charts["bpr"].render()
        assert "Figure 5" in charts["wtp"].render()

    def test_save_figures(self, tmp_path):
        canvas = SvgCanvas(x_min=0, x_max=1, y_min=0, y_max=1)
        paths = save_figures({"one": canvas, "two": canvas}, tmp_path)
        assert sorted(p.name for p in paths) == ["one.svg", "two.svg"]
        for p in paths:
            assert p.exists()


class TestCliFigureExport:
    def test_export_dir_writes_svg(self, capsys, tmp_path):
        from repro.cli import main

        assert main(
            ["figure3", "--scale", "0.05", "--export-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert (tmp_path / "figure3.svg").exists()
        assert (tmp_path / "figure3.csv").exists()
        ET.parse(tmp_path / "figure3.svg")  # well-formed
