"""Tests for the general routed-topology substrate."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.network import FlowRecorder, RoutedNetwork, UserFlow
from repro.schedulers import WTPScheduler
from repro.sim import PacketSink, Simulator

from .conftest import make_packet


def build_y_network(sim):
    """Two ingress branches merging into one trunk: a -> c -> d and
    b -> c -> d."""
    net = RoutedNetwork(sim)
    for node in ("a", "b", "c", "d"):
        net.add_node(node)
    net.add_link("a", "c", WTPScheduler((1.0, 2.0)), capacity=1.0)
    net.add_link("b", "c", WTPScheduler((1.0, 2.0)), capacity=1.0)
    net.add_link("c", "d", WTPScheduler((1.0, 2.0)), capacity=1.0)
    return net


class TestConstruction:
    def test_unknown_node_rejected(self, sim):
        net = RoutedNetwork(sim)
        net.add_node("a")
        with pytest.raises(TopologyError):
            net.add_link("a", "zz", WTPScheduler((1.0, 2.0)), 1.0)

    def test_duplicate_edge_rejected(self, sim):
        net = RoutedNetwork(sim)
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b", WTPScheduler((1.0, 2.0)), 1.0)
        with pytest.raises(TopologyError):
            net.add_link("a", "b", WTPScheduler((1.0, 2.0)), 1.0)

    def test_route_must_use_existing_edges(self, sim):
        net = build_y_network(sim)
        with pytest.raises(TopologyError):
            net.add_route(1, ("a", "d"))

    def test_route_needs_two_nodes(self, sim):
        net = build_y_network(sim)
        with pytest.raises(TopologyError):
            net.add_route(1, ("a",))

    def test_duplicate_flow_rejected(self, sim):
        net = build_y_network(sim)
        net.add_route(1, ("a", "c", "d"))
        with pytest.raises(TopologyError):
            net.add_route(1, ("b", "c", "d"))

    def test_missing_edge_lookup(self, sim):
        net = build_y_network(sim)
        with pytest.raises(TopologyError):
            net.edge_link("d", "a")

    def test_unrouted_flow_ingress_rejected(self, sim):
        net = build_y_network(sim)
        with pytest.raises(TopologyError):
            net.ingress(99)


class TestShortestPathRouting:
    def build_diamond(self, sim):
        """a -> b -> d (2 hops) and a -> c1 -> c2 -> d (3 hops)."""
        net = RoutedNetwork(sim)
        for node in ("a", "b", "c1", "c2", "d"):
            net.add_node(node)
        for edge in (("a", "b"), ("b", "d"), ("a", "c1"),
                     ("c1", "c2"), ("c2", "d")):
            net.add_link(*edge, WTPScheduler((1.0, 2.0)), capacity=1.0)
        return net

    def test_hop_count_shortest_path(self, sim):
        net = self.build_diamond(sim)
        assert net.shortest_path("a", "d") == ["a", "b", "d"]

    def test_weighted_path_avoids_expensive_edge(self, sim):
        net = self.build_diamond(sim)

        def weight(src, dst, link):
            return 100.0 if (src, dst) == ("a", "b") else 1.0

        assert net.shortest_path("a", "d", weight) == ["a", "c1", "c2", "d"]

    def test_no_path_raises(self, sim):
        net = self.build_diamond(sim)
        net.add_node("island")
        with pytest.raises(TopologyError):
            net.shortest_path("a", "island")

    def test_auto_route_delivers_traffic(self, sim):
        net = self.build_diamond(sim)
        recorder = FlowRecorder()
        path = net.add_auto_route(9, "a", "d", terminal=recorder)
        assert path == ["a", "b", "d"]
        UserFlow(sim, net.ingress(9), flow_id=9, class_id=1,
                 num_packets=3, packet_size=1.0, period=2.0).launch(0.0)
        sim.run()
        assert recorder.packet_count(9) == 3
        assert recorder.hops_seen[9] == 2


class TestForwarding:
    def test_flow_follows_its_route(self, sim):
        net = build_y_network(sim)
        recorder = FlowRecorder()
        net.add_route(7, ("a", "c", "d"), terminal=recorder)
        flow = UserFlow(sim, net.ingress(7), flow_id=7, class_id=1,
                        num_packets=3, packet_size=1.0, period=5.0)
        flow.launch(0.0)
        sim.run()
        assert recorder.packet_count(7) == 3
        assert recorder.hops_seen[7] == 2  # a->c and c->d

    def test_merging_flows_share_the_trunk(self, sim):
        net = build_y_network(sim)
        rec_a, rec_b = FlowRecorder(), FlowRecorder()
        net.add_route(1, ("a", "c", "d"), terminal=rec_a)
        net.add_route(2, ("b", "c", "d"), terminal=rec_b)
        for fid, cls in ((1, 0), (2, 1)):
            UserFlow(sim, net.ingress(fid), flow_id=fid, class_id=cls,
                     num_packets=5, packet_size=1.0, period=1.0).launch(0.0)
        sim.run()
        assert rec_a.packet_count(1) == 5
        assert rec_b.packet_count(2) == 5
        trunk = net.edge_link("c", "d")
        assert trunk.departures == 10

    def test_cross_traffic_exits_at_local_sink(self, sim):
        net = build_y_network(sim)
        net.add_route(1, ("a", "c", "d"))
        link = net.edge_link("a", "c")
        sim.schedule(0.0, link.receive, make_packet(0, flow_id=None))
        sim.run()
        demux = link.target
        assert demux.local_sink.received == 1
        assert net.edge_link("c", "d").departures == 0

    def test_stray_flow_on_foreign_edge_is_swallowed(self, sim):
        """A packet whose flow is routed elsewhere never loops."""
        net = build_y_network(sim)
        net.add_route(1, ("a", "c", "d"))
        foreign = net.edge_link("b", "c")
        sim.schedule(0.0, foreign.receive, make_packet(0, flow_id=1))
        sim.run()
        # Not forwarded to c->d: the (b, c) edge is not on flow 1's route.
        assert net.edge_link("c", "d").departures == 0

    def test_trunk_differentiates_between_branch_flows(self, sim):
        """Class differentiation happens wherever flows share a link,
        even when they arrive from different branches."""
        net = build_y_network(sim)
        rec = {1: FlowRecorder(), 2: FlowRecorder()}
        net.add_route(1, ("a", "c", "d"), terminal=rec[1])
        net.add_route(2, ("b", "c", "d"), terminal=rec[2])
        # Saturate the trunk: both branches deliver back-to-back.
        for fid, cls in ((1, 0), (2, 1)):
            UserFlow(sim, net.ingress(fid), flow_id=fid, class_id=cls,
                     num_packets=40, packet_size=1.0, period=1.0).launch(0.0)
        sim.run()
        low = sum(rec[1].flow_delays(1)) / 40
        high = sum(rec[2].flow_delays(2)) / 40
        assert high <= low
