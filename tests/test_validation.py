"""Tests for the self-check battery."""

from __future__ import annotations

import pytest

from repro.validation import CheckResult, format_selfcheck, run_selfcheck


@pytest.mark.slow
class TestSelfCheck:
    def test_battery_all_pass(self):
        results = run_selfcheck()
        assert len(results) == 7
        failures = [r for r in results if not r.passed]
        assert not failures, format_selfcheck(results)

    def test_format_reports_status(self):
        results = [
            CheckResult("good", True, "fine"),
            CheckResult("bad", False, "broken"),
        ]
        text = format_selfcheck(results)
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert "1/2 checks passed" in text
        assert "INSTALLATION PROBLEM" in text

    def test_cli_subcommand(self, capsys):
        from repro.cli import main

        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "7/7 checks passed" in out
