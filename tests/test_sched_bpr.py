"""Tests for the BPR scheduler: fluid model (Proposition 1) and the
packetized Appendix 3 algorithm."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.schedulers import BPRScheduler, fluid_backlogs, fluid_clearing_time
from repro.sim import Link, PacketSink, Simulator

from .conftest import make_packet, run_poisson_link


class TestFluidModel:
    def test_total_backlog_drains_at_link_rate(self):
        q0 = [100.0, 50.0, 25.0]
        backlogs = fluid_backlogs(q0, (1.0, 2.0, 4.0), capacity=10.0, elapsed=5.0)
        assert sum(backlogs) == pytest.approx(sum(q0) - 50.0, rel=1e-6)

    def test_power_law_invariant(self):
        """q_i(t) = q_i(0) theta^{s_i}: check theta consistency."""
        q0 = [100.0, 50.0]
        sdps = (1.0, 3.0)
        backlogs = fluid_backlogs(q0, sdps, capacity=10.0, elapsed=8.0)
        theta_1 = backlogs[0] / q0[0]
        theta_2 = (backlogs[1] / q0[1]) ** (1.0 / 3.0)
        assert theta_1 == pytest.approx(theta_2, rel=1e-5)

    def test_higher_sdp_class_drains_faster_in_proportion(self):
        q0 = [100.0, 100.0]
        backlogs = fluid_backlogs(q0, (1.0, 4.0), capacity=10.0, elapsed=10.0)
        assert backlogs[1] < backlogs[0]

    def test_simultaneous_clearing_proposition_1(self):
        """Just before the clearing instant every queue is still
        positive; at the instant every queue is (numerically) zero."""
        q0 = [100.0, 60.0, 20.0]
        capacity = 10.0
        t_clear = fluid_clearing_time(q0, capacity)
        assert t_clear == pytest.approx(18.0)
        just_before = fluid_backlogs(q0, (1.0, 2.0, 4.0), capacity,
                                     t_clear - 1e-6)
        assert all(q > 0 for q in just_before)
        at_clear = fluid_backlogs(q0, (1.0, 2.0, 4.0), capacity, t_clear)
        assert all(q == pytest.approx(0.0, abs=1e-9) for q in at_clear)

    def test_elapsed_beyond_clearing_rejected(self):
        with pytest.raises(ConfigurationError):
            fluid_backlogs([10.0], (1.0,), capacity=1.0, elapsed=11.0)

    def test_zero_elapsed_returns_initial(self):
        q0 = [10.0, 20.0]
        assert fluid_backlogs(q0, (1.0, 2.0), 1.0, 0.0) == pytest.approx(q0)


class TestPacketizedBPR:
    def test_requires_capacity(self):
        scheduler = BPRScheduler((1.0, 2.0))
        scheduler.enqueue(make_packet(0, class_id=0), 0.0)
        with pytest.raises(ConfigurationError):
            scheduler.select(1.0)

    def test_rates_proportional_to_weighted_backlogs(self):
        scheduler = BPRScheduler((1.0, 3.0), capacity=12.0)
        scheduler.enqueue(make_packet(0, class_id=0, size=100.0), 0.0)
        scheduler.enqueue(make_packet(1, class_id=0, size=100.0), 0.0)
        scheduler.enqueue(make_packet(2, class_id=1, size=100.0), 0.0)
        scheduler.enqueue(make_packet(3, class_id=1, size=100.0), 0.0)
        scheduler.select(0.0)  # pops one class-1 (new busy period, v=0 all;
        # score = L - v equal; tie to higher class)
        rates = scheduler.current_rates
        # Post-selection backlogs: class1=200, class2=100 bytes.
        # weights: 1*200 : 3*100 -> 2 : 3 of 12 = 4.8 / 7.2.
        assert rates[0] == pytest.approx(4.8)
        assert rates[1] == pytest.approx(7.2)
        assert sum(rates) == pytest.approx(12.0)

    def test_work_conservation_of_assigned_rates(self):
        scheduler = BPRScheduler((1.0, 2.0, 4.0), capacity=10.0)
        for i in range(6):
            scheduler.enqueue(make_packet(i, class_id=i % 3, size=50.0), 0.0)
        scheduler.select(0.0)
        assert sum(scheduler.current_rates) == pytest.approx(10.0)

    def test_empty_classes_get_zero_rate(self):
        scheduler = BPRScheduler((1.0, 2.0), capacity=10.0)
        scheduler.enqueue(make_packet(0, class_id=0, size=10.0), 0.0)
        scheduler.enqueue(make_packet(1, class_id=0, size=10.0), 0.0)
        scheduler.select(0.0)
        assert scheduler.current_rates[1] == 0.0

    def test_tie_breaks_to_higher_class(self):
        scheduler = BPRScheduler((1.0, 2.0), capacity=1.0)
        low = make_packet(0, class_id=0, size=10.0)
        high = make_packet(1, class_id=1, size=10.0)
        scheduler.enqueue(low, 0.0)
        scheduler.enqueue(high, 0.0)
        assert scheduler.select(0.0) is high

    def test_fifo_within_class(self):
        scheduler = BPRScheduler((1.0, 2.0), capacity=1.0)
        first = make_packet(0, class_id=1, size=10.0)
        second = make_packet(1, class_id=1, size=10.0)
        scheduler.enqueue(first, 0.0)
        scheduler.enqueue(second, 0.0)
        assert scheduler.select(0.0) is first

    def test_approximate_simultaneous_clearing(self):
        """Packetized analogue of Proposition 1: with no further
        arrivals, both queues drain within a few packets of each other
        even though their backlogs start very unequal."""
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        scheduler = BPRScheduler((1.0, 2.0))
        link = Link(sim, scheduler, capacity=1.0, target=sink)
        pid = 0
        for _ in range(30):
            sim.schedule(0.0, link.receive, make_packet(pid, 0, size=1.0))
            pid += 1
        for _ in range(10):
            sim.schedule(0.0, link.receive, make_packet(pid, 1, size=1.0))
            pid += 1
        sim.run()
        # Find when each class's last packet departs.  Fluid BPR would
        # clear both at t=40 (Proposition 1); packetization leaves a
        # few packets of slack, but the small queue must NOT finish at
        # ~t=10 as strict priority or at ~t=20 as an interleaving
        # round-robin spread evenly would allow.
        last = {}
        for packet in sink.packets:
            last[packet.class_id] = packet.departed_at
        clearing = 40.0
        assert last[0] == pytest.approx(clearing, abs=0.01)
        assert last[1] >= 0.75 * clearing

    def test_heavy_load_ratio_trend(self):
        """BPR approaches (if less exactly than WTP) the inverse SDP
        ratios under heavy Poisson load."""
        rho = 0.97
        rates = [rho * share for share in (0.4, 0.3, 0.2, 0.1)]
        delays, _ = run_poisson_link(
            BPRScheduler((1.0, 2.0, 4.0, 8.0)), rates, horizon=2e5
        )
        for i in range(3):
            ratio = delays[i] / delays[i + 1]
            assert 1.3 < ratio < 2.8  # differentiating in the right band

    def test_classes_ordered_correctly(self):
        rates = [0.9 * share for share in (0.4, 0.3, 0.2, 0.1)]
        delays, _ = run_poisson_link(
            BPRScheduler((1.0, 2.0, 4.0, 8.0)), rates, horizon=1e5
        )
        assert delays[0] > delays[1] > delays[2] > delays[3]
