"""Property-based tests for the extension modules (PLR, DRR, trace IO)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dropping import PLRDropper
from repro.schedulers import DRRScheduler
from repro.sim import Link, PacketSink, Simulator
from repro.traffic import load_trace_csv, save_trace, load_trace, save_trace_csv
from repro.traffic.trace import ArrivalTrace

from .conftest import make_packet

pytestmark = pytest.mark.property


class TestPLRWindowInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # class
                st.booleans(),                          # drop after arrival?
            ),
            max_size=200,
        ),
        st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_windowed_counts_stay_consistent(self, events, window):
        """Windowed drops never exceed windowed arrivals per class, and
        window totals never exceed the window size."""
        dropper = PLRDropper((4.0, 2.0, 1.0), window=window)
        for cid, dropped in events:
            dropper.on_arrival(cid, 0.0)
            if dropped:
                dropper.on_drop(cid, 0.0)
            for c in range(3):
                assert 0 <= dropper._win_drops[c] <= dropper._win_arrivals[c]
            assert sum(dropper._win_arrivals) <= window
            fraction = dropper.loss_fraction(cid)
            assert 0.0 <= fraction <= 1.0

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=2), st.booleans()),
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_infinite_window_fractions_bounded(self, events):
        dropper = PLRDropper((4.0, 2.0, 1.0))
        for cid, dropped in events:
            dropper.on_arrival(cid, 0.0)
            if dropped:
                dropper.on_drop(cid, 0.0)
        for c in range(3):
            assert 0.0 <= dropper.loss_fraction(c) <= 1.0
            assert dropper.drops[c] <= dropper.arrivals[c]


class TestDRRProperties:
    @given(
        st.lists(st.floats(min_value=0.5, max_value=4.0),
                 min_size=2, max_size=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_persistent_backlog_shares_track_weights(self, raw_weights):
        """For any weight vector, long-run byte shares of persistently
        backlogged classes approximate the normalized weights."""
        weights = tuple(raw_weights)
        num_classes = len(weights)
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        link = Link(sim, DRRScheduler(weights), capacity=100.0, target=sink)
        per_class = 300
        for cid in range(num_classes):
            for k in range(per_class):
                sim.schedule(
                    0.0, link.receive,
                    make_packet(cid * 10_000 + k, class_id=cid, size=100.0),
                )
        # Serve only a fraction of the total work so even the most
        # favoured class keeps a backlog throughout (max weight share
        # is < 1, so per_class served packets cannot exhaust a class).
        sim.run(until=float(per_class) * 0.9)
        served = [0.0] * num_classes
        for packet in sink.packets:
            served[packet.class_id] += packet.size
        total_served = sum(served)
        total_weight = sum(weights)
        for cid in range(num_classes):
            expected = weights[cid] / total_weight
            assert abs(served[cid] / total_served - expected) < 0.08


trace_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e4),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=1.0, max_value=1500.0),
    ),
    min_size=1,
    max_size=100,
)


class TestTraceIOProperties:
    @given(trace_strategy)
    @settings(max_examples=60, deadline=None)
    def test_npz_round_trip_exact(self, tmp_path_factory, rows):
        rows.sort()
        trace = ArrivalTrace(
            np.array([t for t, _, _ in rows]),
            np.array([c for _, c, _ in rows], dtype=np.int64),
            np.array([s for _, _, s in rows]),
        )
        path = tmp_path_factory.mktemp("io") / "t.npz"
        loaded = load_trace(save_trace(trace, path))
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.class_ids, trace.class_ids)
        assert np.array_equal(loaded.sizes, trace.sizes)

    @given(trace_strategy)
    @settings(max_examples=60, deadline=None)
    def test_csv_round_trip_exact(self, tmp_path_factory, rows):
        rows.sort()
        trace = ArrivalTrace(
            np.array([t for t, _, _ in rows]),
            np.array([c for _, c, _ in rows], dtype=np.int64),
            np.array([s for _, _, s in rows]),
        )
        path = tmp_path_factory.mktemp("io") / "t.csv"
        loaded = load_trace_csv(save_trace_csv(trace, path))
        # repr() round-trips floats exactly through CSV.
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.class_ids, trace.class_ids)
        assert np.array_equal(loaded.sizes, trace.sizes)
