"""Tests of the city-scale scenario corpus: generators, cells, grids.

The load-bearing properties:

* flow apportionment and branch dealing are exact, deterministic pure
  functions of the config,
* trace compilation is bit-identical across processes (spawn-order
  seeded) and its group key tracks exactly the traffic-shaping fields,
* both topologies build and run, including under the invariant checker,
* a sharded city sweep with shared-memory traces equals the serial
  per-cell-compile reference bit for bit.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runner import ShardRunner, serial_runner
from repro.scenarios import (
    CITY_SIZE_PROBS,
    CITY_SIZES,
    CityGridConfig,
    CityScenarioConfig,
    CityTask,
    branch_flow_counts,
    city_summary,
    city_tasks,
    city_to_csv,
    compile_city_traces,
    flow_classes,
    format_city,
    run_city,
    trace_group_key,
)
from repro.scenarios.generators import city_size_mean, total_byte_rate

#: Small enough for CI, big enough to exercise every branch and class.
TINY = CityScenarioConfig(
    branches=4,
    flows=24,
    flow_gap=50.0,
    horizon=1500.0,
    warmup=100.0,
)

TINY_GRID = CityGridConfig(
    base=TINY,
    schedulers=("wtp",),
    sdp_grid=((1.0, 2.0, 4.0, 8.0),),
    utilizations=(0.8, 0.9),
    seeds=(1,),
)


class TestConfigValidation:
    def test_rejects_unknown_topology(self):
        with pytest.raises(ConfigurationError):
            CityScenarioConfig(topology="torus")

    def test_rejects_mismatched_mix(self):
        with pytest.raises(ConfigurationError):
            CityScenarioConfig(sdps=(1.0, 2.0), class_mix=(0.5, 0.3, 0.2))

    def test_rejects_mix_not_summing_to_one(self):
        with pytest.raises(ConfigurationError):
            CityScenarioConfig(
                sdps=(1.0, 2.0), class_mix=(0.6, 0.6)
            )

    def test_target_ratios_follow_eq13(self):
        config = CityScenarioConfig(
            sdps=(1.0, 4.0, 16.0), class_mix=(0.5, 0.3, 0.2)
        )
        assert config.target_ratios() == [4.0, 4.0]


class TestGenerators:
    def test_flow_classes_largest_remainder_is_exact(self):
        classes = flow_classes(1000, (0.4, 0.3, 0.2, 0.1))
        assert [classes.count(c) for c in range(4)] == [400, 300, 200, 100]

    def test_flow_classes_distributes_shortfall(self):
        classes = flow_classes(7, (0.5, 0.3, 0.2))
        assert [classes.count(c) for c in range(3)] == [4, 2, 1]
        assert len(classes) == 7

    def test_branch_flow_counts_sum_and_balance(self):
        counts = branch_flow_counts(10, 4)
        assert counts == [3, 3, 2, 2]
        assert sum(counts) == 10

    def test_size_mix_mean_matches_probabilities(self):
        assert city_size_mean() == pytest.approx(
            float(np.dot(CITY_SIZES, CITY_SIZE_PROBS))
        )

    def test_total_byte_rate_scales_with_flows(self):
        double = dataclasses.replace(TINY, flows=TINY.flows * 2)
        assert total_byte_rate(double) == pytest.approx(
            2 * total_byte_rate(TINY)
        )


class TestTraceCompilation:
    def test_compilation_is_deterministic(self):
        first = compile_city_traces(TINY)
        second = compile_city_traces(TINY)
        assert len(first) == TINY.branches
        for a, b in zip(first, second):
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.class_ids, b.class_ids)
            assert np.array_equal(a.sizes, b.sizes)

    def test_branch_traces_are_time_sorted(self):
        for trace in compile_city_traces(TINY):
            assert np.all(np.diff(trace.times) >= 0)

    def test_surplus_branches_get_empty_traces(self):
        sparse = dataclasses.replace(TINY, branches=8, flows=2)
        traces = compile_city_traces(sparse)
        assert len(traces) == 8
        assert [len(t) > 0 for t in traces] == [True] * 2 + [False] * 6

    def test_group_key_ignores_service_side_fields(self):
        base = trace_group_key(TINY)
        for change in (
            {"scheduler": "bpr"},
            {"sdps": (1.0, 4.0, 16.0, 64.0)},
            {"utilization": 0.8},
            {"edge_utilization": 0.6},
            {"topology": "fat_tree_lite"},
        ):
            assert trace_group_key(dataclasses.replace(TINY, **change)) == base

    def test_group_key_tracks_traffic_fields(self):
        base = trace_group_key(TINY)
        for change in (
            {"seed": 2},
            {"flows": TINY.flows + 1},
            {"flow_gap": 60.0},
            {"pareto_shape": 1.5},
        ):
            assert trace_group_key(dataclasses.replace(TINY, **change)) != base


class TestCitySummary:
    def test_summary_is_json_able_and_complete(self):
        summary = city_summary(CityTask(config=TINY))
        round_tripped = json.loads(json.dumps(summary))
        assert round_tripped["topology"] == "star_of_chains"
        assert len(round_tripped["ratios"]) == TINY.num_classes - 1
        assert round_tripped["packets"] > 0
        assert round_tripped["hub_departures"] > 0

    def test_fat_tree_lite_runs(self):
        config = dataclasses.replace(TINY, topology="fat_tree_lite")
        summary = city_summary(CityTask(config=config))
        assert summary["topology"] == "fat_tree_lite"
        assert summary["hub_departures"] > 0

    def test_invariant_checked_run(self):
        config = dataclasses.replace(TINY, check_invariants=True)
        summary = city_summary(CityTask(config=config))
        assert summary["checked"] is True

    def test_multi_hop_star_runs(self):
        config = dataclasses.replace(TINY, hops_per_branch=2)
        summary = city_summary(CityTask(config=config))
        assert summary["hub_departures"] > 0


class TestCityGrid:
    def test_cells_cover_the_product_seed_outermost(self):
        grid = CityGridConfig(
            base=TINY,
            schedulers=("wtp", "bpr"),
            sdp_grid=((1.0, 2.0, 4.0, 8.0),),
            utilizations=(0.8,),
            seeds=(1, 2),
        )
        cells = grid.cells()
        assert len(cells) == 4
        assert [c.seed for c in cells] == [1, 1, 2, 2]
        assert {c.scheduler for c in cells} == {"wtp", "bpr"}

    def test_scaled_shrinks_flows_and_seeds(self):
        grid = CityGridConfig(base=CityScenarioConfig(), seeds=(1, 2, 3, 4))
        small = grid.scaled(0.25)
        assert small.base.flows < grid.base.flows
        assert len(small.seeds) == 1

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            CityGridConfig().scaled(0.0)

    def test_sharded_city_sweep_equals_serial(self):
        serial = run_city(TINY_GRID, runner=serial_runner())
        with ShardRunner(jobs=2, shard_size=1) as runner:
            sharded = run_city(TINY_GRID, runner=runner)
        assert sharded == serial

    def test_inline_fallback_city_sweep_equals_serial(self):
        serial = run_city(TINY_GRID, runner=serial_runner())
        with ShardRunner(jobs=2, use_shm=False) as runner:
            sharded = run_city(TINY_GRID, runner=runner)
        assert sharded == serial

    def test_format_and_csv_cover_every_cell(self, tmp_path):
        points = run_city(TINY_GRID, runner=serial_runner())
        table = format_city(points)
        assert len(table.splitlines()) == len(points) + 1
        path = city_to_csv(points, tmp_path / "city.csv")
        rows = path.read_text().splitlines()
        assert len(rows) == len(points) + 1
        assert rows[0].startswith("topology,scheduler,sdps")

    def test_city_tasks_wrap_cells(self):
        tasks = city_tasks(TINY_GRID)
        assert all(isinstance(t, CityTask) for t in tasks)
        assert [t.config for t in tasks] == TINY_GRID.cells()
