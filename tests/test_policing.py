"""Tests for the token bucket and the absolute-service edge behaviours."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.policing import AssuredMarker, PremiumPolicer, TokenBucket
from repro.schedulers import StrictPriorityScheduler, WTPScheduler
from repro.sim import DelayMonitor, Link, PacketSink, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import (
    ConstantInterarrivals,
    FixedPacketSize,
    PacketIdAllocator,
    PoissonInterarrivals,
    TrafficSource,
)

from .conftest import make_packet


class TestTokenBucket:
    def test_burst_admits_up_to_bucket_depth(self):
        bucket = TokenBucket(rate=1.0, burst=10.0)
        assert bucket.conforms(6.0, 0.0)
        assert bucket.conforms(4.0, 0.0)
        assert not bucket.conforms(1.0, 0.0)

    def test_refill_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=10.0)
        assert bucket.conforms(10.0, 0.0)
        assert not bucket.conforms(5.0, 1.0)   # only 2 tokens back
        assert bucket.conforms(5.0, 2.5)       # 2 + 3 more = 5

    def test_tokens_capped_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=10.0)
        assert bucket.tokens(1000.0) == 10.0

    def test_time_going_backwards_rejected(self):
        bucket = TokenBucket(1.0, 1.0)
        bucket.conforms(0.5, 10.0)
        with pytest.raises(ConfigurationError):
            bucket.conforms(0.5, 5.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(1.0, 0.0)


class TestPremiumPolicer:
    def test_in_profile_passes_excess_drops(self, sim):
        sink = PacketSink(keep_packets=True)
        policer = PremiumPolicer(sim, sink, rate=1.0, burst=100.0)
        # Source at twice the profile: 100-byte packets every 50 units.
        source = TrafficSource(
            sim, policer, 1, ConstantInterarrivals(50.0),
            FixedPacketSize(100.0), stop_time=2000.0,
        )
        source.start()
        sim.run()
        assert policer.forwarded + policer.dropped == source.packets_emitted
        assert policer.dropped > 0
        # Long-run forwarded byte rate ~ the profile rate (1 byte/unit).
        forwarded_bytes = policer.forwarded * 100.0
        assert forwarded_bytes <= 1.0 * 2000.0 + 100.0  # rate + one burst

    def test_premium_delay_bounded_under_cross_load(self):
        """The §1 claim: policed EF traffic behind strict priority sees
        leased-line-like (tiny, load-independent) delays."""
        sim = Simulator()
        streams = RandomStreams(8)
        link = Link(sim, StrictPriorityScheduler(2), capacity=1.0,
                    target=PacketSink())
        monitor = DelayMonitor(2, warmup=1e3)
        link.add_monitor(monitor)
        ids = PacketIdAllocator()
        # Heavy best-effort class-1 load.
        TrafficSource(
            sim, link, 0, PoissonInterarrivals(1.15, streams.generator()),
            FixedPacketSize(1.0), ids=ids,
        ).start()
        # Premium class-2 flow policed to 10% of the link.
        policer = PremiumPolicer(sim, link, rate=0.1, burst=2.0)
        TrafficSource(
            sim, policer, 1, PoissonInterarrivals(10.0, streams.generator()),
            FixedPacketSize(1.0), ids=ids,
        ).start()
        sim.run(until=5e4)
        # EF waits at most ~ one best-effort packet + its own small burst.
        assert monitor.mean_delay(1) < 3.0
        assert monitor.mean_delay(0) > 3.0  # best effort pays for it

    def test_relative_vs_absolute_tradeoff(self):
        """The flip side: if the Premium user exceeds the profile, the
        excess is *lost*; under WTP nothing is lost, delays adapt."""
        def run_premium(rate_factor):
            sim = Simulator()
            sink = PacketSink()
            policer = PremiumPolicer(sim, sink, rate=0.05, burst=2.0)
            source = TrafficSource(
                sim, policer, 1,
                ConstantInterarrivals(1.0 / (0.05 * rate_factor)),
                FixedPacketSize(1.0), stop_time=1e4,
            )
            source.start()
            sim.run()
            return policer.dropped / source.packets_emitted

        assert run_premium(rate_factor=0.9) == 0.0      # within profile
        assert run_premium(rate_factor=2.0) > 0.4        # half the excess lost


class TestAssuredMarker:
    def test_out_of_profile_demoted_not_dropped(self, sim):
        sink = PacketSink(keep_packets=True)
        marker = AssuredMarker(sim, sink, rate=1.0, burst=100.0, demote_to=0)
        source = TrafficSource(
            sim, marker, 3, ConstantInterarrivals(50.0),
            FixedPacketSize(100.0), stop_time=2000.0,
        )
        source.start()
        sim.run()
        assert sink.received == source.packets_emitted  # nothing lost
        assert marker.out_of_profile > 0
        demoted = sum(1 for p in sink.packets if p.class_id == 0)
        kept = sum(1 for p in sink.packets if p.class_id == 3)
        assert demoted == marker.out_of_profile
        assert kept == marker.in_profile

    def test_demoted_packets_get_worse_service(self):
        """End to end: an Assured flow's out-of-profile packets see the
        low class's delays at a congested WTP link."""
        sim = Simulator()
        streams = RandomStreams(14)
        link = Link(sim, WTPScheduler((1.0, 2.0, 4.0, 8.0)), capacity=1.0,
                    target=PacketSink(keep_packets=True))
        ids = PacketIdAllocator()
        # Background load.
        TrafficSource(
            sim, link, 0, PoissonInterarrivals(1.25, streams.generator()),
            FixedPacketSize(1.0), ids=ids,
        ).start()
        marker = AssuredMarker(sim, link, rate=0.05, burst=3.0, demote_to=0)
        TrafficSource(
            sim, marker, 3, PoissonInterarrivals(5.0, streams.generator()),
            FixedPacketSize(1.0), ids=ids, flow_id=77,
        ).start()
        sim.run(until=5e4)
        sink = link.target
        in_profile = [p.queueing_delay for p in sink.packets
                      if p.flow_id == 77 and p.class_id == 3]
        demoted = [p.queueing_delay for p in sink.packets
                   if p.flow_id == 77 and p.class_id == 0]
        assert in_profile and demoted
        assert (sum(demoted) / len(demoted)) > (
            sum(in_profile) / len(in_profile)
        )

    def test_invalid_demote_class(self, sim):
        with pytest.raises(ConfigurationError):
            AssuredMarker(sim, PacketSink(), 1.0, 1.0, demote_to=-1)
