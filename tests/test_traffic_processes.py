"""Tests for the interarrival processes (statistics and contracts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic import (
    ConstantInterarrivals,
    MMPPInterarrivals,
    OnOffInterarrivals,
    ParetoInterarrivals,
    PoissonInterarrivals,
)


def sample_mean(process, n=200_000):
    return float(np.mean([process.next_gap() for _ in range(n)]))


class TestPareto:
    def test_gaps_respect_scale_floor(self, rng):
        process = ParetoInterarrivals(10.0, shape=1.9, rng=rng)
        gaps = [process.next_gap() for _ in range(10_000)]
        assert min(gaps) >= process.scale
        assert process.scale == pytest.approx(10.0 * 0.9 / 1.9)

    def test_empirical_mean_near_requested(self, rng):
        # alpha = 2.5 keeps the variance finite so the sample mean
        # converges at a testable rate (the paper's 1.9 does not).
        process = ParetoInterarrivals(5.0, shape=2.5, rng=rng)
        assert sample_mean(process) == pytest.approx(5.0, rel=0.05)

    def test_heavy_tail_produces_large_bursts(self, rng):
        """alpha=1.9: max gap dwarfs the mean even in modest samples."""
        process = ParetoInterarrivals(1.0, shape=1.9, rng=rng)
        gaps = [process.next_gap() for _ in range(100_000)]
        assert max(gaps) > 50.0 * 1.0

    def test_rate_is_inverse_mean(self, rng):
        process = ParetoInterarrivals(4.0, rng=rng)
        assert process.rate == pytest.approx(0.25)

    def test_shape_must_exceed_one(self, rng):
        with pytest.raises(ConfigurationError):
            ParetoInterarrivals(1.0, shape=1.0, rng=rng)

    def test_mean_must_be_positive(self, rng):
        with pytest.raises(ConfigurationError):
            ParetoInterarrivals(0.0, rng=rng)

    def test_reproducible_with_seeded_rng(self):
        a = ParetoInterarrivals(1.0, rng=np.random.default_rng(7))
        b = ParetoInterarrivals(1.0, rng=np.random.default_rng(7))
        assert [a.next_gap() for _ in range(10)] == [
            b.next_gap() for _ in range(10)
        ]


class TestPoisson:
    def test_empirical_mean(self, rng):
        process = PoissonInterarrivals(3.0, rng=rng)
        assert sample_mean(process) == pytest.approx(3.0, rel=0.03)

    def test_memoryless_cv_close_to_one(self, rng):
        process = PoissonInterarrivals(1.0, rng=rng)
        gaps = np.array([process.next_gap() for _ in range(100_000)])
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.03)

    def test_invalid_mean_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            PoissonInterarrivals(-1.0, rng=rng)


class TestConstant:
    def test_every_gap_identical(self):
        process = ConstantInterarrivals(2.5)
        assert [process.next_gap() for _ in range(5)] == [2.5] * 5
        assert process.mean == 2.5

    def test_invalid_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantInterarrivals(0.0)


class TestOnOff:
    def test_mean_matches_formula(self, rng):
        process = OnOffInterarrivals(
            peak_gap=1.0, mean_on=50.0, mean_off=50.0, rng=rng
        )
        assert process.mean == pytest.approx(2.0)
        assert sample_mean(process, 100_000) == pytest.approx(2.0, rel=0.1)

    def test_zero_off_time_degenerates_to_cbr(self, rng):
        process = OnOffInterarrivals(
            peak_gap=1.0, mean_on=10.0, mean_off=0.0, rng=rng
        )
        gaps = [process.next_gap() for _ in range(1000)]
        assert all(g == 1.0 for g in gaps)
        assert process.mean == pytest.approx(1.0)

    def test_peak_rate(self, rng):
        process = OnOffInterarrivals(0.25, 1.0, 1.0, rng=rng)
        assert process.peak_rate == 4.0

    def test_gaps_at_least_peak_gap(self, rng):
        process = OnOffInterarrivals(2.0, 5.0, 5.0, rng=rng)
        assert all(process.next_gap() >= 2.0 for _ in range(5000))

    def test_invalid_params_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            OnOffInterarrivals(0.0, 1.0, 1.0, rng=rng)
        with pytest.raises(ConfigurationError):
            OnOffInterarrivals(1.0, 0.0, 1.0, rng=rng)


class TestMMPP:
    def test_mean_matches_stationary_formula(self, rng):
        process = MMPPInterarrivals(
            rate_a=2.0, rate_b=0.5, mean_sojourn_a=100.0,
            mean_sojourn_b=100.0, rng=rng,
        )
        expected = 1.0 / (0.5 * 2.0 + 0.5 * 0.5)
        assert process.mean == pytest.approx(expected)
        assert sample_mean(process, 100_000) == pytest.approx(expected, rel=0.1)

    def test_identical_states_reduce_to_poisson_mean(self, rng):
        process = MMPPInterarrivals(1.0, 1.0, 10.0, 10.0, rng=rng)
        assert process.mean == pytest.approx(1.0)

    def test_invalid_params_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            MMPPInterarrivals(0.0, 1.0, 1.0, 1.0, rng=rng)
        with pytest.raises(ConfigurationError):
            MMPPInterarrivals(1.0, 1.0, 0.0, 1.0, rng=rng)
