"""Network-wide hybrid engine: fluid maps, envelopes, multihop fidelity.

Property tests for the four per-scheduler fluid split maps added with
the network-wide engine (drr/scfq rate-guarantee congestion model,
pad/hpd normalized-delay model), the pluggable map registry, the
analytic envelope demotion path, the per-link topology graph used for
fluid planning, and the end-to-end multihop fidelity/warning contracts.
"""

from __future__ import annotations

import dataclasses
import math
import warnings

import numpy as np
import pytest

import repro.sim.hybrid as hybrid_mod
from repro.errors import ConfigurationError
from repro.network.multihop import MultiHopConfig, run_multihop
from repro.scenarios.city import (
    CityScenarioConfig,
    CityTask,
    city_summary,
    compile_city_traces,
)
from repro.scenarios.generators import (
    build_city_topology,
    city_link_graph,
)
from repro.sim.engine import Simulator
from repro.sim.hybrid import (
    FluidSplitContext,
    HybridConfig,
    HybridController,
    check_fluid_envelopes,
    fluid_split,
    fluid_supported,
    plan_segments,
    register_fluid_map,
)

SDPS = (1.0, 2.0, 4.0, 8.0)
COUNTS = (400, 300, 200, 100)
CLASS_BYTES = (40_000.0, 30_000.0, 20_000.0, 10_000.0)

#: The four maps added with the network-wide engine (wfq aliases scfq).
NEW_MAPS = ("drr", "scfq", "wfq", "pad", "hpd")


def _split(scheduler, d_agg=5.0, calibration=None, sdps=SDPS, counts=COUNTS):
    return fluid_split(
        scheduler,
        sdps,
        counts,
        d_agg,
        calibration,
        class_bytes=CLASS_BYTES[: len(sdps)],
        span=10_000.0,
        capacity=12.0,
    )


# ----------------------------------------------------------------------
# Eq 5 conservation + shape properties of the new maps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", NEW_MAPS)
def test_eq5_conservation_exact(scheduler):
    d_agg = 7.25
    delays = _split(scheduler, d_agg=d_agg)
    assert all(math.isfinite(d) and d >= 0 for d in delays)
    total = sum(COUNTS)
    assert sum(n * d for n, d in zip(COUNTS, delays)) == pytest.approx(
        total * d_agg, rel=1e-12
    )


@pytest.mark.parametrize("scheduler", NEW_MAPS)
def test_eq5_conservation_without_operating_point(scheduler):
    # No span/capacity/class_bytes context: the rate maps renormalize
    # to a nominal utilization, but Eq 5 must still hold exactly.
    d_agg = 3.0
    delays = fluid_split(scheduler, SDPS, COUNTS, d_agg)
    total = sum(COUNTS)
    assert sum(n * d for n, d in zip(COUNTS, delays)) == pytest.approx(
        total * d_agg, rel=1e-12
    )


@pytest.mark.parametrize("scheduler", ("pad", "hpd"))
def test_pad_hpd_monotone_in_sdp(scheduler):
    # Higher SDP => proportionally lower delay, strictly (Eq 3 model).
    delays = _split(scheduler)
    for higher, lower in zip(delays, delays[1:]):
        assert lower < higher
    # The proportional model is exact: s_i * d_i constant.
    products = [s * d for s, d in zip(SDPS, delays)]
    for p in products[1:]:
        assert p == pytest.approx(products[0], rel=1e-12)


@pytest.mark.parametrize("scheduler", ("pad", "hpd"))
def test_pad_hpd_monotone_under_calibration_blend(scheduler):
    # A flat (undifferentiated) measured split must not destroy the
    # ordering: pad shrinks hard toward the analytic prior, hpd trusts
    # the measurement -- but a *flat* measurement keeps Eq 5, so both
    # stay monotone-or-flat and conservation is exact.
    d_agg = 4.0
    delays = _split(scheduler, d_agg=d_agg, calibration=[1.0, 1.0, 1.0, 1.0])
    total = sum(COUNTS)
    assert sum(n * d for n, d in zip(COUNTS, delays)) == pytest.approx(
        total * d_agg, rel=1e-12
    )
    for higher, lower in zip(delays, delays[1:]):
        assert lower <= higher
    if scheduler == "pad":
        # calibration_weight 0.25: the blended shape keeps most of the
        # analytic differentiation (strictly monotone, ratio > 2 across
        # the SDP range) instead of collapsing to the flat measurement.
        assert delays[0] / delays[-1] > 2.0


def test_rate_maps_track_load_imbalance():
    # Push most of the bytes into class 0 at a fixed weight vector: its
    # GPS share saturates and the drr/scfq congestion model must give
    # it a relatively *larger* delay coefficient than under a balanced
    # load (rho/(1-rho) grows with utilization of the guaranteed rate).
    balanced = fluid_split(
        "drr",
        SDPS,
        COUNTS,
        1.0,
        class_bytes=(25_000.0, 25_000.0, 25_000.0, 25_000.0),
        span=10_000.0,
        capacity=12.0,
    )
    skewed = fluid_split(
        "drr",
        SDPS,
        COUNTS,
        1.0,
        class_bytes=(70_000.0, 10_000.0, 10_000.0, 10_000.0),
        span=10_000.0,
        capacity=12.0,
    )
    assert skewed[0] / skewed[1] > balanced[0] / balanced[1]


# ----------------------------------------------------------------------
# Pluggable registry
# ----------------------------------------------------------------------
def test_register_fluid_map_roundtrip():
    name = "unit-test-sched"
    assert name not in fluid_supported()
    try:
        register_fluid_map(name, lambda ctx: [2.0] * len(ctx.sdps))
        assert name in fluid_supported()
        delays = fluid_split(name, SDPS, COUNTS, 3.0)
        # Uniform coefficients: every class gets the aggregate mean.
        assert delays == pytest.approx([3.0] * 4)
    finally:
        hybrid_mod._FLUID_MAPS.pop(name, None)
    assert name not in fluid_supported()


def test_register_fluid_map_rejects_bad_inputs():
    with pytest.raises(ConfigurationError, match="callable"):
        register_fluid_map("nope", "not-a-function")
    with pytest.raises(ConfigurationError, match="calibration_weight"):
        register_fluid_map(
            "nope", lambda ctx: [1.0], calibration_weight=1.5
        )
    assert "nope" not in fluid_supported()


def test_unknown_scheduler_names_the_registry():
    with pytest.raises(ConfigurationError, match="register_fluid_map"):
        fluid_split("no-such-sched", SDPS, COUNTS, 1.0)


def test_registered_map_bad_coefficients_rejected():
    name = "unit-test-bad"
    try:
        register_fluid_map(name, lambda ctx: [-1.0] * len(ctx.sdps))
        with pytest.raises(ConfigurationError, match="non-negative"):
            fluid_split(name, SDPS, COUNTS, 1.0)
    finally:
        hybrid_mod._FLUID_MAPS.pop(name, None)


# ----------------------------------------------------------------------
# Envelope cross-checks and demotion
# ----------------------------------------------------------------------
def _window_arrays(n=512, capacity=2.0, span=1000.0, seed=3):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, span, n))
    class_ids = rng.integers(0, 4, n)
    sizes = np.full(n, 1.0)
    waits = rng.uniform(0.0, 2.0, n)
    return times, class_ids, sizes, waits, capacity, span


@pytest.mark.parametrize("scheduler", ("wtp", "drr"))
def test_envelopes_pass_physical_delays(scheduler):
    times, class_ids, sizes, waits, capacity, span = _window_arrays()
    delays = [1.5, 1.0, 0.7, 0.5]
    counts = [int((class_ids == c).sum()) for c in range(4)]
    verdict = check_fluid_envelopes(
        scheduler, SDPS, delays, counts, waits, times, class_ids,
        sizes, capacity, span,
    )
    assert verdict is None


@pytest.mark.parametrize("scheduler", ("wtp", "drr"))
def test_envelopes_flag_impossible_delays(scheduler):
    # A per-class mean far above the worst aggregate backlog the window
    # ever built is physically impossible under any work-conserving
    # discipline -- the FIFO bound must flag it.
    times, class_ids, sizes, waits, capacity, span = _window_arrays()
    delays = [1e6, 1.0, 0.7, 0.5]
    counts = [int((class_ids == c).sum()) for c in range(4)]
    verdict = check_fluid_envelopes(
        scheduler, SDPS, delays, counts, waits, times, class_ids,
        sizes, capacity, span,
    )
    assert verdict is not None


def test_controller_demotes_on_envelope_violation(monkeypatch):
    # Squeeze the slack to zero headroom: every fluid window violates
    # its envelope and the controller must re-run those spans in packet
    # mode, recording each demotion, while still finishing the horizon.
    monkeypatch.setattr(hybrid_mod, "ENVELOPE_SLACK", 1e-9)
    config = CityScenarioConfig(
        topology="star_of_chains",
        branches=2,
        hops_per_branch=2,
        flows=48,
        horizon=20_000.0,
        warmup=1_000.0,
        seed=11,
        hybrid=HybridConfig(epsilon=0.5, spinup=500.0, min_fluid=500.0),
    )
    controller = HybridController(config, compile_city_traces(config))
    plan = controller.plan(config.horizon)
    assert any(seg.mode == "fluid" for seg in plan)
    controller.run()
    assert controller.demotions, "expected every fluid window to demote"
    summary = controller.summary()
    assert summary["demotions"] == controller.demotions
    assert all(d["reason"] for d in summary["demotions"])
    means = controller.monitor.mean_delays()
    assert all(math.isfinite(m) and m > 0 for m in means)


# ----------------------------------------------------------------------
# Fluid planning graph <-> packet topology lockstep
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        dict(topology="star_of_chains", branches=3, hops_per_branch=2),
        dict(topology="star_of_chains", branches=2, hops_per_branch=1),
        dict(topology="fat_tree_lite", branches=4, aggregation=2),
    ],
)
def test_city_link_graph_matches_built_topology(kwargs):
    config = CityScenarioConfig(flows=8, horizon=5_000.0, warmup=0.0, **kwargs)
    graph = city_link_graph(config)
    sim = Simulator()
    entries, links, hub = build_city_topology(sim, config)
    by_name = {link.name: link for link in links}
    assert {spec.name for spec in graph} == set(by_name)
    for spec in graph:
        assert spec.capacity == pytest.approx(by_name[spec.name].capacity)
    # Topological order with the hub last; downstream edges stay inside
    # the graph and point strictly forward (no cycles).
    assert graph[-1].name == hub.name
    assert graph[-1].downstream is None
    for i, spec in enumerate(graph[:-1]):
        assert spec.downstream is not None
        assert i < spec.downstream < len(graph)
    # Every branch's trace enters exactly one link.
    fed = [b for spec in graph for b in spec.branches]
    assert sorted(fed) == list(range(config.branches))


# ----------------------------------------------------------------------
# Multihop fidelity and planner reporting
# ----------------------------------------------------------------------
def test_multihop_hybrid_fidelity_within_epsilon():
    # A >= 3-hop star cell: the hybrid per-class means at epsilon=0.05
    # must track the pure packet run (mean relative error well inside
    # the knob; measured ~0.02 on this cell, asserted at 0.05).
    base = dict(
        topology="star_of_chains",
        branches=2,
        hops_per_branch=3,
        flows=120,
        flow_gap=60.0,
        horizon=60_000.0,
        warmup=2_000.0,
        seed=7,
    )
    pure = city_summary(
        CityTask(CityScenarioConfig(scheduler="wtp", **base))
    )["mean_delays"]
    hyb = city_summary(
        CityTask(
            CityScenarioConfig(
                scheduler="wtp", hybrid=HybridConfig(epsilon=0.05), **base
            )
        )
    )["mean_delays"]
    errors = [abs(h - p) / p for h, p in zip(hyb, pure)]
    assert sum(errors) / len(errors) <= 0.05


@pytest.mark.parametrize("scheduler", ("drr", "scfq"))
def test_rate_map_splits_match_packet_measured(scheduler):
    # The calibrated drr/scfq splits must land near the packet-measured
    # per-class means on a seeded multihop run.  The congestion model
    # plus calibration carries a known bias on short packet spans
    # (documented in docs/performance.md); the contract asserted here
    # is mean relative error <= 0.15 and per-class <= 0.25.
    base = dict(
        topology="star_of_chains",
        branches=2,
        hops_per_branch=3,
        flows=120,
        flow_gap=60.0,
        horizon=60_000.0,
        warmup=2_000.0,
        seed=7,
    )
    pure = city_summary(
        CityTask(CityScenarioConfig(scheduler=scheduler, **base))
    )["mean_delays"]
    hyb = city_summary(
        CityTask(
            CityScenarioConfig(
                scheduler=scheduler,
                hybrid=HybridConfig(epsilon=0.05),
                **base,
            )
        )
    )["mean_delays"]
    errors = [abs(h - p) / p for h, p in zip(hyb, pure)]
    assert sum(errors) / len(errors) <= 0.15
    assert max(errors) <= 0.25
    # Ordering must survive: the hybrid split keeps the measured
    # differentiation direction (class 0 slowest ... class 3 fastest).
    assert all(a > b for a, b in zip(hyb, hyb[1:]))


def test_plan_segments_reports_blocked_gaps():
    cfg = HybridConfig(epsilon=0.01, min_fluid=5_000.0, spinup=500.0,
                       guard=200.0)
    report: list[dict] = []
    plan_segments(
        20_000.0,
        1_000.0,
        cfg,
        transients=[4_000.0, 6_000.0, 9_000.0, 12_000.0],
        predicted_error=lambda t0, t1: 1.0,
        report=report,
    )
    assert report, "every candidate gap must be reported"
    assert all(not entry["accepted"] for entry in report)
    reasons = " ".join(entry["reason"] for entry in report)
    assert "min_fluid" in reasons or "predicted error" in reasons


def test_multihop_warns_when_no_fluid_segment_taken():
    cfg = MultiHopConfig(hops=2, experiments=2, warmup=1_000.0, seed=3)
    with pytest.warns(RuntimeWarning, match="no fluid segment"):
        run_multihop(cfg, hybrid=HybridConfig(epsilon=0.05))
    # The same cell with ample warm-up fast-forwards silently.
    ample = MultiHopConfig(hops=2, experiments=2, warmup=20_000.0, seed=3)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = run_multihop(ample, hybrid=HybridConfig(epsilon=0.05))
    assert not [
        w for w in caught if "no fluid segment" in str(w.message)
    ]
    assert math.isfinite(result.rd)


def test_multihop_warns_below_min_fluid():
    cfg = MultiHopConfig(hops=2, experiments=2, warmup=3_000.0, seed=3)
    with pytest.warns(RuntimeWarning, match="min_fluid"):
        run_multihop(cfg, hybrid=HybridConfig(epsilon=0.05))


# ----------------------------------------------------------------------
# Fidelity curve (the CLI's --fidelity-curve sweep), stubbed runner
# ----------------------------------------------------------------------
class _StubRunner:
    """Returns canned summaries; hybrid cells report +2% delays."""

    def __init__(self) -> None:
        self.tasks: list = []

    def map(self, fn, tasks):
        self.tasks = list(tasks)
        out = []
        for task in self.tasks:
            is_hybrid = task.config.hybrid is not None
            delays = [8.0, 4.0, 2.0, 1.0]
            if is_hybrid:
                delays = [d * 1.02 for d in delays]
            out.append(
                {
                    "mean_delays": delays,
                    "fidelity_error": 0.09 if is_hybrid else 0.10,
                    "packets": 1_000,
                    "hybrid": (
                        {"fluid_time_fraction": 0.8} if is_hybrid else None
                    ),
                }
            )
        return out


def test_fidelity_curve_rows_and_exports(tmp_path):
    from repro.scenarios.city import (
        fidelity_curve,
        fidelity_curve_base,
        fidelity_curve_svg,
        fidelity_curve_to_csv,
        format_fidelity_curve,
    )

    runner = _StubRunner()
    rows = fidelity_curve(
        base=fidelity_curve_base(0.5),
        utilizations=(0.7, 0.9),
        epsilon=0.04,
        runner=runner,
    )
    # Cells interleave pure/hybrid per rho, in grid order.
    assert [t.config.hybrid is None for t in runner.tasks] == [
        True, False, True, False,
    ]
    assert runner.tasks[2].config.utilization == pytest.approx(0.9)
    assert runner.tasks[3].config.hybrid.epsilon == pytest.approx(0.04)
    assert len(rows) == 2
    for row in rows:
        assert row["fidelity_error_vs_pure"] == pytest.approx(0.02)
        assert row["max_error_vs_pure"] == pytest.approx(0.02)
        assert row["fluid_time_fraction"] == pytest.approx(0.8)
        assert row["epsilon"] == pytest.approx(0.04)
        assert row["pure_ddp_error"] == pytest.approx(0.10)
        assert row["hybrid_ddp_error"] == pytest.approx(0.09)

    text = format_fidelity_curve(rows)
    assert "rho" in text and "0.70" in text and "80.0%" in text

    csv_path = fidelity_curve_to_csv(rows, tmp_path / "curve.csv")
    lines = csv_path.read_text().strip().splitlines()
    assert len(lines) == 3 and lines[0].startswith("utilization,")

    svg_path = fidelity_curve_svg(rows, tmp_path / "curve.svg")
    assert svg_path.read_text().lstrip().startswith("<svg")


def test_fidelity_curve_rejects_bad_inputs():
    from repro.scenarios.city import fidelity_curve, fidelity_curve_base

    hybrid_base = dataclasses.replace(
        fidelity_curve_base(0.5), hybrid=HybridConfig(epsilon=0.05)
    )
    with pytest.raises(ConfigurationError, match="pure base"):
        fidelity_curve(base=hybrid_base)
    with pytest.raises(ConfigurationError, match="epsilon"):
        fidelity_curve(base=fidelity_curve_base(0.5), epsilon=0.0)
    with pytest.raises(ConfigurationError, match="scale"):
        fidelity_curve_base(0.0)
