"""Drain-vs-evented equivalence: the busy-period drain kernel must be
bit-identical to the classic one-event-per-departure path.

Every registered scheduler is replayed over the same trace with the
drain kernel on and off; departure sequences (ids, classes, timestamps,
per-hop delays) and monitor series must match *exactly* -- no
tolerances.  Boundary cases pin the tie-breaking rules: arrivals landing
exactly on a departure timestamp, duplicate arrival instants, foreign
calendar events (a ``BacklogSampler``) forcing mid-busy-period parks,
and bounded ``run(until=...)`` horizons splitting a busy period.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.invariants import InvariantChecker
from repro.schedulers import available_schedulers, make_scheduler
from repro.sim import (
    BacklogSampler,
    DelayMonitor,
    Link,
    PacketSink,
    Simulator,
)
from repro.sim.rng import RandomStreams
from repro.traffic import (
    FixedPacketSize,
    PacketIdAllocator,
    PoissonInterarrivals,
    TrafficSource,
)
from repro.traffic.trace import ArrivalTrace, TraceSource

SDPS = (1.0, 2.0, 4.0, 8.0)


def random_trace(n: int = 600, seed: int = 11) -> ArrivalTrace:
    rng = np.random.default_rng(seed)
    return ArrivalTrace(
        times=np.cumsum(rng.exponential(1.05, size=n)),
        class_ids=rng.integers(0, 4, size=n),
        sizes=rng.choice([0.5, 1.0, 2.0], size=n),
    )


def boundary_trace() -> ArrivalTrace:
    """Integer arrival times with unit sizes at capacity 1.0: every
    departure lands exactly on later arrival timestamps, including
    duplicate arrival instants, so tie-breaking is fully exercised."""
    times = [1.0, 1.0, 2.0, 3.0, 3.0, 3.0, 4.0, 8.0, 9.0, 9.0, 10.0, 15.0]
    classes = [0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]
    return ArrivalTrace(
        times=np.asarray(times),
        class_ids=np.asarray(classes),
        sizes=np.ones(len(times)),
    )


def packet_fingerprint(sink: PacketSink) -> list[tuple]:
    return [
        (
            p.packet_id,
            p.class_id,
            p.size,
            p.arrived_at,
            p.service_start,
            p.departed_at,
            tuple(p.hop_delays),
        )
        for p in sink.packets
    ]


def replay(
    trace: ArrivalTrace,
    scheduler_name: str,
    drain: bool,
    keep: bool = True,
    monitor: bool = False,
    sampler_period: float | None = None,
    until: float | None = None,
    columnar: bool | None = None,
):
    sim = Simulator()
    scheduler = make_scheduler(scheduler_name, SDPS)
    link = Link(
        sim,
        scheduler,
        capacity=1.0,
        target=PacketSink(keep_packets=keep),
        drain=drain,
        columnar=columnar,
    )
    delay_monitor = None
    if monitor:
        delay_monitor = DelayMonitor(4, keep_samples=True)
        link.add_monitor(delay_monitor)
    sampler = None
    if sampler_period is not None:
        sampler = BacklogSampler(
            period=sampler_period, horizon=float(trace.times[-1])
        )
        sampler.attach(sim, link)
    TraceSource(sim, link, trace).start()
    if until is None:
        sim.run()
    else:
        sim.run(until=until)
        sim.run()  # finish the remainder: drains must resume cleanly
    return sim, link, delay_monitor, sampler


def link_state(sim: Simulator, link: Link) -> tuple:
    queues = link.scheduler.queues
    return (
        sim.now,
        link.arrivals,
        link.departures,
        link.bytes_sent,
        link.busy_time,
        link.busy,
        link.target.received,
        queues.total_packets,
        tuple(queues.head_arrivals),
        tuple(queues.bytes_backlog),
    )


@pytest.mark.parametrize("name", sorted(available_schedulers()))
def test_departures_bit_identical_all_schedulers(name):
    trace = random_trace()
    sim_d, link_d, _, _ = replay(trace, name, drain=True)
    sim_e, link_e, _, _ = replay(trace, name, drain=False)
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )
    assert link_state(sim_d, link_d) == link_state(sim_e, link_e)


@pytest.mark.parametrize("name", sorted(available_schedulers()))
def test_boundary_arrival_at_departure_timestamp(name):
    trace = boundary_trace()
    sim_d, link_d, _, _ = replay(trace, name, drain=True)
    sim_e, link_e, _, _ = replay(trace, name, drain=False)
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )
    assert link_state(sim_d, link_d) == link_state(sim_e, link_e)


@pytest.mark.parametrize("name", sorted(available_schedulers()))
def test_columnar_vs_object_bit_identical_all_schedulers(name):
    """The columnar hot path (lazy Packet materialization) against the
    same drain kernel carrying real Packet objects: stock schedulers
    select off column heads, hook-overriding ones transparently fall
    back -- either way the departures (ids, timestamps, hop delays)
    must be bit-identical."""
    trace = random_trace(seed=17)
    sim_c, link_c, _, _ = replay(trace, name, drain=True, columnar=True)
    sim_o, link_o, _, _ = replay(trace, name, drain=True, columnar=False)
    assert packet_fingerprint(link_c.target) == packet_fingerprint(
        link_o.target
    )
    assert link_state(sim_c, link_c) == link_state(sim_o, link_o)


@pytest.mark.parametrize("name", sorted(available_schedulers()))
def test_columnar_vs_evented_bit_identical_all_schedulers(name):
    """Columnar forced ON (independent of COLUMNAR_DEFAULT) against the
    classic one-event-per-departure path."""
    trace = random_trace(seed=29)
    sim_c, link_c, _, _ = replay(trace, name, drain=True, columnar=True)
    sim_e, link_e, _, _ = replay(trace, name, drain=False)
    assert packet_fingerprint(link_c.target) == packet_fingerprint(
        link_e.target
    )
    assert link_state(sim_c, link_c) == link_state(sim_e, link_e)


@pytest.mark.parametrize("name", ["wtp", "bpr", "fcfs"])
def test_monitor_series_identical(name):
    trace = random_trace(seed=23)
    _, link_d, mon_d, _ = replay(trace, name, drain=True, monitor=True)
    _, link_e, mon_e, _ = replay(trace, name, drain=False, monitor=True)
    for series_d, series_e in zip(mon_d.samples, mon_e.samples):
        assert np.array_equal(series_d, series_e)
    assert [s.count for s in mon_d.stats] == [s.count for s in mon_e.stats]
    assert [s.mean for s in mon_d.stats] == [s.mean for s in mon_e.stats]


@pytest.mark.parametrize("name", ["wtp", "strict"])
def test_foreign_events_force_identical_parks(name):
    """A BacklogSampler's periodic ticks interleave with the drain; the
    sampled backlog trajectory must match the evented run exactly."""
    trace = random_trace(seed=5)
    _, link_d, _, samp_d = replay(trace, name, drain=True, sampler_period=2.5)
    _, link_e, _, samp_e = replay(trace, name, drain=False, sampler_period=2.5)
    assert samp_d.times == samp_e.times
    assert samp_d.samples == samp_e.samples
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )


def test_bounded_run_splits_busy_period_identically():
    trace = random_trace(seed=7)
    mid = float(trace.times[len(trace) // 2])
    sim_d, link_d, _, _ = replay(trace, "wtp", drain=True, until=mid)
    sim_e, link_e, _, _ = replay(trace, "wtp", drain=False, until=mid)
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )
    assert link_state(sim_d, link_d) == link_state(sim_e, link_e)


def test_multi_source_fused_identical():
    """Several fused TrafficSources (the multi-feeder drain loop) match
    the evented run packet for packet, in both packet representations
    (the columnar loop pulls scalars via ``pull_col``; the object loop
    builds Packets via ``pull``)."""

    def run(drain: bool, columnar: bool | None = None):
        sim = Simulator()
        streams = RandomStreams(3)
        link = Link(
            sim,
            make_scheduler("wtp", SDPS),
            capacity=1.0,
            target=PacketSink(keep_packets=True),
            drain=drain,
            columnar=columnar,
        )
        ids = PacketIdAllocator()
        for class_id in range(4):
            TrafficSource(
                sim,
                link,
                class_id,
                PoissonInterarrivals(4.0 / 0.9, streams.generator()),
                FixedPacketSize(1.0),
                ids=ids,
            ).start()
        sim.run(until=800.0)
        return sim, link

    sim_d, link_d = run(True, columnar=True)
    sim_o, link_o = run(True, columnar=False)
    sim_e, link_e = run(False)
    fingerprint = packet_fingerprint(link_d.target)
    assert fingerprint == packet_fingerprint(link_o.target)
    assert fingerprint == packet_fingerprint(link_e.target)
    assert link_state(sim_d, link_d) == link_state(sim_o, link_o)
    assert link_state(sim_d, link_d) == link_state(sim_e, link_e)


def test_drain_actually_engages():
    """Sanity: the drain collapses per-packet calendar events, so the
    equivalence above is not vacuous."""
    trace = random_trace()
    sim_d, link_d, _, _ = replay(trace, "wtp", drain=True, keep=False)
    sim_e, link_e, _, _ = replay(trace, "wtp", drain=False, keep=False)
    assert link_d.departures == link_e.departures == len(trace)
    assert sim_d.events_processed < sim_e.events_processed / 10


def test_invariant_checker_suspends_drain():
    """Attaching the checker falls back to the evented path and still
    produces identical results."""
    trace = random_trace(seed=31)
    sim = Simulator()
    link = Link(
        sim,
        make_scheduler("wtp", SDPS),
        capacity=1.0,
        target=PacketSink(keep_packets=True),
        drain=True,
    )
    checker = InvariantChecker(link).attach()
    TraceSource(sim, link, trace).start()
    assert link._feeders == []  # suspended before any event fired
    sim.run()
    report = checker.finalize()
    assert report.departures == len(trace)
    assert report.busy_periods > 0
    _, link_e, _, _ = replay(trace, "wtp", drain=False)
    assert packet_fingerprint(link.target) == packet_fingerprint(
        link_e.target
    )


def test_monitor_attached_mid_drain_bit_identical():
    """A DelayMonitor attached by a calendar event landing inside a
    busy period: the columnar fast loop must park on the foreign key,
    and every later drain entry (``monitors`` now non-empty) routes to
    the generic loop, which materializes queued column entries on pop.
    Post-attach monitor series and the full departure fingerprint must
    match the object-mode and evented runs exactly."""
    trace = random_trace(seed=41)
    attach_at = float(trace.times[len(trace) // 2]) + 0.25

    def run(drain: bool, columnar: bool | None = None):
        sim = Simulator()
        link = Link(
            sim,
            make_scheduler("wtp", SDPS),
            capacity=1.0,
            target=PacketSink(keep_packets=True),
            drain=drain,
            columnar=columnar,
        )
        monitor = DelayMonitor(4, keep_samples=True)
        seen = {}

        def attach():
            seen["busy"] = link.busy
            seen["cols"] = link.scheduler.queues.col_count
            link.add_monitor(monitor)

        sim.schedule(attach_at, attach)
        TraceSource(sim, link, trace).start()
        sim.run()
        return link, monitor, seen

    link_c, mon_c, seen_c = run(True, columnar=True)
    link_o, mon_o, seen_o = run(True, columnar=False)
    link_e, mon_e, seen_e = run(False)
    # The boundary was genuinely exercised: the link was mid-busy-period
    # with object-free columnar backlog when the monitor appeared.
    assert seen_c["busy"] and seen_e["busy"]
    assert seen_c["cols"] > 0
    assert seen_o["cols"] == seen_e["cols"] == 0
    fingerprint = packet_fingerprint(link_c.target)
    assert fingerprint == packet_fingerprint(link_o.target)
    assert fingerprint == packet_fingerprint(link_e.target)
    for series_c, series_o, series_e in zip(
        mon_c.samples, mon_o.samples, mon_e.samples
    ):
        assert np.array_equal(series_c, series_o)
        assert np.array_equal(series_c, series_e)
    assert [s.count for s in mon_c.stats] == [s.count for s in mon_e.stats]
    assert [s.mean for s in mon_c.stats] == [s.mean for s in mon_e.stats]


def test_drop_policy_forces_object_fallback():
    """A drop policy (bounded buffer) is an observation boundary at
    arrival time: the link fails ``_fast_ok``, columns never form even
    with columnar requested, and the generic drain still matches the
    evented run drop for drop."""
    from repro.dropping import TailDropPolicy

    trace = random_trace(seed=13)

    def run(drain: bool):
        sim = Simulator()
        link = Link(
            sim,
            make_scheduler("wtp", SDPS),
            capacity=1.0,
            target=PacketSink(keep_packets=True),
            drain=drain,
            columnar=True,
            buffer_packets=6,
            drop_policy=TailDropPolicy(),
        )
        TraceSource(sim, link, trace).start()
        sim.run()
        return sim, link

    sim_d, link_d = run(True)
    sim_e, link_e = run(False)
    assert link_d._fast_ok is False
    assert link_d.scheduler.queues.col_count == 0
    assert link_d.drops == link_e.drops > 0
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )
    assert link_state(sim_d, link_d) == link_state(sim_e, link_e)


def test_checker_attached_mid_run_demotes_columns():
    """An InvariantChecker attached mid-run (between events, columnar
    backlog queued) must demote every column to real Packets before its
    hooks fire, then verify the rest of the run -- bit-identically to
    an evented run with the checker attached at the same instant."""
    trace = random_trace(seed=37)
    attach_at = float(trace.times[len(trace) // 2]) + 0.25

    def run(drain: bool, columnar: bool | None = None):
        sim = Simulator()
        link = Link(
            sim,
            make_scheduler("wtp", SDPS),
            capacity=1.0,
            target=PacketSink(keep_packets=True),
            drain=drain,
            columnar=columnar,
        )
        checker = InvariantChecker(link)
        seen = {}

        def attach():
            seen["cols"] = link.scheduler.queues.col_count
            checker.attach()
            seen["cols_after"] = link.scheduler.queues.col_count

        sim.schedule(attach_at, attach)
        TraceSource(sim, link, trace).start()
        sim.run()
        return link, checker, seen

    link_c, checker_c, seen_c = run(True, columnar=True)
    link_e, checker_e, seen_e = run(False)
    # The attach really crossed the boundary: columnar backlog existed
    # and was demoted in place (checker scans see real Packets).
    assert seen_c["cols"] > 0
    assert seen_c["cols_after"] == 0
    assert packet_fingerprint(link_c.target) == packet_fingerprint(
        link_e.target
    )
    report_c = checker_c.finalize()
    report_e = checker_e.finalize()
    assert report_c.departures == report_e.departures > 0
    assert report_c.busy_periods == report_e.busy_periods


def test_utilization_horizon_clamps_in_progress_service():
    """A service still running at the horizon cutoff contributes only
    its pre-horizon portion (regression test for the open-busy-period
    overcount)."""
    sim = Simulator()
    link = Link(
        sim,
        make_scheduler("fcfs", SDPS),
        capacity=1.0,
        target=PacketSink(),
        drain=True,
    )
    trace = ArrivalTrace(
        times=np.asarray([1.0]),
        class_ids=np.asarray([0]),
        sizes=np.asarray([10.0]),
    )
    TraceSource(sim, link, trace).start()
    sim.run(until=6.0)
    assert link.busy
    # Busy on [1, 6] so far; horizon 4 must clamp the open segment.
    assert link.utilization(horizon=4.0) == pytest.approx(3.0 / 4.0)
    assert link.utilization(horizon=6.0) == pytest.approx(5.0 / 6.0)
    assert link.utilization() == pytest.approx(5.0 / 6.0)
    sim.run()
    # Service ended at 11; a horizon past the end sees the full 10.
    assert link.utilization(horizon=20.0) == pytest.approx(10.0 / 20.0)
