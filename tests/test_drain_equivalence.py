"""Drain-vs-evented equivalence: the busy-period drain kernel must be
bit-identical to the classic one-event-per-departure path.

Every registered scheduler is replayed over the same trace with the
drain kernel on and off; departure sequences (ids, classes, timestamps,
per-hop delays) and monitor series must match *exactly* -- no
tolerances.  Boundary cases pin the tie-breaking rules: arrivals landing
exactly on a departure timestamp, duplicate arrival instants, foreign
calendar events (a ``BacklogSampler``) forcing mid-busy-period parks,
and bounded ``run(until=...)`` horizons splitting a busy period.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.invariants import InvariantChecker
from repro.schedulers import available_schedulers, make_scheduler
from repro.sim import (
    BacklogSampler,
    DelayMonitor,
    Link,
    PacketSink,
    Simulator,
)
from repro.sim.rng import RandomStreams
from repro.traffic import (
    FixedPacketSize,
    PacketIdAllocator,
    PoissonInterarrivals,
    TrafficSource,
)
from repro.traffic.trace import ArrivalTrace, TraceSource

SDPS = (1.0, 2.0, 4.0, 8.0)


def random_trace(n: int = 600, seed: int = 11) -> ArrivalTrace:
    rng = np.random.default_rng(seed)
    return ArrivalTrace(
        times=np.cumsum(rng.exponential(1.05, size=n)),
        class_ids=rng.integers(0, 4, size=n),
        sizes=rng.choice([0.5, 1.0, 2.0], size=n),
    )


def boundary_trace() -> ArrivalTrace:
    """Integer arrival times with unit sizes at capacity 1.0: every
    departure lands exactly on later arrival timestamps, including
    duplicate arrival instants, so tie-breaking is fully exercised."""
    times = [1.0, 1.0, 2.0, 3.0, 3.0, 3.0, 4.0, 8.0, 9.0, 9.0, 10.0, 15.0]
    classes = [0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]
    return ArrivalTrace(
        times=np.asarray(times),
        class_ids=np.asarray(classes),
        sizes=np.ones(len(times)),
    )


def packet_fingerprint(sink: PacketSink) -> list[tuple]:
    return [
        (
            p.packet_id,
            p.class_id,
            p.size,
            p.arrived_at,
            p.service_start,
            p.departed_at,
            tuple(p.hop_delays),
        )
        for p in sink.packets
    ]


def replay(
    trace: ArrivalTrace,
    scheduler_name: str,
    drain: bool,
    keep: bool = True,
    monitor: bool = False,
    sampler_period: float | None = None,
    until: float | None = None,
):
    sim = Simulator()
    scheduler = make_scheduler(scheduler_name, SDPS)
    link = Link(
        sim,
        scheduler,
        capacity=1.0,
        target=PacketSink(keep_packets=keep),
        drain=drain,
    )
    delay_monitor = None
    if monitor:
        delay_monitor = DelayMonitor(4, keep_samples=True)
        link.add_monitor(delay_monitor)
    sampler = None
    if sampler_period is not None:
        sampler = BacklogSampler(
            period=sampler_period, horizon=float(trace.times[-1])
        )
        sampler.attach(sim, link)
    TraceSource(sim, link, trace).start()
    if until is None:
        sim.run()
    else:
        sim.run(until=until)
        sim.run()  # finish the remainder: drains must resume cleanly
    return sim, link, delay_monitor, sampler


def link_state(sim: Simulator, link: Link) -> tuple:
    queues = link.scheduler.queues
    return (
        sim.now,
        link.arrivals,
        link.departures,
        link.bytes_sent,
        link.busy_time,
        link.busy,
        link.target.received,
        queues.total_packets,
        tuple(queues.head_arrivals),
        tuple(queues.bytes_backlog),
    )


@pytest.mark.parametrize("name", sorted(available_schedulers()))
def test_departures_bit_identical_all_schedulers(name):
    trace = random_trace()
    sim_d, link_d, _, _ = replay(trace, name, drain=True)
    sim_e, link_e, _, _ = replay(trace, name, drain=False)
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )
    assert link_state(sim_d, link_d) == link_state(sim_e, link_e)


@pytest.mark.parametrize("name", sorted(available_schedulers()))
def test_boundary_arrival_at_departure_timestamp(name):
    trace = boundary_trace()
    sim_d, link_d, _, _ = replay(trace, name, drain=True)
    sim_e, link_e, _, _ = replay(trace, name, drain=False)
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )
    assert link_state(sim_d, link_d) == link_state(sim_e, link_e)


@pytest.mark.parametrize("name", ["wtp", "bpr", "fcfs"])
def test_monitor_series_identical(name):
    trace = random_trace(seed=23)
    _, link_d, mon_d, _ = replay(trace, name, drain=True, monitor=True)
    _, link_e, mon_e, _ = replay(trace, name, drain=False, monitor=True)
    for series_d, series_e in zip(mon_d.samples, mon_e.samples):
        assert np.array_equal(series_d, series_e)
    assert [s.count for s in mon_d.stats] == [s.count for s in mon_e.stats]
    assert [s.mean for s in mon_d.stats] == [s.mean for s in mon_e.stats]


@pytest.mark.parametrize("name", ["wtp", "strict"])
def test_foreign_events_force_identical_parks(name):
    """A BacklogSampler's periodic ticks interleave with the drain; the
    sampled backlog trajectory must match the evented run exactly."""
    trace = random_trace(seed=5)
    _, link_d, _, samp_d = replay(trace, name, drain=True, sampler_period=2.5)
    _, link_e, _, samp_e = replay(trace, name, drain=False, sampler_period=2.5)
    assert samp_d.times == samp_e.times
    assert samp_d.samples == samp_e.samples
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )


def test_bounded_run_splits_busy_period_identically():
    trace = random_trace(seed=7)
    mid = float(trace.times[len(trace) // 2])
    sim_d, link_d, _, _ = replay(trace, "wtp", drain=True, until=mid)
    sim_e, link_e, _, _ = replay(trace, "wtp", drain=False, until=mid)
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )
    assert link_state(sim_d, link_d) == link_state(sim_e, link_e)


def test_multi_source_fused_identical():
    """Several fused TrafficSources (the multi-feeder drain loop) match
    the evented run packet for packet."""

    def run(drain: bool):
        sim = Simulator()
        streams = RandomStreams(3)
        link = Link(
            sim,
            make_scheduler("wtp", SDPS),
            capacity=1.0,
            target=PacketSink(keep_packets=True),
            drain=drain,
        )
        ids = PacketIdAllocator()
        for class_id in range(4):
            TrafficSource(
                sim,
                link,
                class_id,
                PoissonInterarrivals(4.0 / 0.9, streams.generator()),
                FixedPacketSize(1.0),
                ids=ids,
            ).start()
        sim.run(until=800.0)
        return sim, link

    sim_d, link_d = run(True)
    sim_e, link_e = run(False)
    assert packet_fingerprint(link_d.target) == packet_fingerprint(
        link_e.target
    )
    assert link_state(sim_d, link_d) == link_state(sim_e, link_e)


def test_drain_actually_engages():
    """Sanity: the drain collapses per-packet calendar events, so the
    equivalence above is not vacuous."""
    trace = random_trace()
    sim_d, link_d, _, _ = replay(trace, "wtp", drain=True, keep=False)
    sim_e, link_e, _, _ = replay(trace, "wtp", drain=False, keep=False)
    assert link_d.departures == link_e.departures == len(trace)
    assert sim_d.events_processed < sim_e.events_processed / 10


def test_invariant_checker_suspends_drain():
    """Attaching the checker falls back to the evented path and still
    produces identical results."""
    trace = random_trace(seed=31)
    sim = Simulator()
    link = Link(
        sim,
        make_scheduler("wtp", SDPS),
        capacity=1.0,
        target=PacketSink(keep_packets=True),
        drain=True,
    )
    checker = InvariantChecker(link).attach()
    TraceSource(sim, link, trace).start()
    assert link._feeders == []  # suspended before any event fired
    sim.run()
    report = checker.finalize()
    assert report.departures == len(trace)
    assert report.busy_periods > 0
    _, link_e, _, _ = replay(trace, "wtp", drain=False)
    assert packet_fingerprint(link.target) == packet_fingerprint(
        link_e.target
    )


def test_utilization_horizon_clamps_in_progress_service():
    """A service still running at the horizon cutoff contributes only
    its pre-horizon portion (regression test for the open-busy-period
    overcount)."""
    sim = Simulator()
    link = Link(
        sim,
        make_scheduler("fcfs", SDPS),
        capacity=1.0,
        target=PacketSink(),
        drain=True,
    )
    trace = ArrivalTrace(
        times=np.asarray([1.0]),
        class_ids=np.asarray([0]),
        sizes=np.asarray([10.0]),
    )
    TraceSource(sim, link, trace).start()
    sim.run(until=6.0)
    assert link.busy
    # Busy on [1, 6] so far; horizon 4 must clamp the open segment.
    assert link.utilization(horizon=4.0) == pytest.approx(3.0 / 4.0)
    assert link.utilization(horizon=6.0) == pytest.approx(5.0 / 6.0)
    assert link.utilization() == pytest.approx(5.0 / 6.0)
    sim.run()
    # Service ended at 11; a horizon past the end sees the full 10.
    assert link.utilization(horizon=20.0) == pytest.approx(10.0 / 20.0)
