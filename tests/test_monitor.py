"""Tests for the measurement instruments."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.monitor import (
    ClassDelayStats,
    DelayMonitor,
    IntervalDelayMonitor,
    PacketTap,
)

from .conftest import make_packet


def departed(class_id: int, arrived: float, service_start: float):
    packet = make_packet(class_id=class_id, created_at=arrived)
    packet.arrived_at = arrived
    packet.service_start = service_start
    return packet


class TestClassDelayStats:
    def test_streaming_moments(self):
        stats = ClassDelayStats()
        for delay in (1.0, 2.0, 3.0):
            stats.add(delay)
        assert stats.mean == pytest.approx(2.0)
        assert stats.variance == pytest.approx(2.0 / 3.0)
        assert stats.min == 1.0
        assert stats.max == 3.0

    def test_empty_stats_are_nan(self):
        stats = ClassDelayStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)


class TestDelayMonitor:
    def test_per_class_means(self):
        monitor = DelayMonitor(2)
        monitor.on_departure(departed(0, 0.0, 4.0), 5.0)
        monitor.on_departure(departed(0, 1.0, 3.0), 5.0)
        monitor.on_departure(departed(1, 2.0, 3.0), 5.0)
        assert monitor.mean_delay(0) == pytest.approx(3.0)
        assert monitor.mean_delay(1) == pytest.approx(1.0)
        assert monitor.counts() == [2, 1]

    def test_warmup_discards_early_departures(self):
        monitor = DelayMonitor(1, warmup=10.0)
        monitor.on_departure(departed(0, 0.0, 5.0), 9.0)
        monitor.on_departure(departed(0, 10.0, 12.0), 13.0)
        assert monitor.counts() == [1]
        assert monitor.mean_delay(0) == pytest.approx(2.0)

    def test_successive_ratios(self):
        monitor = DelayMonitor(3)
        for cid, delay in ((0, 8.0), (1, 4.0), (2, 2.0)):
            monitor.on_departure(departed(cid, 0.0, delay), delay)
        assert monitor.successive_ratios() == pytest.approx([2.0, 2.0])

    def test_percentile_needs_samples(self):
        monitor = DelayMonitor(1)
        with pytest.raises(ConfigurationError):
            monitor.percentile(0, 50.0)

    def test_percentile_with_samples(self):
        monitor = DelayMonitor(1, keep_samples=True)
        for delay in range(1, 101):
            monitor.on_departure(departed(0, 0.0, float(delay)), float(delay))
        assert monitor.percentile(0, 50.0) == pytest.approx(50.5)

    def test_idle_class_mean_is_nan(self):
        assert math.isnan(DelayMonitor(2).mean_delay(1))

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayMonitor(1, warmup=-1.0)


class TestIntervalDelayMonitor:
    def test_intervals_partition_departures(self):
        monitor = IntervalDelayMonitor(2, tau=10.0)
        monitor.on_departure(departed(0, 0.0, 2.0), 5.0)    # interval 0
        monitor.on_departure(departed(1, 0.0, 4.0), 8.0)    # interval 0
        monitor.on_departure(departed(0, 10.0, 16.0), 17.0) # interval 1
        monitor.finalize()
        means = monitor.interval_means()
        assert means.shape == (2, 2)
        assert means[0, 0] == pytest.approx(2.0)
        assert means[0, 1] == pytest.approx(4.0)
        assert means[1, 0] == pytest.approx(6.0)
        assert math.isnan(means[1, 1])

    def test_empty_intervals_are_skipped(self):
        monitor = IntervalDelayMonitor(1, tau=1.0)
        monitor.on_departure(departed(0, 0.0, 0.5), 0.5)
        monitor.on_departure(departed(0, 99.0, 99.5), 99.5)
        monitor.finalize()
        assert len(monitor.intervals) == 2
        indices = [idx for idx, _, _ in monitor.intervals]
        assert indices == [0, 99]

    def test_warmup_respected(self):
        monitor = IntervalDelayMonitor(1, tau=10.0, warmup=50.0)
        monitor.on_departure(departed(0, 0.0, 1.0), 5.0)
        monitor.finalize()
        assert len(monitor.intervals) == 0

    def test_finalize_is_idempotent(self):
        monitor = IntervalDelayMonitor(1, tau=10.0)
        monitor.on_departure(departed(0, 0.0, 1.0), 1.0)
        monitor.finalize()
        monitor.finalize()
        assert len(monitor.intervals) == 1

    def test_invalid_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            IntervalDelayMonitor(1, tau=0.0)

    def test_no_departures_gives_empty_matrix(self):
        monitor = IntervalDelayMonitor(3, tau=1.0)
        monitor.finalize()
        assert monitor.interval_means().shape == (0, 3)


class TestPacketTap:
    def test_window_filtering(self):
        tap = PacketTap(1, start=10.0, end=20.0)
        tap.on_departure(departed(0, 0.0, 5.0), 9.9)
        tap.on_departure(departed(0, 10.0, 12.0), 15.0)
        tap.on_departure(departed(0, 18.0, 21.0), 20.0)  # end exclusive
        assert tap.samples[0] == [(15.0, 2.0)]

    def test_per_class_sample_lists(self):
        tap = PacketTap(2, 0.0, 100.0)
        tap.on_departure(departed(0, 0.0, 1.0), 1.0)
        tap.on_departure(departed(1, 0.0, 2.0), 2.0)
        assert len(tap.samples[0]) == 1
        assert len(tap.samples[1]) == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketTap(1, start=5.0, end=5.0)
