"""Differential test harness: every scheduler x topology x execution mode.

The drain kernels promise *bit-identical* behaviour to the classic
evented run -- same departures, same per-hop link state, same clock,
same residual calendar keys -- for every registered scheduler, on every
topology shape the chain walk supports.  This module is the reusable
fixture layer that proves it exhaustively:

* :data:`SCHEDULERS` -- all registry names (including the ``wfq``
  alias, which must behave identically to ``scfq``);
* :data:`SHAPES` -- topology builders: single hop, a 3-hop chain, a
  fan-in merge (two upstream links plus cross-traffic feeding one
  server -- exercises the chain walk's upstream fixpoint), and a
  routed diamond DAG through :class:`~repro.network.routed.RouteDemux`
  (two flows sharing the tail edge);
* :func:`run_cell` -- one (scheduler, shape) simulation in a chosen
  execution mode, returning a :class:`RunCapture`;
* :func:`differential_cell` -- runs all four execution modes
  (fused/evented x columnar/object) and asserts exact equality
  against the evented-object reference.

Execution modes
---------------
``fused``    drain kernels on (single-link + chain-fused + generated
             non-stock bodies) -- the production default;
``evented``  one calendar event per arrival/departure, wrapper calls
             everywhere -- the semantics oracle.
``columnar`` packets live as columns until an observation boundary;
``object``   every packet is a real :class:`Packet` throughout.

The module doubles as a CLI for the CI matrix job::

    python -m tests.differential --check-invariants --out table.md

runs the full grid, additionally replays one evented run per cell
under :class:`~repro.invariants.InvariantChecker` (every dispatch
validated by the scheduler's registered oracle), verifies every
generated drain body's class-level proof (:func:`generation_report`),
and emits a per-scheduler pass/fail table; exit status 1 on any
failure.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.invariants import InvariantChecker
from repro.network.flows import FlowRecorder, UserFlow
from repro.network.routed import RoutedNetwork
from repro.network.topology import FlowDemux
from repro.schedulers import make_scheduler
from repro.schedulers.draingen import generation_report
from repro.schedulers.registry import available_schedulers
from repro.sim import Link, PacketSink, Simulator
from repro.sim.engine import _CANCELLABLE
from repro.sim.rng import RandomStreams
from repro.traffic import (
    ArrivalCursor,
    CompiledMixedSource,
    PacketIdAllocator,
    ParetoInterarrivals,
)

SDPS = (1.0, 2.0, 4.0, 8.0)
MIX = (0.4, 0.3, 0.2, 0.1)
HORIZON = 320.0
FLOW_STARTS = (40.0, 40.0 + 1.0 / 3.0, 97.625)

#: Every name the scheduler registry accepts (12: wtp, qwtp, fcfs,
#: strict, bpr, pad, hpd, adaptive-wtp, scfq, wfq, drr, additive).
SCHEDULERS: tuple[str, ...] = available_schedulers()

MODES = (
    ("fused", "columnar"),
    ("fused", "object"),
    ("evented", "columnar"),
    ("evented", "object"),
)


@dataclass(frozen=True)
class RunCapture:
    """Everything one run exposes to exact-equality comparison."""

    #: flow_id -> end-to-end queueing delays, in delivery order.
    delays: tuple
    #: One :func:`link_state` tuple per link, in topology order.
    links: tuple
    now: float
    #: Residual live calendar keys ``(time, seq)`` past the horizon --
    #: the drain contract says the heap must end bit-identical too.
    calendar: tuple
    #: :meth:`InvariantReport.to_dict` of a checked run (``None``
    #: otherwise); excluded from equality so checked and unchecked
    #: captures of the same run still compare equal.
    invariants: Optional[dict] = field(default=None, compare=False)


def link_state(link: Link) -> tuple:
    queues = link.scheduler.queues
    return (
        link.arrivals,
        link.departures,
        link.bytes_sent,
        link.busy_time,
        link.busy,
        queues.total_packets,
        tuple(queues.head_arrivals),
        tuple(queues.bytes_backlog),
    )


def _capture(sim: Simulator, links, recorder: FlowRecorder, nflows: int) -> RunCapture:
    return RunCapture(
        delays=tuple(
            tuple(recorder.flow_delays(fid)) for fid in range(nflows)
        ),
        links=tuple(link_state(link) for link in links),
        now=sim.now,
        calendar=tuple(
            sorted(
                (entry[0], entry[1])
                for entry in sim._heap
                if not (entry[2] is _CANCELLABLE and entry[3].callback is None)
            )
        ),
    )


# ----------------------------------------------------------------------
# Topology shapes
# ----------------------------------------------------------------------
def _cross_traffic(cursor, link, streams, ids) -> None:
    cursor.add(
        CompiledMixedSource(
            link,
            ParetoInterarrivals(2.6, 1.9, streams.generator()),
            MIX,
            1.0,
            streams.generator(),
            ids=ids,
        )
    )


def _launch_flows(sim, entries) -> int:
    """Bursty user flows into each entry link; returns the flow count."""
    nflows = 0
    for start in FLOW_STARTS:
        for entry in entries:
            for class_id in (3, 1):
                UserFlow(
                    sim,
                    entry,
                    flow_id=nflows,
                    class_id=class_id,
                    num_packets=5,
                    packet_size=1.0,
                    period=2.0,
                    first_packet_id=1_000_000 + nflows * 1_000,
                ).launch(start)
                nflows += 1
    return nflows


def build_single(sim, name, drain, columnar, streams, ids):
    recorder = FlowRecorder()
    link = Link(
        sim,
        make_scheduler(name, SDPS),
        capacity=1.0,
        target=FlowDemux(recorder, PacketSink()),
        name="hop0",
        drain=drain,
        columnar=columnar,
    )
    cursor = ArrivalCursor(sim)
    for _ in range(2):
        _cross_traffic(cursor, link, streams, ids)
    cursor.start()
    return [link], [link], recorder


def build_chain(sim, name, drain, columnar, streams, ids, hops: int = 3):
    recorder = FlowRecorder()
    links: list[Link] = []
    downstream = recorder
    for hop in range(hops - 1, -1, -1):
        link = Link(
            sim,
            make_scheduler(name, SDPS),
            capacity=1.0,
            target=FlowDemux(downstream, PacketSink()),
            name=f"hop{hop}",
            drain=drain,
            columnar=columnar,
        )
        links.append(link)
        downstream = link
    links.reverse()
    cursor = ArrivalCursor(sim)
    for link in links:
        _cross_traffic(cursor, link, streams, ids)
    cursor.start()
    return links, [links[0]], recorder


def build_fanin(sim, name, drain, columnar, streams, ids):
    """Two upstream links and cross-traffic merging into one server.

    The merge server is *behind* both upstreams, so the chain walk from
    either entry must discover the sibling via the upstream fan-in
    fixpoint for the whole merge to fuse.
    """
    recorder = FlowRecorder()
    merge = Link(
        sim,
        make_scheduler(name, SDPS),
        capacity=2.0,
        target=FlowDemux(recorder, PacketSink()),
        name="merge",
        drain=drain,
        columnar=columnar,
    )
    upstreams = [
        Link(
            sim,
            make_scheduler(name, SDPS),
            capacity=1.0,
            target=merge,
            name=f"up{i}",
            drain=drain,
            columnar=columnar,
        )
        for i in range(2)
    ]
    cursor = ArrivalCursor(sim)
    for link in upstreams:
        _cross_traffic(cursor, link, streams, ids)
    # Cross-traffic injected at the merge point itself.
    _cross_traffic(cursor, merge, streams, ids)
    cursor.start()
    return [*upstreams, merge], upstreams, recorder


def build_routed(sim, name, drain, columnar, streams, ids):
    """Diamond DAG: A->B->D and A->C->D, both continuing over D->E.

    Routes share the tail edge, so :class:`RouteDemux` resolution (not
    a static ``FlowDemux``) steers the merge; the D->E server is a
    fan-in point reached through routed demuxes on both sides.
    """
    recorder = FlowRecorder()
    net = RoutedNetwork(sim, drain=drain)
    for node in "ABCDE":
        net.add_node(node)
    edges = [("A", "B"), ("B", "D"), ("A", "C"), ("C", "D"), ("D", "E")]
    for src, dst in edges:
        link = net.add_link(
            src, dst, make_scheduler(name, SDPS), capacity=2.0
        )
        link.columnar = columnar if columnar is not None else link.columnar
    # One route per flow _launch_flows will create, alternating sides
    # of the diamond in the same (start, entry, class) launch order:
    # flow ids 0,1 enter A->B, 2,3 enter A->C, 4,5 A->B, ...
    total_flows = len(FLOW_STARTS) * 2 * 2
    for fid in range(total_flows):
        path = (
            ["A", "B", "D", "E"]
            if (fid // 2) % 2 == 0
            else ["A", "C", "D", "E"]
        )
        net.add_route(fid, path, terminal=recorder)
    links = [net.edge_link(s, d) for s, d in edges]
    cursor = ArrivalCursor(sim)
    for link in links:
        _cross_traffic(cursor, link, streams, ids)
    cursor.start()
    # Flows enter at their routed ingress (both A-edges).
    entries = [net.edge_link("A", "B"), net.edge_link("A", "C")]
    return links, entries, recorder


SHAPES: dict[str, Callable] = {
    "single": build_single,
    "chain": build_chain,
    "fanin": build_fanin,
    "routed": build_routed,
}


# ----------------------------------------------------------------------
# Cell runner
# ----------------------------------------------------------------------
def run_cell(
    scheduler: str,
    shape: str,
    kernel: str = "fused",
    storage: str = "columnar",
    seed: int = 9,
    check_invariants: bool = False,
    horizon: float = HORIZON,
):
    """One simulation; returns ``(capture, links)``.

    ``kernel`` is ``fused``/``evented``; ``storage`` is
    ``columnar``/``object``.  With ``check_invariants`` an
    :class:`InvariantChecker` attaches to the last link (the merge
    server for fan-in shapes) and the run finishes with its
    ``finalize`` -- any oracle violation raises.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    ids = PacketIdAllocator()
    drain = kernel == "fused"
    columnar = storage == "columnar"
    links, entries, recorder = SHAPES[shape](
        sim, scheduler, drain, columnar, streams, ids
    )
    nflows = _launch_flows(sim, entries)
    report = None
    if check_invariants:
        checker = InvariantChecker(links[-1])
        checker.attach()
        sim.run_checked(until=horizon)
        report = checker.finalize()
        assert report.departures > 0
    else:
        sim.run(until=horizon)
    for fid in range(nflows):
        assert recorder.packet_count(fid) == 5, (
            f"{scheduler}/{shape}/{kernel}/{storage}: flow {fid} "
            f"delivered {recorder.packet_count(fid)}/5 packets"
        )
    capture = _capture(sim, links, recorder, nflows)
    if report is not None:
        capture = RunCapture(
            delays=capture.delays,
            links=capture.links,
            now=capture.now,
            calendar=capture.calendar,
            invariants=report.to_dict(),
        )
    return capture, links


def differential_cell(scheduler: str, shape: str, seed: int = 9) -> RunCapture:
    """All four execution modes of one cell must capture identically.

    Returns the reference capture (evented/object) for further
    inspection.  Also asserts the fused run really fused on fusable
    shapes -- a silent fallback to the wrapper path would make the
    equality vacuous.
    """
    captures = {}
    fused_links = None
    for kernel, storage in MODES:
        captures[(kernel, storage)], links = run_cell(
            scheduler, shape, kernel, storage, seed
        )
        if (kernel, storage) == ("fused", "columnar"):
            fused_links = links
    reference = captures[("evented", "object")]
    for mode, capture in captures.items():
        assert capture == reference, (
            f"{scheduler}/{shape}: mode {mode} diverged from the "
            f"evented/object reference"
        )
    # Fusion sanity: on multi-link shapes the entry must really have
    # fused a chain of more than one member -- a silent fallback to the
    # wrapper path would make the equality above vacuous.  (A single
    # hop drains through the one-link busy-period kernel instead; its
    # chain walk finds no coupled successor and leaves fusion off.)
    entry = fused_links[0]
    if shape != "single":
        assert entry._chain_fuse is True, (
            f"{scheduler}/{shape}: fused run fell back to the evented path"
        )
        assert len(entry._chain_cache.members) > 1, (
            f"{scheduler}/{shape}: chain walk found no coupled members"
        )
    return reference


# ----------------------------------------------------------------------
# Hybrid engine mode
# ----------------------------------------------------------------------
def hybrid_epsilon_zero_cell(seed: int = 5) -> None:
    """``epsilon = 0`` must short-circuit to the pure packet path.

    The contract (DESIGN.md, hybrid handoff note): with the error
    bound at zero the planner emits exactly one packet segment, and the
    controller's run is *bit-identical* to the plain evented city path
    -- same per-class delay sums, counts, and hub departures, compared
    with ``==`` (no tolerance).  This pins the structural guarantee the
    fidelity bounds build on: fluid mode is a pure optimization layer
    that can always be turned off.
    """
    import dataclasses

    from repro.scenarios.city import (
        CityScenarioConfig,
        CityTask,
        city_summary,
        compile_city_traces,
    )
    from repro.sim.hybrid import HybridConfig, HybridController

    config = CityScenarioConfig(
        flows=48,
        horizon=6_000.0,
        warmup=400.0,
        seed=seed,
        hybrid=HybridConfig(epsilon=0.0),
    )
    controller = HybridController(config, compile_city_traces(config))
    plan = controller.plan(config.horizon)
    assert [segment.mode for segment in plan] == ["packet"], plan
    controller.run()
    reference = city_summary(
        CityTask(dataclasses.replace(config, hybrid=None))
    )
    assert controller.monitor.mean_delays() == reference["mean_delays"]
    assert controller.monitor.counts() == reference["class_counts"]
    assert controller.packet_departures == reference["hub_departures"]


def hybrid_multihop_epsilon_zero_cell(scheduler: str, seed: int = 5) -> None:
    """``epsilon = 0`` on a *multihop* cell, for any registry scheduler.

    The network-wide extension of :func:`hybrid_epsilon_zero_cell`: on
    a 2-branch, 2-hops-per-branch star the planner must emit exactly
    one packet segment and the controller run must be bit-identical to
    the plain evented multihop city path -- per-class delay means,
    counts, and hub departures compared with ``==``.  Holding for every
    registered scheduler (including those *without* a fluid map, which
    the ``epsilon = 0`` path must accept) pins that the network-wide
    fluid layer is a pure optimization that can always be turned off.
    """
    import dataclasses

    from repro.scenarios.city import (
        CityScenarioConfig,
        CityTask,
        city_summary,
        compile_city_traces,
    )
    from repro.sim.hybrid import HybridConfig, HybridController

    config = CityScenarioConfig(
        scheduler=scheduler,
        topology="star_of_chains",
        branches=2,
        hops_per_branch=2,
        flows=32,
        horizon=6_000.0,
        warmup=400.0,
        seed=seed,
        hybrid=HybridConfig(epsilon=0.0),
    )
    controller = HybridController(config, compile_city_traces(config))
    plan = controller.plan(config.horizon)
    assert [segment.mode for segment in plan] == ["packet"], plan
    controller.run()
    reference = city_summary(
        CityTask(dataclasses.replace(config, hybrid=None))
    )
    assert controller.monitor.mean_delays() == reference["mean_delays"]
    assert controller.monitor.counts() == reference["class_counts"]
    assert controller.packet_departures == reference["hub_departures"]


# ----------------------------------------------------------------------
# CLI (CI matrix job)
# ----------------------------------------------------------------------
def _run_matrix(check_invariants: bool) -> tuple[list[tuple], bool]:
    rows = []
    all_ok = True
    codegen = generation_report()
    for scheduler in SCHEDULERS:
        cells = {}
        for shape in SHAPES:
            try:
                differential_cell(scheduler, shape)
                if check_invariants:
                    run_cell(
                        scheduler,
                        shape,
                        kernel="evented",
                        storage="object",
                        check_invariants=True,
                    )
                cells[shape] = "pass"
            except Exception as exc:  # noqa: BLE001 - table, not control flow
                cells[shape] = f"FAIL: {type(exc).__name__}: {exc}"
                all_ok = False
        rows.append((scheduler, cells))
    for cls_name, verdict in codegen.items():
        if verdict is not True:
            rows.append((f"codegen:{cls_name}", {"verify": f"FAIL: {verdict}"}))
            all_ok = False
    try:
        hybrid_epsilon_zero_cell()
        rows.append(("hybrid:eps0", {"verify": "pass"}))
    except Exception as exc:  # noqa: BLE001 - table, not control flow
        rows.append(("hybrid:eps0", {"verify": f"FAIL: {type(exc).__name__}: {exc}"}))
        all_ok = False
    for scheduler in SCHEDULERS:
        row = f"hybrid-multihop:eps0:{scheduler}"
        try:
            hybrid_multihop_epsilon_zero_cell(scheduler)
            rows.append((row, {"verify": "pass"}))
        except Exception as exc:  # noqa: BLE001 - table, not control flow
            rows.append(
                (row, {"verify": f"FAIL: {type(exc).__name__}: {exc}"})
            )
            all_ok = False
    return rows, all_ok


def _format_table(rows, check_invariants: bool) -> str:
    shapes = list(SHAPES)
    lines = [
        "# Differential harness results",
        "",
        f"Modes per cell: {' '.join('/'.join(m) for m in MODES)}"
        + (" + oracle-checked evented replay" if check_invariants else ""),
        "",
        "| scheduler | " + " | ".join(shapes) + " |",
        "|---|" + "---|" * len(shapes),
    ]
    for scheduler, cells in rows:
        if set(cells) == {"verify"}:
            lines.append(
                f"| {scheduler} | " + f"{cells['verify']} |" * len(shapes)
            )
            continue
        lines.append(
            f"| {scheduler} | "
            + " | ".join(cells.get(shape, "-") for shape in shapes)
            + " |"
        )
    return "\n".join(lines) + "\n"


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the scheduler x topology differential matrix."
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="additionally replay each cell evented under the "
        "InvariantChecker (every dispatch oracle-validated)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the pass/fail table to this file as well as stdout",
    )
    args = parser.parse_args(argv)
    rows, all_ok = _run_matrix(args.check_invariants)
    table = _format_table(rows, args.check_invariants)
    sys.stdout.write(table)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(table)
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
