"""Tests for the loss-differentiation extension (PLR droppers)."""

from __future__ import annotations

import math

import pytest

from repro.dropping import PLRDropper, TailDropPolicy, validate_ldps
from repro.errors import ConfigurationError
from repro.schedulers import WTPScheduler
from repro.sim import Link, PacketSink, Simulator
from repro.sim.queues import ClassQueueSet
from repro.traffic import (
    ConstantInterarrivals,
    FixedPacketSize,
    PacketIdAllocator,
    PoissonInterarrivals,
    TrafficSource,
)
from repro.sim.rng import RandomStreams

from .conftest import make_packet


class TestValidateLdps:
    def test_valid(self):
        assert validate_ldps([4.0, 2.0, 1.0]) == (4.0, 2.0, 1.0)

    def test_must_be_decreasing(self):
        with pytest.raises(ConfigurationError):
            validate_ldps([1.0, 2.0])

    def test_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            validate_ldps([1.0, 0.0])


class TestTailDrop:
    def test_always_drops_arriving(self):
        policy = TailDropPolicy()
        queues = ClassQueueSet(2)
        queues.push(make_packet(0, class_id=0))
        assert policy.choose_victim(queues, make_packet(1, class_id=1), 0.0) is None


class TestPLRUnit:
    def test_victim_is_least_normalized_loss(self):
        dropper = PLRDropper((4.0, 1.0))
        queues = ClassQueueSet(2)
        queues.push(make_packet(0, class_id=0))
        queues.push(make_packet(1, class_id=1))
        # Seed history: class 1 already lost heavily relative to sigma.
        for _ in range(10):
            dropper.on_arrival(0, 0.0)
            dropper.on_arrival(1, 0.0)
        for _ in range(8):
            dropper.on_drop(0, 0.0)
        # class 1 fraction 0.8 / 4 = 0.2; class 2 fraction 0 -> victim 2.
        assert dropper.choose_victim(queues, make_packet(9, 0), 0.0) == 1

    def test_victim_must_be_backlogged(self):
        dropper = PLRDropper((4.0, 1.0))
        queues = ClassQueueSet(2)
        queues.push(make_packet(0, class_id=0))
        dropper.on_arrival(0, 0.0)
        dropper.on_arrival(1, 0.0)
        assert dropper.choose_victim(queues, make_packet(1, 1), 0.0) == 0

    def test_loss_fraction_infinite_window(self):
        dropper = PLRDropper((2.0, 1.0))
        for _ in range(4):
            dropper.on_arrival(0, 0.0)
        dropper.on_drop(0, 0.0)
        assert dropper.loss_fraction(0) == pytest.approx(0.25)
        assert dropper.loss_fraction(1) == 0.0

    def test_windowed_fraction_forgets_old_history(self):
        dropper = PLRDropper((2.0, 1.0), window=4)
        for _ in range(4):
            dropper.on_arrival(0, 0.0)
        dropper.on_drop(0, 0.0)
        assert dropper.loss_fraction(0) == pytest.approx(0.25)
        # Four fresh arrivals push the dropped one out of the window.
        for _ in range(4):
            dropper.on_arrival(0, 0.0)
        assert dropper.loss_fraction(0) == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            PLRDropper((2.0, 1.0), window=0)

    def test_loss_ratios_nan_when_no_arrivals(self):
        ratios = PLRDropper((2.0, 1.0)).loss_ratios()
        assert math.isnan(ratios[0])


class TestPLRIntegration:
    def overload_link(self, dropper, horizon=4e4, seed=3):
        sim = Simulator()
        streams = RandomStreams(seed)
        link = Link(
            sim,
            WTPScheduler((1.0, 2.0)),
            capacity=1.0,
            buffer_packets=20,
            drop_policy=dropper,
            target=PacketSink(),
        )
        ids = PacketIdAllocator()
        for cid in range(2):
            TrafficSource(
                sim, link, cid,
                PoissonInterarrivals(1.4, streams.generator()),  # rho ~ 1.43
                FixedPacketSize(1.0), ids=ids,
            ).start()
        sim.run(until=horizon)
        return link

    def test_loss_ratio_tracks_ldps(self):
        dropper = PLRDropper((3.0, 1.0))
        link = self.overload_link(dropper)
        assert link.drops > 100
        ratios = dropper.loss_ratios()
        assert ratios[0] == pytest.approx(3.0, rel=0.25)

    def test_windowed_variant_also_differentiates(self):
        dropper = PLRDropper((3.0, 1.0), window=500)
        link = self.overload_link(dropper)
        assert link.drops > 100
        fractions = [dropper.drops[c] / dropper.arrivals[c] for c in range(2)]
        assert fractions[0] > 1.8 * fractions[1]

    def test_no_loss_when_buffer_large_enough(self):
        sim = Simulator()
        dropper = PLRDropper((2.0, 1.0))
        link = Link(
            sim, WTPScheduler((1.0, 2.0)), capacity=1.0,
            buffer_packets=1000, drop_policy=dropper,
        )
        source = TrafficSource(
            sim, link, 0, ConstantInterarrivals(2.0), FixedPacketSize(1.0),
            stop_time=100.0,
        )
        source.start()
        sim.run()
        assert link.drops == 0
