"""Tests for the analytic queueing results (M/G/1, Cobham, Kleinrock)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.schedulers import StrictPriorityScheduler, WTPScheduler
from repro.theory import (
    ServiceDistribution,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_wait,
    residual_work,
    strict_priority_waits,
    tdp_heavy_load_ratio,
    tdp_waits,
)

from .conftest import run_poisson_link


class TestServiceDistribution:
    def test_deterministic_moments(self):
        service = ServiceDistribution.deterministic(2.0)
        assert service.mean == 2.0
        assert service.second_moment == 4.0

    def test_exponential_moments(self):
        service = ServiceDistribution.exponential(2.0)
        assert service.second_moment == 8.0

    def test_from_packet_mix_matches_paper(self):
        service = ServiceDistribution.from_packet_mix(
            [40.0, 550.0, 1500.0], [0.4, 0.5, 0.1], capacity=39.375
        )
        assert service.mean == pytest.approx(11.2)

    def test_impossible_moments_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceDistribution(2.0, 1.0)


class TestMG1:
    def test_md1_is_half_mm1(self):
        rate, service_time = 0.8, 1.0
        assert md1_mean_wait(rate, service_time) == pytest.approx(
            mm1_mean_wait(rate, service_time) / 2.0
        )

    def test_unstable_rejected(self):
        with pytest.raises(ConfigurationError):
            mm1_mean_wait(1.0, 1.0)

    def test_residual_work(self):
        service = ServiceDistribution.deterministic(1.0)
        assert residual_work(0.8, service) == pytest.approx(0.4)

    def test_wait_grows_without_bound_near_saturation(self):
        service = ServiceDistribution.deterministic(1.0)
        assert mg1_mean_wait(0.99, service) > 10 * mg1_mean_wait(0.8, service)


class TestCobham:
    service = ServiceDistribution.deterministic(1.0)

    def test_two_class_closed_form(self):
        rates = [0.4, 0.4]
        w = strict_priority_waits(rates, self.service)
        w0 = residual_work(0.8, self.service)
        assert w[1] == pytest.approx(w0 / (1 - 0.4))
        assert w[0] == pytest.approx(w0 / ((1 - 0.8) * (1 - 0.4)))

    def test_conservation_law_holds(self):
        rates = [0.3, 0.3, 0.2]
        w = strict_priority_waits(rates, self.service)
        fcfs = mg1_mean_wait(sum(rates), self.service)
        lhs = sum(r * wi for r, wi in zip(rates, w))
        assert lhs == pytest.approx(sum(rates) * fcfs, rel=1e-9)

    def test_unstable_rejected(self):
        with pytest.raises(ConfigurationError):
            strict_priority_waits([0.6, 0.6], self.service)

    def test_matches_simulation(self):
        rates = [0.32, 0.24, 0.16, 0.08]
        theory = strict_priority_waits(rates, self.service)
        measured, _ = run_poisson_link(
            StrictPriorityScheduler(4), rates, horizon=3e5, seed=1
        )
        for m, t in zip(measured, theory):
            assert m == pytest.approx(t, rel=0.10)


class TestKleinrockTDP:
    service = ServiceDistribution.deterministic(1.0)

    def test_equal_sdps_reduce_to_fcfs(self):
        rates = [0.3, 0.3, 0.2]
        w = tdp_waits(rates, [1.0, 1.0, 1.0], self.service)
        fcfs = mg1_mean_wait(sum(rates), self.service)
        assert w == pytest.approx([fcfs] * 3, rel=1e-9)

    def test_extreme_sdps_reduce_to_cobham(self):
        rates = [0.3, 0.3, 0.2]
        w = tdp_waits(rates, [1.0, 1e7, 1e14], self.service)
        cobham = strict_priority_waits(rates, self.service)
        assert w == pytest.approx(cobham, rel=1e-4)

    def test_conservation_law_holds(self):
        rates = [0.32, 0.24, 0.16, 0.08]
        w = tdp_waits(rates, [1.0, 2.0, 4.0, 8.0], self.service)
        fcfs = mg1_mean_wait(sum(rates), self.service)
        lhs = sum(r * wi for r, wi in zip(rates, w))
        assert lhs == pytest.approx(sum(rates) * fcfs, rel=1e-9)

    def test_heavy_load_ratio_limit(self):
        """W_i / W_j -> s_j / s_i as rho -> 1 (paper Eq 13)."""
        sdps = [1.0, 2.0, 4.0, 8.0]
        for rho, tolerance in ((0.9, 0.25), (0.99, 0.05), (0.999, 0.01)):
            rates = [rho * s for s in (0.4, 0.3, 0.2, 0.1)]
            w = tdp_waits(rates, sdps, self.service)
            for i in range(3):
                target = tdp_heavy_load_ratio(sdps, i, i + 1)
                assert w[i] / w[i + 1] == pytest.approx(target, rel=tolerance)

    def test_waits_ordered_by_sdp(self):
        rates = [0.2, 0.2, 0.2, 0.2]
        w = tdp_waits(rates, [1.0, 2.0, 4.0, 8.0], self.service)
        assert w[0] > w[1] > w[2] > w[3]

    def test_matches_wtp_simulation(self):
        """The linear system reproduces the event-driven WTP scheduler
        under Poisson traffic (the validation the paper lacked analytic
        tools for; see module docstring of repro.theory.kleinrock)."""
        rates = [0.32, 0.24, 0.16, 0.08]
        sdps = (1.0, 2.0, 4.0, 8.0)
        theory = tdp_waits(rates, sdps, self.service)
        measured, _ = run_poisson_link(
            WTPScheduler(sdps), rates, horizon=4e5, seed=0
        )
        for m, t in zip(measured, theory):
            assert m == pytest.approx(t, rel=0.08)

    def test_unstable_rejected(self):
        with pytest.raises(ConfigurationError):
            tdp_waits([0.6, 0.6], [1.0, 2.0], self.service)

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            tdp_waits([0.5], [1.0, 2.0], self.service)

    def test_per_class_services_shared_equals_single(self):
        rates = [0.3, 0.3, 0.2]
        sdps = [1.0, 2.0, 4.0]
        single = tdp_waits(rates, sdps, self.service)
        shared = tdp_waits(rates, sdps, [self.service] * 3)
        assert shared == pytest.approx(single)

    def test_per_class_service_count_validated(self):
        with pytest.raises(ConfigurationError):
            tdp_waits([0.3, 0.3], [1.0, 2.0], [self.service])


class TestProportionalDelaysMG1:
    """The ideal-scheduler yardstick (Eq 6 + P-K)."""

    service = ServiceDistribution.deterministic(1.0)

    def test_ratios_exactly_inverse_sdps(self):
        from repro.theory import proportional_delays_mg1

        rates = [0.32, 0.24, 0.16, 0.08]
        delays = proportional_delays_mg1(rates, [1.0, 2.0, 4.0, 8.0],
                                         self.service)
        for i in range(3):
            assert delays[i] / delays[i + 1] == pytest.approx(2.0)

    def test_satisfies_conservation_law(self):
        from repro.theory import proportional_delays_mg1

        rates = [0.32, 0.24, 0.16, 0.08]
        delays = proportional_delays_mg1(rates, [1.0, 2.0, 4.0, 8.0],
                                         self.service)
        fcfs = mg1_mean_wait(sum(rates), self.service)
        lhs = sum(r * d for r, d in zip(rates, delays))
        assert lhs == pytest.approx(sum(rates) * fcfs, rel=1e-12)

    def test_tdp_converges_to_ideal_in_heavy_load(self):
        """WTP's exact M/G/1 waits approach the Eq 6 ideal as rho -> 1;
        at moderate load they differ (the paper's undershoot)."""
        from repro.theory import proportional_delays_mg1

        sdps = [1.0, 2.0, 4.0, 8.0]

        def gap(rho):
            rates = [rho * s for s in (0.4, 0.3, 0.2, 0.1)]
            ideal = proportional_delays_mg1(rates, sdps, self.service)
            actual = tdp_waits(rates, sdps, self.service)
            return max(abs(a - i) / i for a, i in zip(actual, ideal))

        assert gap(0.999) < 0.02
        assert gap(0.70) > 0.15
        assert gap(0.999) < gap(0.95) < gap(0.70)

    def test_invalid_inputs(self):
        from repro.theory import proportional_delays_mg1

        with pytest.raises(ConfigurationError):
            proportional_delays_mg1([0.5], [1.0, 2.0], self.service)
        with pytest.raises(ConfigurationError):
            proportional_delays_mg1([0.0], [1.0], self.service)


class TestPerClassServices:
    """Heterogeneous packet sizes: the generalized theory vs simulation."""

    def test_tdp_heterogeneous_matches_simulation(self):
        from repro.theory import ServiceDistribution

        rates = [0.5, 0.2, 0.1]
        sizes = [0.8, 1.2, 2.0]  # rho = 0.84
        sdps = (1.0, 2.0, 8.0)
        services = [ServiceDistribution.deterministic(s) for s in sizes]
        theory = tdp_waits(rates, sdps, services)

        from repro.schedulers import WTPScheduler
        from repro.sim import DelayMonitor, Link, PacketSink, Simulator
        from repro.sim.rng import RandomStreams
        from repro.traffic import (
            FixedPacketSize,
            PacketIdAllocator,
            PoissonInterarrivals,
            TrafficSource,
        )

        sim = Simulator()
        streams = RandomStreams(0)
        link = Link(sim, WTPScheduler(sdps), capacity=1.0, target=PacketSink())
        monitor = DelayMonitor(3, warmup=2e4)
        link.add_monitor(monitor)
        ids = PacketIdAllocator()
        for cid, (rate, size) in enumerate(zip(rates, sizes)):
            TrafficSource(
                sim, link, cid,
                PoissonInterarrivals(1.0 / rate, streams.generator()),
                FixedPacketSize(size), ids=ids,
            ).start()
        sim.run(until=4e5)
        for measured, expected in zip(monitor.mean_delays(), theory):
            assert measured == pytest.approx(expected, rel=0.08)

    def test_cobham_heterogeneous_conservation(self):
        """Generalized conservation law: sum rho_i W_i is invariant
        (equal to rho * W_FCFS computed with the aggregate moments)."""
        from repro.theory import (
            ServiceDistribution,
            aggregate_residual,
            strict_priority_waits,
        )

        rates = [0.4, 0.2, 0.1]
        services = [
            ServiceDistribution.deterministic(0.5),
            ServiceDistribution.exponential(1.0),
            ServiceDistribution.deterministic(2.0),
        ]
        waits = strict_priority_waits(rates, services)
        rhos = [r * s.mean for r, s in zip(rates, services)]
        w0 = aggregate_residual(rates, services)
        lhs = sum(rho * w for rho, w in zip(rhos, waits))
        rhs = sum(rhos) * w0 / (1.0 - sum(rhos))
        assert lhs == pytest.approx(rhs, rel=1e-9)
