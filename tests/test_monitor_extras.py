"""Tests for the throughput monitor and backlog sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.schedulers import BPRScheduler, FCFSScheduler
from repro.sim import (
    BacklogSampler,
    Link,
    PacketSink,
    Simulator,
    ThroughputMonitor,
)

from .conftest import make_packet


class TestThroughputMonitor:
    def test_bytes_bucketed_by_interval(self):
        monitor = ThroughputMonitor(2, tau=10.0)
        first = make_packet(0, class_id=0, size=100.0)
        second = make_packet(1, class_id=1, size=50.0)
        third = make_packet(2, class_id=0, size=25.0)
        monitor.on_departure(first, 3.0)
        monitor.on_departure(second, 7.0)
        monitor.on_departure(third, 15.0)
        monitor.finalize()
        assert monitor.intervals[0] == (0, [100.0, 50.0])
        assert monitor.intervals[1] == (1, [25.0, 0.0])

    def test_rates(self):
        monitor = ThroughputMonitor(1, tau=5.0)
        monitor.on_departure(make_packet(0, size=50.0), 1.0)
        monitor.finalize()
        assert monitor.rates().tolist() == [[10.0]]

    def test_warmup(self):
        monitor = ThroughputMonitor(1, tau=1.0, warmup=100.0)
        monitor.on_departure(make_packet(0, size=10.0), 5.0)
        monitor.finalize()
        assert monitor.intervals == []

    def test_invalid_tau(self):
        with pytest.raises(ConfigurationError):
            ThroughputMonitor(1, tau=0.0)

    def test_empty_rates_shape(self):
        monitor = ThroughputMonitor(3, tau=1.0)
        monitor.finalize()
        assert monitor.rates().shape == (0, 3)

    def test_bpr_rates_shift_with_backlog(self):
        """BPR gives a bursting class more short-run bandwidth; the
        throughput monitor makes that visible."""
        sim = Simulator()
        monitor = ThroughputMonitor(2, tau=20.0)
        link = Link(sim, BPRScheduler((1.0, 2.0)), capacity=1.0,
                    target=PacketSink())
        link.add_monitor(monitor)
        # Steady class-1 backlog, then a class-2 burst at t=40.
        for k in range(80):
            sim.schedule(0.0, link.receive,
                         make_packet(k, class_id=0, size=1.0))
        for k in range(30):
            sim.schedule(40.0, link.receive,
                         make_packet(1000 + k, class_id=1, size=1.0))
        sim.run()
        monitor.finalize()
        rates = monitor.rates()
        # Before the burst class 2 gets nothing; after it, plenty.
        assert rates[0, 1] == 0.0
        post_burst = rates[2:, 1]
        assert post_burst.max() > 0.5


class TestBacklogSampler:
    def test_samples_on_schedule(self):
        sim = Simulator()
        link = Link(sim, FCFSScheduler(1), capacity=1.0)
        sampler = BacklogSampler(period=1.0, horizon=5.0)
        sampler.attach(sim, link)
        for k in range(4):
            sim.schedule(0.0, link.receive, make_packet(k, size=2.0))
        sim.run(until=5.0)
        assert sampler.times == [1.0, 2.0, 3.0, 4.0, 5.0]
        matrix = sampler.as_array()
        assert matrix.shape == (5, 1)
        # Backlog decreases as the queue drains (one 2-byte packet per
        # 2 time units; in-service packet is not in the queue).
        assert matrix[0, 0] >= matrix[-1, 0]

    def test_bpr_backlogs_drain_toward_simultaneous_empty(self):
        """Sampled BPR backlog trajectories show both classes shrinking
        together (the fluid Proposition-1 shape, packetized)."""
        sim = Simulator()
        scheduler = BPRScheduler((1.0, 2.0))
        link = Link(sim, scheduler, capacity=1.0, target=PacketSink())
        sampler = BacklogSampler(period=5.0, horizon=60.0)
        sampler.attach(sim, link)
        for k in range(30):
            sim.schedule(0.0, link.receive, make_packet(k, 0, size=1.0))
        for k in range(20):
            sim.schedule(0.0, link.receive, make_packet(100 + k, 1, size=1.0))
        sim.run(until=60.0)
        matrix = sampler.as_array()
        # At t=25 (halfway through the 50-unit busy period) BOTH classes
        # must still be backlogged -- strict priority would have already
        # emptied one of them.
        halfway = matrix[4]  # sample at t=25
        assert halfway[0] > 0 and halfway[1] > 0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BacklogSampler(period=0.0, horizon=1.0)
