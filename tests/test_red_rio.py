"""Tests for the RED/RIO queue management (Assured Service substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dropping import REDDropper, REDGate, RIODropper
from repro.dropping.red import _RedCurve
from repro.errors import ConfigurationError
from repro.policing import AssuredMarker
from repro.schedulers import FCFSScheduler, WTPScheduler
from repro.sim import Link, PacketSink, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import (
    FixedPacketSize,
    PacketIdAllocator,
    PoissonInterarrivals,
    TrafficSource,
)


class TestRedCurve:
    def test_zero_below_min(self):
        curve = _RedCurve(5.0, 15.0, 0.1, weight=1.0)
        curve.update(3.0)
        assert curve.drop_probability() == 0.0

    def test_one_above_max(self):
        curve = _RedCurve(5.0, 15.0, 0.1, weight=1.0)
        curve.update(20.0)
        assert curve.drop_probability() == 1.0

    def test_linear_ramp(self):
        curve = _RedCurve(5.0, 15.0, 0.1, weight=1.0)
        curve.update(10.0)
        assert curve.drop_probability() == pytest.approx(0.05)

    def test_ewma_smooths(self):
        curve = _RedCurve(5.0, 15.0, 0.1, weight=0.1)
        curve.update(100.0)
        assert curve.average == pytest.approx(10.0)
        curve.update(100.0)
        assert curve.average == pytest.approx(19.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _RedCurve(15.0, 5.0, 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            _RedCurve(5.0, 15.0, 0.0, 0.1)
        with pytest.raises(ConfigurationError):
            _RedCurve(5.0, 15.0, 0.1, 0.0)


def overloaded_gate(dropper, utilization=1.2, horizon=3e4, seed=5,
                    scheduler=None, class_rates=None):
    """Run sources through a REDGate into a link; return (gate, link)."""
    sim = Simulator()
    streams = RandomStreams(seed)
    scheduler = scheduler or FCFSScheduler(2)
    link = Link(sim, scheduler, capacity=1.0, target=PacketSink())
    gate = REDGate(dropper, link)
    ids = PacketIdAllocator()
    rates = class_rates or [utilization / 2, utilization / 2]
    for cid, rate in enumerate(rates):
        TrafficSource(
            sim, gate, cid, PoissonInterarrivals(1.0 / rate, streams.generator()),
            FixedPacketSize(1.0), ids=ids,
        ).start()
    sim.run(until=horizon)
    return gate, link, sim


class TestREDGate:
    def test_early_drops_keep_queue_near_thresholds(self):
        dropper = REDDropper(
            min_threshold=5.0, max_threshold=15.0, max_probability=0.5,
            weight=0.05, rng=np.random.default_rng(1),
        )
        gate, link, _ = overloaded_gate(dropper)
        assert gate.dropped > 0
        assert gate.admitted + gate.dropped > 0
        # The EWMA hovers around the control band, far below what an
        # unmanaged queue would reach at 120% load.
        assert dropper.curve.average < 30.0

    def test_no_drops_below_min_threshold(self):
        dropper = REDDropper(
            min_threshold=1e5, max_threshold=2e5, rng=np.random.default_rng(2)
        )
        gate, _, _ = overloaded_gate(dropper, utilization=0.5)
        assert gate.dropped == 0

    def test_forced_overflow_falls_back_to_tail_drop(self):
        sim = Simulator()
        dropper = REDDropper(rng=np.random.default_rng(3))
        link = Link(sim, FCFSScheduler(1), capacity=0.001, buffer_packets=2,
                    drop_policy=dropper)
        from .conftest import make_packet

        for i in range(6):
            sim.schedule(0.0, link.receive, make_packet(i, size=1.0))
        sim.run(until=1.0)
        assert dropper.forced_drops == 3
        assert link.drops == 3


class TestRIO:
    def test_out_classes_required(self):
        with pytest.raises(ConfigurationError):
            RIODropper(out_classes=())

    def test_out_packets_dropped_preferentially(self):
        """At an overloaded link, Out traffic (class 0) loses far more
        than In traffic (class 1) -- the Assured Service promise."""
        dropper = RIODropper(
            out_classes=(0,),
            in_curve=(20.0, 60.0, 0.02),
            out_curve=(2.0, 10.0, 0.5),
            weight=0.05,
            rng=np.random.default_rng(7),
        )
        gate, _, _ = overloaded_gate(dropper, utilization=1.3, horizon=5e4)
        assert dropper.out_drops > 0
        # Per-arrival drop rate comparison (arrivals are symmetric).
        assert dropper.out_drops > 5 * max(dropper.in_drops, 1)

    def test_composes_with_assured_marker(self):
        """Edge-to-queue Assured Service: AssuredMarker demotes
        out-of-profile packets into the Out class; RIO then drops them
        preferentially under congestion.  In-profile traffic survives
        almost untouched."""
        sim = Simulator()
        streams = RandomStreams(11)
        dropper = RIODropper(
            out_classes=(0,),
            in_curve=(30.0, 90.0, 0.02),
            out_curve=(2.0, 8.0, 0.6),
            weight=0.05,
            rng=streams.generator(),
        )
        link = Link(sim, WTPScheduler((1.0, 4.0)), capacity=1.0,
                    target=PacketSink(keep_packets=True))
        gate = REDGate(dropper, link)
        # Assured flow: profile 0.4; offered 1.1 -> ~64% is out-of-profile.
        marker = AssuredMarker(sim, gate, rate=0.4, burst=5.0, demote_to=0)
        TrafficSource(
            sim, marker, 1, PoissonInterarrivals(1.0 / 1.1, streams.generator()),
            FixedPacketSize(1.0), ids=PacketIdAllocator(),
        ).start()
        sim.run(until=5e4)
        assert marker.out_of_profile > 0
        sink = link.target
        delivered_in = sum(1 for p in sink.packets if p.class_id == 1)
        delivered_out = sum(1 for p in sink.packets if p.class_id == 0)
        in_loss = 1.0 - delivered_in / marker.in_profile
        out_loss = 1.0 - delivered_out / marker.out_of_profile
        assert out_loss > 0.1
        assert in_loss < out_loss / 3
