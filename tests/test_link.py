"""Tests for the Link server (work conservation, accounting, buffers)."""

from __future__ import annotations

import pytest

from repro.dropping import PLRDropper, TailDropPolicy
from repro.errors import ConfigurationError
from repro.schedulers import FCFSScheduler, WTPScheduler
from repro.sim import Link, PacketSink, Simulator

from .conftest import make_packet


def send(sim: Simulator, link: Link, packet, at: float) -> None:
    sim.schedule(at, link.receive, packet)


class TestTransmission:
    def test_single_packet_latency(self, sim):
        link = Link(sim, FCFSScheduler(1), capacity=10.0,
                    target=PacketSink(keep_packets=True))
        packet = make_packet(size=50.0)
        send(sim, link, packet, 1.0)
        sim.run()
        assert packet.service_start == 1.0
        assert packet.departed_at == pytest.approx(6.0)  # 50 / 10
        assert packet.hop_delays == [0.0]

    def test_back_to_back_packets_queue(self, sim):
        link = Link(sim, FCFSScheduler(1), capacity=1.0)
        first = make_packet(0, size=10.0)
        second = make_packet(1, size=10.0)
        send(sim, link, first, 0.0)
        send(sim, link, second, 0.0)
        sim.run()
        assert first.service_start == 0.0
        assert second.service_start == 10.0
        assert second.queueing_delay == 10.0

    def test_departures_forwarded_to_target(self, sim):
        sink = PacketSink(keep_packets=True)
        link = Link(sim, FCFSScheduler(1), capacity=1.0, target=sink)
        send(sim, link, make_packet(0, size=1.0), 0.0)
        send(sim, link, make_packet(1, size=1.0), 0.5)
        sim.run()
        assert sink.received == 2
        assert [p.packet_id for p in sink.packets] == [0, 1]

    def test_counters(self, sim):
        link = Link(sim, FCFSScheduler(1), capacity=2.0)
        for i in range(3):
            send(sim, link, make_packet(i, size=4.0), float(i))
        sim.run()
        assert link.arrivals == 3
        assert link.departures == 3
        assert link.bytes_sent == 12.0
        assert link.drops == 0

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            Link(sim, FCFSScheduler(1), capacity=0.0)


class TestWorkConservation:
    def test_server_never_idles_with_backlog(self, sim):
        """Busy time equals total service demand when arrivals overlap."""
        link = Link(sim, FCFSScheduler(2), capacity=1.0)
        sizes = [5.0, 3.0, 7.0]
        for i, size in enumerate(sizes):
            send(sim, link, make_packet(i, class_id=i % 2, size=size), 0.0)
        sim.run()
        assert link.busy_time == pytest.approx(sum(sizes))
        assert sim.now == pytest.approx(sum(sizes))

    def test_idle_gap_splits_busy_periods(self, sim):
        link = Link(sim, FCFSScheduler(1), capacity=1.0)
        send(sim, link, make_packet(0, size=2.0), 0.0)
        send(sim, link, make_packet(1, size=2.0), 10.0)
        sim.run()
        assert link.busy_time == pytest.approx(4.0)
        assert link.utilization(horizon=12.0) == pytest.approx(4.0 / 12.0)

    def test_utilization_counts_open_busy_period(self, sim):
        link = Link(sim, FCFSScheduler(1), capacity=1.0)
        send(sim, link, make_packet(0, size=100.0), 0.0)
        sim.run(until=50.0)
        assert link.utilization() == pytest.approx(1.0)


class TestBoundedBuffer:
    def test_tail_drop_when_full(self, sim):
        link = Link(
            sim,
            FCFSScheduler(1),
            capacity=1.0,
            buffer_packets=2,
            drop_policy=TailDropPolicy(),
        )
        # One in service + two queued fills the buffer; the fourth drops.
        for i in range(4):
            send(sim, link, make_packet(i, size=100.0), float(i))
        sim.run(until=10.0)
        assert link.drops == 1
        assert link.drops_per_class == [1]

    def test_unbounded_buffer_never_drops(self, sim):
        link = Link(sim, FCFSScheduler(1), capacity=0.001)
        for i in range(100):
            send(sim, link, make_packet(i, size=100.0), 0.0)
        sim.run(until=1.0)
        assert link.drops == 0

    def test_default_drop_without_policy_is_tail_drop(self, sim):
        link = Link(sim, FCFSScheduler(1), capacity=1.0, buffer_packets=1)
        for i in range(3):
            send(sim, link, make_packet(i, size=100.0), float(i))
        sim.run(until=5.0)
        assert link.drops == 1

    def test_drop_policy_requires_buffer_limit(self, sim):
        with pytest.raises(ConfigurationError):
            Link(sim, FCFSScheduler(1), capacity=1.0, drop_policy=TailDropPolicy())

    def test_plr_drops_from_low_class_first(self, sim):
        """With equal arrivals, PLR pushes drops toward high-sigma class 1."""
        dropper = PLRDropper((4.0, 1.0))
        link = Link(
            sim,
            WTPScheduler((1.0, 2.0)),
            capacity=1.0,
            buffer_packets=2,
            drop_policy=dropper,
        )
        # Overload both classes equally.
        for i in range(10):
            send(sim, link, make_packet(i, class_id=i % 2, size=50.0), float(i))
        sim.run(until=20.0)
        assert link.drops > 0
        assert link.drops_per_class[0] >= link.drops_per_class[1]


class TestMonitors:
    def test_monitor_sees_every_departure(self, sim):
        events = []

        class Probe:
            def on_departure(self, packet, now):
                events.append((packet.packet_id, now))

        link = Link(sim, FCFSScheduler(1), capacity=1.0)
        link.add_monitor(Probe())
        send(sim, link, make_packet(0, size=2.0), 0.0)
        send(sim, link, make_packet(1, size=2.0), 0.0)
        sim.run()
        assert events == [(0, 2.0), (1, 4.0)]

    def test_bpr_capacity_bound_by_link(self, sim):
        from repro.schedulers import BPRScheduler

        scheduler = BPRScheduler((1.0, 2.0))
        assert scheduler.capacity is None
        Link(sim, scheduler, capacity=39.375)
        assert scheduler.capacity == 39.375

    def test_bpr_explicit_capacity_not_overridden(self, sim):
        from repro.schedulers import BPRScheduler

        scheduler = BPRScheduler((1.0, 2.0), capacity=5.0)
        Link(sim, scheduler, capacity=39.375)
        assert scheduler.capacity == 5.0
