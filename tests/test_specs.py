"""Tests for the declarative experiment specs."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.specs import load_spec, run_spec, run_spec_file


def single_hop_run(**overrides):
    run = {
        "kind": "single-hop",
        "label": "quick",
        "utilization": 0.9,
        "horizon": 5e4,
        "warmup": 2e3,
        "seed": 3,
    }
    run.update(overrides)
    return run


class TestValidation:
    def test_missing_runs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_spec({"name": "x"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            run_spec({"runs": [{"kind": "quantum-hop"}]})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            run_spec({"runs": [single_hop_run(utilisation=0.9)]})

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_spec(path)

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError):
            run_spec([1, 2, 3])  # type: ignore[arg-type]


class TestExecution:
    def test_single_hop_run(self):
        outcome = run_spec({"name": "s", "runs": [single_hop_run()]})
        assert outcome["name"] == "s"
        (result,) = outcome["results"]
        assert result["kind"] == "single-hop"
        assert len(result["mean_delays"]) == 4
        assert len(result["successive_ratios"]) == 3
        assert result["label"] == "quick"

    def test_custom_sdps_and_loads(self):
        run = single_hop_run(
            sdps=[1, 4], loads=[0.5, 0.5], scheduler="bpr"
        )
        outcome = run_spec({"runs": [run]})
        (result,) = outcome["results"]
        assert len(result["mean_delays"]) == 2
        assert result["target_ratios"] == [4.0]

    def test_multi_hop_run(self):
        run = {
            "kind": "multi-hop",
            "label": "chain",
            "hops": 2,
            "utilization": 0.8,
            "flow_packets": 5,
            "flow_rate_kbps": 200,
            "experiments": 3,
            "warmup": 1500,
            "seed": 2,
        }
        outcome = run_spec({"runs": [run]})
        (result,) = outcome["results"]
        assert result["kind"] == "multi-hop"
        assert result["experiments"] == 3
        assert 0.5 < result["rd"] < 5.0

    def test_results_are_json_serializable(self):
        outcome = run_spec({"runs": [single_hop_run()]})
        json.dumps(outcome)

    def test_run_spec_file_round_trip(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"runs": [single_hop_run()]}))
        out_path = tmp_path / "out.json"
        outcome = run_spec_file(spec_path, out_path)
        assert out_path.exists()
        assert json.loads(out_path.read_text()) == outcome
