"""Tests for the ablation harnesses and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.ablations import (
    adaptive_wtp_correction,
    additive_convergence,
    plr_demo,
    scheduler_comparison,
    sdp_ratio_sweep,
    wtp_starvation_demo,
)
from repro.experiments.reporting import format_ablation_rows, format_table


class TestAblations:
    def test_sdp_ratio_sweep_error_grows_with_spacing(self):
        rows = sdp_ratio_sweep(
            ratios=(2.0, 8.0), horizon=6e4, warmup=3e3
        )
        assert len(rows) == 2
        # Section 5: wider spacing -> larger deviations (check WTP).
        assert rows[1].values["wtp"] > rows[0].values["wtp"]

    def test_scheduler_comparison_has_all_rows(self):
        rows = scheduler_comparison(
            schedulers=("wtp", "fcfs", "strict"), horizon=5e4, warmup=2e3
        )
        labels = [r.label for r in rows]
        assert labels == ["wtp", "fcfs", "strict"]
        fcfs = next(r for r in rows if r.label == "fcfs")
        # FCFS: no differentiation, ratios ~ 1.
        assert fcfs.values["r12"] == pytest.approx(1.0, abs=0.4)

    def test_additive_convergence_rows(self):
        rows = additive_convergence(
            offsets=(0.0, 300.0), utilization=0.97, horizon=1e5, warmup=5e3
        )
        assert len(rows) == 1
        measured = rows[0].values["measured_diff"]
        assert 0.3 * 300.0 < measured <= 1.2 * 300.0

    def test_wtp_starvation_demo_all_overtake(self):
        row = wtp_starvation_demo(burst_packets=100)
        assert row.values["condition_holds"] == 1.0
        assert row.values["overtakers"] == 100.0

    def test_adaptive_wtp_correction_helps_at_moderate_load(self):
        rows = adaptive_wtp_correction(
            utilizations=(0.75,), horizon=2e5, warmup=1e4
        )
        assert len(rows) == 1
        assert rows[0].values["adaptive-wtp"] < rows[0].values["wtp"]

    def test_absolute_vs_relative_tradeoff(self):
        from repro.experiments.ablations import absolute_vs_relative

        rows = absolute_vs_relative(surge_factors=(0.8, 2.0), horizon=5e4)
        by_label = {r.label: r.values for r in rows}
        # Inside the profile: (almost) nothing lost either way.
        assert by_label["surge=0.8x"]["premium_loss"] < 0.05
        # Past it: premium keeps its delay but sheds ~half the traffic;
        # relative keeps everything and lets the delay grow.
        surged = by_label["surge=2x"]
        assert surged["premium_loss"] > 0.35
        assert surged["premium_delay"] < by_label["surge=0.8x"]["premium_delay"] * 2
        assert surged["relative_delay"] > by_label["surge=0.8x"]["relative_delay"]

    def test_quantization_sweep_rows(self):
        from repro.experiments.ablations import quantization_sweep

        rows = quantization_sweep(
            epochs_p_units=(0.1, 100.0), horizon=6e4, warmup=3e3
        )
        by_label = {r.label: r.values["worst_error"] for r in rows}
        assert by_label["epoch=100p"] > by_label["epoch=0.1p"]

    def test_plr_demo_tracks_targets(self):
        row = plr_demo(horizon=5e4)
        assert row.values["total_drops"] > 50
        measured = row.values["measured_l1/l2"]
        target = row.values["target_l1/l2"]
        assert measured == pytest.approx(target, rel=0.5)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_ablation_rows_missing_keys(self):
        from repro.experiments.ablations import AblationRow

        rows = [
            AblationRow("x", {"a": 1.0}),
            AblationRow("y", {"b": 2.0}),
        ]
        text = format_ablation_rows(rows, "demo")
        assert "demo" in text and "--" in text


class TestCLI:
    def test_figure3_quick(self, capsys):
        assert main(["figure3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "wtp" in out and "bpr" in out

    def test_figure45_quick(self, capsys):
        assert main(["figure45", "--scale", "0.05"]) == 0
        assert "microscopic" in capsys.readouterr().out

    def test_export_dir_writes_csv(self, capsys, tmp_path):
        assert main(
            ["figure3", "--scale", "0.05", "--export-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        exported = tmp_path / "figure3.csv"
        assert exported.exists()
        header = exported.read_text().splitlines()[0]
        assert header.startswith("scheduler,tau_p_units")

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure1", "--scale", "2.0"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])
