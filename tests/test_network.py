"""Tests for the multi-hop substrate: flows, demux, cross-traffic, runs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.network import (
    FlowDemux,
    FlowRecorder,
    MixedClassSource,
    MultiHopConfig,
    UserFlow,
    run_multihop,
)
from repro.network.multihop import LINK_CAPACITY_BYTES_PER_MS
from repro.schedulers import WTPScheduler
from repro.sim import Link, PacketSink, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import ConstantInterarrivals

from .conftest import make_packet


class TestUserFlow:
    def test_emits_f_packets_at_period(self, sim):
        sink = PacketSink(keep_packets=True)
        flow = UserFlow(
            sim, sink, flow_id=7, class_id=2, num_packets=4,
            packet_size=500.0, period=10.0,
        )
        flow.launch(100.0)
        sim.run()
        assert flow.finished
        times = [p.created_at for p in sink.packets]
        assert times == [100.0, 110.0, 120.0, 130.0]
        assert all(p.flow_id == 7 and p.class_id == 2 for p in sink.packets)

    def test_invalid_parameters_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            UserFlow(sim, PacketSink(), 0, 0, num_packets=0,
                     packet_size=500.0, period=1.0)
        with pytest.raises(ConfigurationError):
            UserFlow(sim, PacketSink(), 0, 0, num_packets=1,
                     packet_size=500.0, period=0.0)


class TestFlowRecorder:
    def test_records_total_queueing_delay(self):
        recorder = FlowRecorder()
        packet = make_packet(flow_id=3)
        packet.hop_delays.extend([1.0, 2.0])
        recorder.receive(packet)
        assert recorder.flow_delays(3) == [3.0]
        assert recorder.hops_seen[3] == 2

    def test_ignores_cross_traffic(self):
        recorder = FlowRecorder()
        recorder.receive(make_packet(flow_id=None))
        assert recorder.delays == {}

    def test_packet_count(self):
        recorder = FlowRecorder()
        for _ in range(3):
            packet = make_packet(flow_id=1)
            packet.hop_delays.append(0.5)
            recorder.receive(packet)
        assert recorder.packet_count(1) == 3
        assert recorder.packet_count(99) == 0


class TestFlowDemux:
    def test_routing(self):
        downstream = PacketSink(keep_packets=True)
        cross = PacketSink(keep_packets=True)
        demux = FlowDemux(downstream, cross)
        demux.receive(make_packet(0, flow_id=1))
        demux.receive(make_packet(1, flow_id=None))
        assert downstream.received == 1
        assert cross.received == 1
        assert demux.user_packets == 1
        assert demux.cross_packets == 1

    def test_default_cross_sink(self):
        demux = FlowDemux(PacketSink())
        demux.receive(make_packet(0, flow_id=None))
        assert demux.cross_packets == 1

    def test_downstream_required(self):
        with pytest.raises(TopologyError):
            FlowDemux(None)


class TestMixedClassSource:
    def test_class_mix_is_respected(self, sim):
        streams = RandomStreams(0)
        sink = PacketSink(keep_packets=True)
        source = MixedClassSource(
            sim, sink, ConstantInterarrivals(1.0),
            class_probabilities=(0.4, 0.3, 0.2, 0.1),
            packet_size=500.0, rng=streams.generator(),
        )
        source.start()
        sim.run(until=20_000.0)
        counts = [0] * 4
        for packet in sink.packets:
            counts[packet.class_id] += 1
        total = sum(counts)
        shares = [c / total for c in counts]
        assert shares == pytest.approx([0.4, 0.3, 0.2, 0.1], abs=0.02)

    def test_invalid_mix_rejected(self, sim):
        streams = RandomStreams(0)
        with pytest.raises(ConfigurationError):
            MixedClassSource(
                sim, PacketSink(), ConstantInterarrivals(1.0),
                (0.5, 0.4), 500.0, streams.generator(),
            )

    def test_start_idempotent(self, sim):
        streams = RandomStreams(0)
        sink = PacketSink()
        source = MixedClassSource(
            sim, sink, ConstantInterarrivals(1.0), (1.0,), 500.0,
            streams.generator(),
        )
        source.start()
        source.start()
        sim.run(until=5.5)
        assert sink.received == 5


class TestMultiHopConfig:
    def test_flow_period_realizes_rate(self):
        config = MultiHopConfig(flow_rate_kbps=50.0)
        # 500 B at 50 kbps -> 80 ms between packets.
        assert config.flow_period == pytest.approx(80.0)

    def test_cross_rate_fills_to_utilization(self):
        config = MultiHopConfig(utilization=0.85)
        total = (
            config.cross_byte_rate_per_source * config.cross_sources_per_hop
            + config.user_byte_rate
        )
        assert total == pytest.approx(0.85 * LINK_CAPACITY_BYTES_PER_MS)

    def test_overcommitted_user_load_rejected(self):
        config = MultiHopConfig(
            utilization=0.85, flow_packets=100000, experiment_period=10.0
        )
        with pytest.raises(ConfigurationError):
            _ = config.cross_byte_rate_per_source

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiHopConfig(hops=0)
        with pytest.raises(ConfigurationError):
            MultiHopConfig(utilization=1.2)
        with pytest.raises(ConfigurationError):
            MultiHopConfig(sdps=(1.0, 2.0))


class TestRunMultihop:
    def small_config(self, **overrides):
        defaults = dict(
            hops=2, utilization=0.80, flow_packets=5, flow_rate_kbps=200.0,
            experiments=4, warmup=2000.0, experiment_period=500.0,
            drain=3000.0, seed=2,
        )
        defaults.update(overrides)
        return MultiHopConfig(**defaults)

    def test_all_experiments_complete(self):
        result = run_multihop(self.small_config())
        assert len(result.comparisons) == 4

    def test_rd_in_plausible_band(self):
        result = run_multihop(self.small_config())
        assert 1.0 < result.rd < 4.0

    def test_flows_traverse_all_hops(self):
        """End-to-end delay must aggregate one waiting time per hop."""
        config = self.small_config(hops=3)
        sim_result = run_multihop(config)
        assert sim_result.comparisons  # flows made it through 3 hops

    def test_deterministic_given_seed(self):
        a = run_multihop(self.small_config())
        b = run_multihop(self.small_config())
        assert a.rd == pytest.approx(b.rd)

    def test_higher_class_flow_gets_lower_delays_in_heavy_load(self):
        result = run_multihop(
            self.small_config(utilization=0.95, experiments=6)
        )
        matrix = result.comparisons[0].percentile_matrix
        # Median (column 4) ordered low class worst.
        medians = matrix[:, 4]
        assert medians[0] > medians[-1]
