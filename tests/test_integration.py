"""Cross-module integration tests: the paper's central claims, end to end.

These run scaled-down versions of the paper's experiments and assert
the *shape* of the published results (who wins, direction of trends),
tying together traffic generation, the kernel, schedulers, monitors and
the analysis layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import summarize_rd
from repro.experiments import (
    MicroscopicConfig,
    SingleHopConfig,
    generate_trace,
    replay_through_scheduler,
    run_figure45,
    run_single_hop,
)
from repro.network import MultiHopConfig, run_multihop
from repro.schedulers import make_scheduler


pytestmark = pytest.mark.integration


QUICK = dict(horizon=2e5, warmup=1e4)


class TestHeadlineClaims:
    def test_wtp_converges_to_inverse_sdp_ratios_in_heavy_load(self):
        """Eq 13 at rho=0.999 on Pareto traffic: ratios within 5%."""
        result = run_single_hop(
            SingleHopConfig(scheduler="wtp", utilization=0.999, seed=4, **QUICK)
        )
        for ratio in result.successive_ratios:
            assert ratio == pytest.approx(2.0, rel=0.05)

    def test_ratio_accuracy_improves_with_load(self):
        errors = {}
        for rho in (0.72, 0.97):
            result = run_single_hop(
                SingleHopConfig(scheduler="wtp", utilization=rho, seed=4, **QUICK)
            )
            errors[rho] = max(
                abs(r - 2.0) / 2.0 for r in result.successive_ratios
            )
        assert errors[0.97] < errors[0.72]

    def test_moderate_load_undershoots_target(self):
        """Paper: at 70% utilization the ratio is ~1.5 when it should
        be 2 -- the schedulers' documented weakness."""
        result = run_single_hop(
            SingleHopConfig(scheduler="wtp", utilization=0.70, seed=4, **QUICK)
        )
        mean_ratio = float(np.mean(result.successive_ratios))
        assert 1.2 < mean_ratio < 1.8

    def test_wtp_beats_bpr_at_95_percent(self):
        """The paper's headline comparison on identical arrivals."""
        config = SingleHopConfig(utilization=0.95, seed=6, **QUICK)
        trace = generate_trace(config)
        errors = {}
        for name in ("wtp", "bpr"):
            result = replay_through_scheduler(
                trace, make_scheduler(name, config.sdps), config
            )
            errors[name] = float(
                np.mean([abs(r - 2.0) for r in result.successive_ratios])
            )
        assert errors["wtp"] < errors["bpr"]

    def test_bpr_biased_against_heavily_loaded_classes(self):
        """Figure 2's finding: when class 4 carries most load, BPR gives
        it relatively worse delays than the SDPs specify, while WTP
        stays near target."""
        from repro.traffic.mix import ClassLoadDistribution

        loads = ClassLoadDistribution((0.1, 0.1, 0.1, 0.7))
        config = SingleHopConfig(
            utilization=0.95, loads=loads, seed=8, **QUICK
        )
        trace = generate_trace(config)
        wtp = replay_through_scheduler(
            trace, make_scheduler("wtp", config.sdps), config
        )
        bpr = replay_through_scheduler(
            trace, make_scheduler("bpr", config.sdps), config
        )
        wtp_error = abs(wtp.successive_ratios[-1] - 2.0)
        bpr_error = abs(bpr.successive_ratios[-1] - 2.0)
        assert wtp_error < bpr_error

    def test_feasibility_and_conservation_at_figure_points(self):
        """Section 3's audit: the Figure 1/2 operating points are
        feasible, so deviations are scheduler inefficiency."""
        for rho in (0.75, 0.95):
            result = run_single_hop(
                SingleHopConfig(utilization=rho, seed=3, **QUICK)
            )
            assert result.feasibility_report().feasible
            assert abs(result.conservation_residual()) < 0.08


class TestShortTimescales:
    def test_wtp_interquartile_range_tighter_than_bpr_at_small_tau(self):
        """Figure 3's comparison at tau = 100 p-units."""
        from repro.units import PAPER_P_UNIT

        tau = 100.0 * PAPER_P_UNIT
        config = SingleHopConfig(
            utilization=0.95, seed=5, interval_taus=(tau,), **QUICK
        )
        trace = generate_trace(config)
        spreads = {}
        for name in ("wtp", "bpr"):
            result = replay_through_scheduler(
                trace, make_scheduler(name, config.sdps), config
            )
            summary = summarize_rd(
                result.interval_monitors[tau].interval_means()
            )
            spreads[name] = summary.p75 - summary.p25
        assert spreads["wtp"] < spreads["bpr"]

    def test_microscopic_views_show_bpr_sawtooth(self):
        views = run_figure45(MicroscopicConfig(horizon=1.5e5, warmup=1e4))
        bpr = np.nanmean(views["bpr"].sawtooth_scores())
        wtp = np.nanmean(views["wtp"].sawtooth_scores())
        assert bpr > 1.3 * wtp


class TestEndToEnd:
    @pytest.mark.slow
    def test_consistent_differentiation_across_path(self):
        """Section 6's main result, scaled down: local class-based WTP
        yields consistent end-to-end flow differentiation."""
        config = MultiHopConfig(
            hops=4, utilization=0.90, flow_packets=10, flow_rate_kbps=200.0,
            experiments=12, warmup=8000.0, experiment_period=800.0,
            drain=4000.0, seed=3,
        )
        result = run_multihop(config)
        assert len(result.comparisons) == 12
        assert result.rd == pytest.approx(2.0, rel=0.25)
        # The paper observed zero inconsistent experiments; allow a
        # small number at this reduced scale.
        assert result.inconsistent_experiments <= 2

    def test_e2e_delay_is_sum_of_per_hop_delays(self):
        from repro.network import FlowRecorder, UserFlow
        from repro.schedulers import WTPScheduler
        from repro.sim import Link, Simulator
        from repro.network.topology import FlowDemux

        sim = Simulator()
        recorder = FlowRecorder()
        second = Link(
            sim, WTPScheduler((1.0, 2.0)), capacity=1.0,
            target=FlowDemux(recorder),
        )
        first = Link(
            sim, WTPScheduler((1.0, 2.0)), capacity=1.0,
            target=FlowDemux(second),
        )
        flow = UserFlow(sim, first, flow_id=0, class_id=0, num_packets=3,
                        packet_size=2.0, period=1.0)
        flow.launch(0.0)
        sim.run()
        # Back-to-back 2-byte packets on a rate-1 link: the second
        # packet waits 1 at hop 1, then inter-departure spacing equals
        # service time so hop 2 adds no wait.
        delays = recorder.flow_delays(0)
        assert delays == pytest.approx([0.0, 1.0, 2.0])
        assert recorder.hops_seen[0] == 2
