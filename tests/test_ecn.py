"""Tests for the ECN marker and AIMD sources (the Section 3 regime)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.schedulers import WTPScheduler
from repro.sim import DelayMonitor, Link, PacketSink, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import ECNMarker, ECNSource, FixedPacketSize, PacketIdAllocator

from .conftest import make_packet


def build_link(sim, capacity=1.0, num_classes=2):
    link = Link(sim, WTPScheduler(tuple(2.0**i for i in range(num_classes))),
                capacity=capacity, target=PacketSink())
    return link


class TestECNMarker:
    def test_marks_only_when_backlogged_past_threshold(self, sim):
        link = build_link(sim)
        marker = ECNMarker(link, threshold_packets=2)
        link.add_monitor(marker)
        # Three back-to-back packets: when #0 departs, 2 remain (mark);
        # when #1 departs, 1 remains (no mark); etc.
        for i in range(3):
            sim.schedule(0.0, link.receive, make_packet(i, size=1.0, flow_id=9))
        sim.run()
        assert marker.seen == 3
        assert marker.marked == 1
        assert marker.consume_mark(9) is True
        assert marker.consume_mark(9) is False  # one signal per poll

    def test_no_marks_when_idle(self, sim):
        link = build_link(sim)
        marker = ECNMarker(link, threshold_packets=1)
        link.add_monitor(marker)
        sim.schedule(0.0, link.receive, make_packet(0, size=1.0))
        sim.schedule(10.0, link.receive, make_packet(1, size=1.0))
        sim.run()
        assert marker.marked == 0
        assert marker.mark_fraction == 0.0

    def test_threshold_validated(self, sim):
        with pytest.raises(ConfigurationError):
            ECNMarker(build_link(sim), threshold_packets=0)


class TestECNSource:
    def test_parameter_validation(self, sim):
        link = build_link(sim)
        marker = ECNMarker(link, 10)
        with pytest.raises(ConfigurationError):
            ECNSource(sim, link, marker, 0, FixedPacketSize(1.0),
                      initial_rate=2.0, min_rate=3.0, max_rate=4.0,
                      additive_increase=0.1)
        with pytest.raises(ConfigurationError):
            ECNSource(sim, link, marker, 0, FixedPacketSize(1.0),
                      initial_rate=1.0, min_rate=0.5, max_rate=2.0,
                      additive_increase=0.1, multiplicative_decrease=1.0)

    def test_uncongested_source_ramps_to_max(self, sim):
        """With a fast link and high threshold, AIMD climbs to max."""
        link = build_link(sim, capacity=100.0)
        marker = ECNMarker(link, threshold_packets=50)
        link.add_monitor(marker)
        source = ECNSource(
            sim, link, marker, class_id=0, sizes=FixedPacketSize(1.0),
            initial_rate=1.0, min_rate=0.1, max_rate=5.0,
            additive_increase=0.05, flow_id=1,
        )
        source.start()
        sim.run(until=500.0)
        assert source.rate == pytest.approx(5.0)

    def test_population_stabilizes_lossless_high_utilization(self):
        """The paper's operating regime, closed-loop: several AIMD
        sources on one WTP link settle at high utilization with bounded
        queues and zero drops."""
        sim = Simulator()
        streams = RandomStreams(4)
        link = build_link(sim, capacity=1.0, num_classes=2)
        marker = ECNMarker(link, threshold_packets=30)
        link.add_monitor(marker)
        monitor = DelayMonitor(2, warmup=2e3)
        link.add_monitor(monitor)
        ids = PacketIdAllocator()
        for flow in range(6):
            ECNSource(
                sim, link, marker,
                class_id=flow % 2,
                sizes=FixedPacketSize(1.0),
                initial_rate=0.05, min_rate=0.01, max_rate=1.0,
                additive_increase=0.004, multiplicative_decrease=0.7,
                flow_id=flow, ids=ids,
                jitter_rng=streams.generator(),
            ).start()
        sim.run(until=2e4)
        assert link.drops == 0
        utilization = link.utilization()
        assert 0.8 < utilization <= 1.0
        # Queue stays bounded near the marking threshold.
        assert link.backlog_packets < 8 * 30
        # And the scheduler still differentiates inside this regime.
        delays = monitor.mean_delays()
        assert delays[0] > delays[1]

    def test_marks_cut_rate_multiplicatively(self, sim):
        """A congested link forces the source's rate down from its cap."""
        link = build_link(sim, capacity=0.2)
        marker = ECNMarker(link, threshold_packets=3)
        link.add_monitor(marker)
        source = ECNSource(
            sim, link, marker, class_id=0, sizes=FixedPacketSize(1.0),
            initial_rate=1.0, min_rate=0.01, max_rate=1.0,
            additive_increase=0.001, flow_id=2,
        )
        source.start()
        sim.run(until=2000.0)
        assert source.rate < 1.0
        rates = [r for _, r in source.rate_history]
        assert min(rates) < 0.6  # at least one multiplicative cut bit

    def test_rate_never_leaves_bounds(self, sim):
        link = build_link(sim, capacity=0.5)
        marker = ECNMarker(link, threshold_packets=2)
        link.add_monitor(marker)
        source = ECNSource(
            sim, link, marker, class_id=0, sizes=FixedPacketSize(1.0),
            initial_rate=0.4, min_rate=0.1, max_rate=0.8,
            additive_increase=0.05, flow_id=3,
        )
        source.start()
        sim.run(until=3000.0)
        rates = np.array([r for _, r in source.rate_history])
        assert rates.min() >= 0.1 - 1e-12
        assert rates.max() <= 0.8 + 1e-12
