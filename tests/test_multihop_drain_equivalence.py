"""Chain-fused drain equivalence over multi-hop paths.

The chain-fused drain kernel (``repro.sim.link``, module docstring)
hands completed packets to downstream coupled links inline and advances
the whole path in one fused loop.  These tests pin its hard guarantee:
flow delays, per-hop link state, and calendar interleaving are
bit-identical -- no tolerances -- to the classic evented run, for every
scheduler named in the Table 1 reproduction, including

* user flows launching (and emitting) at the exact instant a chain
  drain is mid-busy-period -- the launch is a foreign calendar event
  whose key precedes the drain's next virtual event, so the drain must
  park and resume without disturbing a single timestamp;
* an :class:`InvariantChecker` attached to a *middle* hop, which must
  disable chain fusion across the whole walk (the checker's hooks see
  every event) while the entry keeps its single-link drain;
* the routed-network topology (``RouteDemux`` resolution instead of
  ``FlowDemux``), under its own ``drain`` flag;
* the ``truncated_experiments`` diagnostic surfaced by
  :func:`~repro.network.multihop.run_multihop`.
"""

from __future__ import annotations

import warnings

import pytest

from repro.invariants import InvariantChecker
from repro.network.flows import FlowRecorder, UserFlow
from repro.network.multihop import MultiHopConfig, run_multihop
from repro.network.routed import RoutedNetwork
from repro.network.topology import FlowDemux
from repro.schedulers import make_scheduler
from repro.sim import Link, PacketSink, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import (
    ArrivalCursor,
    CompiledMixedSource,
    ConstantInterarrivals,
    PacketIdAllocator,
    ParetoInterarrivals,
)

SDPS = (1.0, 2.0, 4.0, 8.0)
MIX = (0.4, 0.3, 0.2, 0.1)

#: The schedulers the Table 1 reproduction sweeps over.
CHAIN_SCHEDULERS = ("wtp", "qwtp", "fcfs", "strict", "bpr")


def link_state(link: Link) -> tuple:
    queues = link.scheduler.queues
    return (
        link.arrivals,
        link.departures,
        link.bytes_sent,
        link.busy_time,
        link.busy,
        queues.total_packets,
        tuple(queues.head_arrivals),
        tuple(queues.bytes_backlog),
    )


def build_chain(
    sim,
    scheduler_name: str,
    hops: int,
    drain: bool,
    columnar: bool | None = None,
):
    """hops x (Link -> FlowDemux) ending at a FlowRecorder, as in
    run_multihop: cross-traffic exits at each hop's demux sink."""
    recorder = FlowRecorder()
    links: list[Link] = []
    downstream = recorder
    for hop in range(hops - 1, -1, -1):
        demux = FlowDemux(downstream, PacketSink())
        link = Link(
            sim,
            make_scheduler(scheduler_name, SDPS),
            capacity=1.0,
            target=demux,
            name=f"hop{hop}",
            drain=drain,
            columnar=columnar,
        )
        links.append(link)
        downstream = link
    links.reverse()
    return links, recorder


def run_chain(
    scheduler_name: str,
    drain: bool,
    hops: int = 3,
    flow_starts: tuple[float, ...] = (40.0, 40.0 + 1.0 / 3.0, 97.625),
    checker_hop: int | None = None,
    checker_at: float | None = None,
    horizon: float = 400.0,
    seed: int = 9,
    columnar: bool | None = None,
):
    """One run; returns (sim, links, per-flow delays, per-hop state,
    checker).  Pareto cross-traffic at roughly 0.77 load per hop plus
    bursty user flows keeps every hop in long multi-packet busy periods
    so the fused loop, parking, and resumption all engage.

    ``checker_at`` delays the checker attach to a scheduled calendar
    event mid-run (``checker.capture`` records the hop's columnar
    backlog around the attach); ``None`` attaches before the run.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    ids = PacketIdAllocator()
    links, recorder = build_chain(sim, scheduler_name, hops, drain, columnar)
    cursor = ArrivalCursor(sim)
    for link in links:
        for _ in range(2):
            cursor.add(
                CompiledMixedSource(
                    link,
                    ParetoInterarrivals(2.6, 1.9, streams.generator()),
                    MIX,
                    1.0,
                    streams.generator(),
                    ids=ids,
                )
            )
    cursor.start()
    nflows = 0
    for start in flow_starts:
        for class_id in range(3, -1, -1):
            UserFlow(
                sim,
                links[0],
                flow_id=nflows,
                class_id=class_id,
                num_packets=5,
                packet_size=1.0,
                period=2.0,
                first_packet_id=1_000_000 + nflows * 1_000,
            ).launch(start)
            nflows += 1
    checker = None
    if checker_hop is not None:
        checker = InvariantChecker(links[checker_hop])
        checker.capture = {}
        if checker_at is None:
            checker.attach()
        else:
            hop_link = links[checker_hop]
            capture = checker.capture

            def attach_mid_run():
                capture["cols"] = hop_link.scheduler.queues.col_count
                capture["busy"] = hop_link.busy
                checker.attach()
                capture["cols_after"] = hop_link.scheduler.queues.col_count

            sim.schedule(checker_at, attach_mid_run)
    sim.run(until=horizon)
    delays = {
        fid: tuple(recorder.flow_delays(fid)) for fid in range(nflows)
    }
    return sim, links, delays, [link_state(link) for link in links], checker


@pytest.mark.parametrize("name", CHAIN_SCHEDULERS)
def test_chain_bit_identical_all_schedulers(name):
    sim_d, links_d, delays_d, state_d, _ = run_chain(name, drain=True)
    sim_e, _, delays_e, state_e, _ = run_chain(name, drain=False)
    assert delays_d == delays_e
    assert state_d == state_e
    assert sim_d.now == sim_e.now
    # Sanity: the drained run really did fuse the chain (the entry's
    # cached decision survived the run) and every flow delivered.
    assert links_d[0]._chain_fuse is True
    assert all(len(d) == 5 for d in delays_d.values())


@pytest.mark.parametrize("name", CHAIN_SCHEDULERS)
def test_chain_columnar_vs_object_bit_identical(name):
    """The chain-fused drain with columnar members (metas hop between
    coupled links as scalars, hop histories folded into meta tuples)
    against the same fused drain carrying real Packets: flow delays
    (sums of materialized ``hop_delays``) and per-hop state must match
    exactly."""
    sim_c, links_c, delays_c, state_c, _ = run_chain(
        name, drain=True, columnar=True
    )
    sim_o, _, delays_o, state_o, _ = run_chain(
        name, drain=True, columnar=False
    )
    assert delays_c == delays_o
    assert state_c == state_o
    assert sim_c.now == sim_o.now
    assert links_c[0]._chain_fuse is True
    assert all(len(d) == 5 for d in delays_c.values())


def test_chain_member_demoted_mid_run():
    """A checker attached to the middle hop by a calendar event landing
    mid-run: the hop's columnar backlog must be demoted to real Packets
    at the attach instant, the entry's cached chain walk must fail its
    guards and rebuild as blocked, and the rest of the run must match
    an evented run with the checker attached at the same instant."""
    sim_c, links_c, delays_c, state_c, checker_c = run_chain(
        "wtp", drain=True, columnar=True, checker_hop=1, checker_at=200.0
    )
    sim_e, _, delays_e, state_e, checker_e = run_chain(
        "wtp", drain=False, checker_hop=1, checker_at=200.0
    )
    assert delays_c == delays_e
    assert state_c == state_e
    # The demotion boundary was genuinely crossed: the member held
    # object-free columnar backlog when the checker appeared, and the
    # attach demoted all of it in place.
    assert checker_c.capture["cols"] > 0
    assert checker_c.capture["cols_after"] == 0
    assert checker_e.capture["cols"] == 0
    # The entry saw the hooked member and disabled fusion for the rest
    # of the run.
    assert links_c[0]._chain_fuse is False
    report_c = checker_c.finalize()
    report_e = checker_e.finalize()
    assert report_c.departures == report_e.departures > 0
    assert report_c.busy_periods == report_e.busy_periods


def test_flow_launch_at_exact_drain_instant():
    """Deterministic CBR cross-traffic: arrivals on a 1.25 ms grid, so
    flows launched at grid instants land exactly on cursor arrivals
    (and, with unit service, on departure timestamps) while a chain
    drain is mid-busy-period.  The drain must park on the equal-or-
    preceding foreign key and resume bit-identically."""

    def run(drain: bool):
        sim = Simulator()
        ids = PacketIdAllocator()
        links, recorder = build_chain(sim, "wtp", hops=2, drain=drain)
        cursor = ArrivalCursor(sim)
        for link in links:
            for offset in (0.0, 0.6):
                cursor.add(
                    CompiledMixedSource(
                        link,
                        ConstantInterarrivals(1.25),
                        MIX,
                        1.0,
                        RandomStreams(3).generator(),
                        ids=ids,
                        start_time=offset,
                    )
                )
        cursor.start()
        # 5.0 and 10.0 are cursor-arrival instants (4 x 1.25, 8 x 1.25)
        # inside busy periods; 6.0 additionally collides with a unit-
        # service departure timestamp.  Flow periods then re-collide
        # every 2.5 ms.
        nflows = 0
        for start in (5.0, 6.0, 10.0):
            for class_id in (3, 1):
                UserFlow(
                    sim,
                    links[0],
                    flow_id=nflows,
                    class_id=class_id,
                    num_packets=4,
                    packet_size=1.0,
                    period=2.5,
                    first_packet_id=2_000_000 + nflows * 1_000,
                ).launch(start)
                nflows += 1
        sim.run(until=120.0)
        delays = {
            fid: tuple(recorder.flow_delays(fid)) for fid in range(nflows)
        }
        return sim, delays, [link_state(link) for link in links]

    sim_d, delays_d, state_d = run(True)
    sim_e, delays_e, state_e = run(False)
    assert delays_d == delays_e
    assert state_d == state_e
    assert all(delays_d.values())


def test_checker_mid_chain_disables_fusion_only():
    """A checker attached to the middle hop must force the entry's walk
    to report blocked (its hooks would be bypassed by a fused drain)
    without breaking equivalence -- the entry falls back to single-link
    drains, which hand off through plain ``receive``."""
    sim_d, links_d, delays_d, state_d, checker_d = run_chain(
        "wtp", drain=True, checker_hop=1
    )
    sim_e, _, delays_e, state_e, checker_e = run_chain(
        "wtp", drain=False, checker_hop=1
    )
    assert delays_d == delays_e
    assert state_d == state_e
    # The entry built a chain, saw the checked member, and disabled
    # fusion for the whole walk.
    assert links_d[0]._chain_cache is not None
    assert links_d[0]._chain_cache.blocked is True
    assert links_d[0]._chain_fuse is False
    # The checker verified every event on its hop in both runs.
    report_d = checker_d.finalize()
    report_e = checker_e.finalize()
    assert report_d.departures == report_e.departures > 0
    assert report_d.busy_periods == report_e.busy_periods


def test_chain_fusion_collapses_calendar_events():
    """The fused drain's reason to exist: one resumption event per
    still-busy link instead of one calendar event per departure."""
    sim_d, *_ = run_chain("wtp", drain=True)
    sim_e, *_ = run_chain("wtp", drain=False)
    assert sim_d.events_processed < sim_e.events_processed / 2


def test_routed_network_drain_flag_parity():
    """RoutedNetwork's drain flag: chain-drained routed paths (RouteDemux
    resolution, not FlowDemux) must match the evented run exactly."""

    def run(drain: bool):
        sim = Simulator()
        ids = PacketIdAllocator()
        net = RoutedNetwork(sim, drain=drain)
        for node in "ABCD":
            net.add_node(node)
        edges = [("A", "B"), ("B", "C"), ("C", "D")]
        for src, dst in edges:
            net.add_link(src, dst, make_scheduler("wtp", SDPS), capacity=1.0)
        recorder = FlowRecorder()
        net.add_route(7, ["A", "B", "C", "D"], terminal=recorder)
        cursor = ArrivalCursor(sim)
        for src, dst in edges:
            cursor.add(
                CompiledMixedSource(
                    net.edge_link(src, dst),
                    ParetoInterarrivals(1.3, 1.9, RandomStreams(4).generator()),
                    MIX,
                    1.0,
                    RandomStreams(5).generator(),
                    ids=ids,
                )
            )
        cursor.start()
        UserFlow(
            sim,
            net.ingress(7),
            flow_id=7,
            class_id=2,
            num_packets=20,
            packet_size=1.0,
            period=3.0,
            first_packet_id=3_000_000,
        ).launch(25.0)
        sim.run(until=300.0)
        states = [link_state(net.edge_link(s, d)) for s, d in edges]
        return sim, tuple(recorder.flow_delays(7)), states

    sim_d, delays_d, state_d = run(True)
    sim_e, delays_e, state_e = run(False)
    assert delays_d == delays_e
    assert state_d == state_e
    assert len(delays_d) == 20
    assert sim_d.events_processed < sim_e.events_processed


def test_truncated_experiments_surfaced_and_warned():
    """A too-short drain settle window must be reported, not silently
    folded into the Table 1 aggregates.  The horizon always covers the
    last experiment's full emission window plus one experiment period,
    so a deliberately negative ``drain`` is the deterministic way to
    leave the final flows' packets in flight at the cutoff."""
    config = MultiHopConfig(
        hops=2,
        utilization=0.9,
        experiments=3,
        warmup=300.0,
        experiment_period=150.0,
        drain=-229.9,
        seed=3,
    )
    with pytest.warns(RuntimeWarning, match="truncated"):
        result = run_multihop(config)
    assert result.truncated_experiments >= 1
    assert (
        len(result.comparisons)
        == config.experiments - result.truncated_experiments
    )


def test_multihop_smoke_cell_drained_vs_evented():
    """End-to-end: the benchmark's own smoke cell, drained vs evented,
    compared field-for-field (delay percentiles are float arrays --
    equality must be exact)."""
    import dataclasses

    import numpy as np

    base = dict(
        hops=3,
        utilization=0.8,
        experiments=2,
        warmup=500.0,
        experiment_period=300.0,
        drain=600.0,
        seed=7,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        drained = run_multihop(MultiHopConfig(**base))
        evented = run_multihop(MultiHopConfig(**base, drain_kernel=False))
        scalar = run_multihop(MultiHopConfig(**base), compiled_arrivals=False)
    assert drained.hop_departures == evented.hop_departures
    assert drained.hop_departures == scalar.hop_departures
    assert drained.truncated_experiments == evented.truncated_experiments
    for lhs, rhs in ((drained, evented), (drained, scalar)):
        assert len(lhs.comparisons) == len(rhs.comparisons) > 0
        for c1, c2 in zip(lhs.comparisons, rhs.comparisons):
            for field in dataclasses.fields(c1):
                v1 = getattr(c1, field.name)
                v2 = getattr(c2, field.name)
                if isinstance(v1, np.ndarray):
                    assert v1.shape == v2.shape
                    assert (v1 == v2).all()
                else:
                    assert v1 == v2
