"""Tests for the fluid BPR tracker and the d(lambda) curve estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DelayCurve, estimate_delay_curve, thin_trace
from repro.core.conservation import fcfs_mean_delay
from repro.errors import ConfigurationError
from repro.schedulers import FluidBPRTracker
from repro.theory import ServiceDistribution, mg1_mean_wait
from repro.traffic import PoissonInterarrivals, FixedPacketSize
from repro.traffic.trace import build_class_trace


class TestFluidBPRTracker:
    def test_simultaneous_clearing_with_arrivals(self):
        """Proposition 1 survives mid-busy-period arrivals: queues that
        are backlogged always empty together."""
        tracker = FluidBPRTracker((1.0, 2.0), capacity=10.0)
        tracker.add_fluid(0, 100.0)
        tracker.add_fluid(1, 40.0)
        tracker.advance(5.0)  # drains 50 of 140
        assert all(q > 0 for q in tracker.backlogs)
        tracker.add_fluid(1, 60.0)  # burst into the high class
        clearing = tracker.clearing_time()
        assert clearing == pytest.approx(5.0 + (140.0 - 50.0 + 60.0) / 10.0)
        tracker.advance(clearing)
        assert tracker.empty

    def test_total_drain_rate_is_capacity(self):
        tracker = FluidBPRTracker((1.0, 4.0), capacity=8.0)
        tracker.add_fluid(0, 40.0)
        tracker.add_fluid(1, 40.0)
        tracker.advance(3.0)
        assert sum(tracker.backlogs) == pytest.approx(80.0 - 24.0, rel=1e-6)

    def test_higher_class_drains_proportionally_faster(self):
        tracker = FluidBPRTracker((1.0, 4.0), capacity=8.0)
        tracker.add_fluid(0, 40.0)
        tracker.add_fluid(1, 40.0)
        tracker.advance(3.0)
        assert tracker.backlogs[1] < tracker.backlogs[0]

    def test_idle_advance_is_noop(self):
        tracker = FluidBPRTracker((1.0, 2.0), capacity=1.0)
        tracker.advance(100.0)
        assert tracker.now == 100.0
        assert tracker.empty

    def test_backward_advance_rejected(self):
        tracker = FluidBPRTracker((1.0, 2.0), capacity=1.0)
        tracker.advance(10.0)
        with pytest.raises(ConfigurationError):
            tracker.advance(5.0)

    def test_negative_fluid_rejected(self):
        tracker = FluidBPRTracker((1.0, 2.0), capacity=1.0)
        with pytest.raises(ConfigurationError):
            tracker.add_fluid(0, -1.0)


class TestThinTrace:
    def test_thinning_preserves_order_and_rate(self, rng):
        trace = build_class_trace(
            0, PoissonInterarrivals(1.0, rng), FixedPacketSize(1.0), 5e4
        )
        thinned = thin_trace(trace, 0.5, rng)
        assert np.all(np.diff(thinned.times) >= 0)
        assert len(thinned) == pytest.approx(0.5 * len(trace), rel=0.05)

    def test_keep_all_returns_same_object(self, rng):
        trace = build_class_trace(
            0, PoissonInterarrivals(1.0, rng), FixedPacketSize(1.0), 100.0
        )
        assert thin_trace(trace, 1.0, rng) is trace

    def test_invalid_probability_rejected(self, rng):
        trace = build_class_trace(
            0, PoissonInterarrivals(1.0, rng), FixedPacketSize(1.0), 100.0
        )
        with pytest.raises(ConfigurationError):
            thin_trace(trace, 0.0, rng)


class TestDelayCurve:
    def test_interpolation_and_extrapolation(self):
        curve = DelayCurve((1.0, 2.0, 3.0), (10.0, 20.0, 40.0))
        assert curve(1.5) == pytest.approx(15.0)
        assert curve(2.0) == pytest.approx(20.0)
        assert curve(3.5) == pytest.approx(50.0)   # slope 20 past the end
        assert curve(0.5) == pytest.approx(5.0)    # slope 10 before start
        assert curve(-10.0) == 0.0                 # clamped at zero

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DelayCurve((1.0,), (2.0,))
        with pytest.raises(ConfigurationError):
            DelayCurve((2.0, 1.0), (1.0, 2.0))

    def test_estimated_curve_is_increasing_in_rate(self, rng):
        """Poisson thinning of Poisson stays Poisson: the estimated
        curve must rise with rate and roughly track M/D/1."""
        trace = build_class_trace(
            0, PoissonInterarrivals(1.0 / 0.9, rng), FixedPacketSize(1.0),
            2e5,
        )
        curve = estimate_delay_curve(
            trace, capacity=1.0, fractions=(0.5, 0.7, 0.9, 1.0), warmup=1e3
        )
        assert all(
            b > a for a, b in zip(curve.delays, curve.delays[1:])
        )
        service = ServiceDistribution.deterministic(1.0)
        for rate, measured in zip(curve.rates, curve.delays):
            expected = mg1_mean_wait(rate, service)
            assert measured == pytest.approx(expected, rel=0.25)

    def test_curve_feeds_feasibility_workflow(self, rng):
        """End-to-end operator workflow: curve -> Eq 6 -> Eq 7."""
        from repro.core import (
            check_proportional_feasibility,
            ddps_from_sdps,
        )

        traces = [
            build_class_trace(
                cid, PoissonInterarrivals(4.0 / 0.85, rng),
                FixedPacketSize(1.0), 2e5,
            )
            for cid in range(4)
        ]
        from repro.traffic.trace import merge_traces

        trace = merge_traces(traces)
        curve = estimate_delay_curve(trace, capacity=1.0, warmup=1e3)
        rates = trace.class_rates()

        def subset_delay(subset):
            return curve(sum(rates[i] for i in subset))

        report = check_proportional_feasibility(
            ddps_from_sdps((1.0, 2.0, 4.0, 8.0)), rates, subset_delay,
            relative_tolerance=0.05,
        )
        assert report.feasible

    def test_estimate_rejects_bad_fractions(self, rng):
        trace = build_class_trace(
            0, PoissonInterarrivals(1.0, rng), FixedPacketSize(1.0), 1e3
        )
        with pytest.raises(ConfigurationError):
            estimate_delay_curve(trace, 1.0, fractions=(0.5, 0.5))
        with pytest.raises(ConfigurationError):
            estimate_delay_curve(trace, 1.0, fractions=(0.5, 1.5))
