"""Tests for the export helpers and unit conversions."""

from __future__ import annotations

import csv
import json
import math

import numpy as np
import pytest

from repro.core.metrics import PercentileSummary
from repro.experiments.export import (
    figure1_to_csv,
    figure2_to_csv,
    figure3_to_csv,
    figure45_to_json,
    table1_to_csv,
)
from repro.experiments.figure1 import FigureOnePoint
from repro.experiments.figure2 import FigureTwoPoint
from repro.experiments.figure3 import FigureThreeBox
from repro.experiments.figure45 import MicroscopicViews
from repro.experiments.table1 import TableOneCell
from repro.network.multihop import MultiHopConfig, MultiHopResult
from repro.traffic.mix import PAPER_DEFAULT_LOADS
from repro.units import (
    PAPER_LINK_CAPACITY,
    PAPER_MEAN_PACKET_BYTES,
    PAPER_P_UNIT,
    bits_per_second_to_bytes_per_unit,
    p_units_to_time,
    time_to_p_units,
    transmission_time,
)


class TestUnits:
    def test_p_unit_round_trip(self):
        assert time_to_p_units(p_units_to_time(7.0)) == pytest.approx(7.0)

    def test_paper_constants(self):
        assert PAPER_MEAN_PACKET_BYTES == pytest.approx(441.0)
        assert PAPER_LINK_CAPACITY == pytest.approx(39.375)
        assert PAPER_P_UNIT == pytest.approx(11.2)

    def test_bits_per_second_conversion(self):
        # 25 Mbps with 1 ms time units -> 3125 bytes/ms.
        assert bits_per_second_to_bytes_per_unit(25e6, 1e-3) == pytest.approx(3125.0)

    def test_transmission_time(self):
        assert transmission_time(441.0, PAPER_LINK_CAPACITY) == pytest.approx(11.2)

    def test_transmission_time_invalid_capacity(self):
        with pytest.raises(ValueError):
            transmission_time(100.0, 0.0)


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestExports:
    def test_figure1_csv(self, tmp_path):
        points = [
            FigureOnePoint("wtp", 0.95, [1.9, 1.8, 1.85], [2.0, 2.0, 2.0], True)
        ]
        path = figure1_to_csv(points, tmp_path / "f1.csv")
        rows = read_csv(path)
        assert rows[0][0] == "scheduler"
        assert len(rows) == 4  # header + 3 pairs
        assert rows[1][:2] == ["wtp", "0.95"]

    def test_figure2_csv(self, tmp_path):
        points = [
            FigureTwoPoint("bpr", PAPER_DEFAULT_LOADS, [1.5, 1.6, 1.4],
                           [2.0, 2.0, 2.0], True)
        ]
        path = figure2_to_csv(points, tmp_path / "f2.csv")
        rows = read_csv(path)
        assert rows[1][1] == "40/30/20/10"

    def test_figure3_csv(self, tmp_path):
        summary = PercentileSummary(1.0, 1.5, 2.0, 2.5, 3.0, 42)
        boxes = [FigureThreeBox("wtp", 100.0, summary)]
        path = figure3_to_csv(boxes, tmp_path / "f3.csv")
        rows = read_csv(path)
        assert rows[1] == ["wtp", "100.0", "1.0", "1.5", "2.0", "2.5",
                           "3.0", "42"]

    def test_figure45_json_handles_nan(self, tmp_path):
        views = {
            "bpr": MicroscopicViews(
                scheduler="bpr",
                interval_means=np.array([[1.0, math.nan]]),
                packet_samples=[[(1.0, 2.0)], []],
            )
        }
        path = figure45_to_json(views, tmp_path / "f45.json")
        payload = json.loads(path.read_text())
        assert payload["bpr"]["interval_means"][0] == [1.0, None]
        assert payload["bpr"]["packet_samples"][0] == [[1.0, 2.0]]
        assert payload["bpr"]["sawtooth_scores"][1] is None

    def test_table1_csv(self, tmp_path):
        result = MultiHopResult(config=MultiHopConfig())
        cells = [TableOneCell(4, 0.85, 10, 50.0, result)]
        path = table1_to_csv(cells, tmp_path / "t1.csv")
        rows = read_csv(path)
        assert rows[1][0] == "4"
        assert rows[1][6] == "0"  # no experiments recorded
