"""Tests for DDPs, Eq 6 dynamics, and the additive model."""

from __future__ import annotations

import pytest

from repro.core import (
    DelayDifferentiationParameters,
    ProportionalDelayModel,
    ddps_from_sdps,
    sdps_from_ddps,
)
from repro.core.model import AdditiveDelayModel
from repro.errors import ConfigurationError


def ddps(*deltas: float) -> DelayDifferentiationParameters:
    return DelayDifferentiationParameters(tuple(deltas))


class TestDDPValidation:
    def test_strictly_decreasing_required(self):
        with pytest.raises(ConfigurationError):
            ddps(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            ddps(1.0, 2.0)

    def test_positive_required(self):
        with pytest.raises(ConfigurationError):
            ddps(1.0, 0.0)

    def test_at_least_two_classes(self):
        with pytest.raises(ConfigurationError):
            DelayDifferentiationParameters((1.0,))

    def test_ratio_and_successive_ratios(self):
        params = ddps(8.0, 4.0, 2.0, 1.0)
        assert params.ratio(0, 3) == pytest.approx(8.0)
        assert params.successive_ratios() == pytest.approx([2.0, 2.0, 2.0])

    def test_normalized_sets_last_to_one(self):
        params = ddps(8.0, 4.0, 2.0).normalized()
        assert params.deltas == pytest.approx((4.0, 2.0, 1.0))


class TestSdpDdpDuality:
    def test_round_trip(self):
        sdps = (1.0, 2.0, 4.0, 8.0)
        back = sdps_from_ddps(ddps_from_sdps(sdps))
        assert back == pytest.approx(sdps)

    def test_inverse_ratio_relation(self):
        """Eq 13: delta_i / delta_j == s_j / s_i."""
        sdps = (1.0, 3.0, 9.0)
        params = ddps_from_sdps(sdps)
        for i in range(3):
            for j in range(3):
                assert params.ratio(i, j) == pytest.approx(sdps[j] / sdps[i])

    def test_invalid_sdps_rejected(self):
        with pytest.raises(ConfigurationError):
            ddps_from_sdps((2.0, 1.0))


class TestEq6Dynamics:
    """The four 'dynamics' properties of Section 3, as executable checks."""

    model = ProportionalDelayModel(
        DelayDifferentiationParameters((4.0, 2.0, 1.0))
    )

    def test_eq6_closed_form(self):
        rates = [2.0, 1.0, 1.0]
        d_agg = 10.0
        delays = self.model.class_delays(rates, d_agg)
        # Eq 6: d_i = delta_i * lambda * d(lambda) / sum_j delta_j lambda_j
        weight = 4.0 * 2.0 + 2.0 * 1.0 + 1.0 * 1.0  # = 11
        scale = sum(rates) * d_agg / weight           # = 40 / 11
        assert delays == pytest.approx([4.0 * scale, 2.0 * scale, 1.0 * scale])

    def test_ratios_match_ddps_for_any_rates(self):
        delays = self.model.class_delays([5.0, 0.1, 2.0], 3.0)
        assert delays[0] / delays[1] == pytest.approx(2.0)
        assert delays[1] / delays[2] == pytest.approx(2.0)

    def test_conservation_law_satisfied(self):
        rates = [2.0, 1.0, 0.5]
        d_agg = 7.0
        delays = self.model.class_delays(rates, d_agg)
        assert sum(r * d for r, d in zip(rates, delays)) == pytest.approx(
            sum(rates) * d_agg
        )

    def test_property3_raising_a_ddp_raises_own_delay_lowers_others(self):
        """Increasing delta_1 (keeping d(lambda) fixed) increases d_1
        and decreases every other class's delay."""
        rates = [1.0, 1.0, 1.0]
        base = self.model.class_delays(rates, 10.0)
        bumped_model = ProportionalDelayModel(
            DelayDifferentiationParameters((6.0, 2.0, 1.0))
        )
        bumped = bumped_model.class_delays(rates, 10.0)
        assert bumped[0] > base[0]
        assert bumped[1] < base[1]
        assert bumped[2] < base[2]

    def test_property4_shift_low_to_high_raises_all_delays(self):
        """Moving load from class 1 to class 3 (i < j in paper indexing
        means our from_class < to_class... the paper: shifting toward a
        *higher* class raises every class's delay, Eq 6 denominator
        shrinks because delta_3 < delta_1)."""
        rates = [2.0, 1.0, 1.0]
        before, after = self.model.delays_after_rate_shift(
            rates, 10.0, 10.0, from_class=0, to_class=2, fraction=0.5
        )
        assert all(b < a for b, a in zip(before, after))

    def test_property4_shift_high_to_low_lowers_all_delays(self):
        rates = [2.0, 1.0, 1.0]
        before, after = self.model.delays_after_rate_shift(
            rates, 10.0, 10.0, from_class=2, to_class=0, fraction=0.5
        )
        assert all(b > a for b, a in zip(before, after))

    def test_rate_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            self.model.class_delays([1.0], 1.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            self.model.delays_after_rate_shift(
                [1.0, 1.0, 1.0], 1.0, 1.0, 0, 1, 1.5
            )


class TestAdditiveModel:
    def test_spacing(self):
        model = AdditiveDelayModel((0.0, 5.0, 15.0))
        assert model.spacing(0, 1) == 5.0
        assert model.spacing(0, 2) == 15.0

    def test_class_delays_satisfy_conservation_and_spacing(self):
        model = AdditiveDelayModel((0.0, 5.0, 15.0))
        rates = [1.0, 2.0, 1.0]
        d_agg = 30.0
        delays = model.class_delays(rates, d_agg)
        assert delays[0] - delays[1] == pytest.approx(5.0)
        assert delays[0] - delays[2] == pytest.approx(15.0)
        assert sum(r * d for r, d in zip(rates, delays)) == pytest.approx(
            sum(rates) * d_agg
        )

    def test_non_increasing_offsets_rejected(self):
        with pytest.raises(ConfigurationError):
            AdditiveDelayModel((5.0, 5.0))
