"""Property-based tests for the simulation kernel and queues."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.queues import ClassQueueSet

from .conftest import make_packet

pytestmark = pytest.mark.property


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule(t, fired.append, t)
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=30),
        st.sets(st.integers(min_value=0, max_value=29)),
    )
    @settings(max_examples=100, deadline=None)
    def test_cancelled_events_never_fire(self, times, cancel_indices):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule_cancellable(t, fired.append, i)
            for i, t in enumerate(times)
        ]
        for index in cancel_indices:
            if index < len(handles):
                handles[index].cancel()
        sim.run()
        surviving = {
            i for i in range(len(times))
            if i not in cancel_indices or i >= len(handles)
        }
        assert set(fired) == {i for i in surviving if i < len(times)}

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30),
           st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_run_until_is_exhaustive_and_exact(self, times, until):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule(t, fired.append, t)
        sim.run(until=until)
        assert all(t <= until for t in fired)
        assert sorted(fired) == sorted(t for t in times if t <= until)
        assert sim.now == until


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # class
                st.floats(min_value=1.0, max_value=1500.0),  # size
            ),
            max_size=100,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_byte_and_packet_accounting_invariants(self, arrivals):
        queues = ClassQueueSet(4)
        pushed_bytes = [0.0] * 4
        pushed_counts = [0] * 4
        for i, (cid, size) in enumerate(arrivals):
            queues.push(make_packet(i, class_id=cid, size=size))
            pushed_bytes[cid] += size
            pushed_counts[cid] += 1
        for cid in range(4):
            assert queues.backlog_packets(cid) == pushed_counts[cid]
            assert queues.backlog_bytes(cid) == pushed_bytes[cid]
        assert queues.total_packets == sum(pushed_counts)
        # Drain everything; totals must return exactly to zero.
        for cid in range(4):
            while queues.backlog_packets(cid):
                queues.pop(cid)
        assert queues.total_packets == 0
        assert queues.total_bytes == 0.0
        assert queues.is_empty()

    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_fifo_order_within_every_class(self, class_sequence):
        queues = ClassQueueSet(3)
        for i, cid in enumerate(class_sequence):
            queues.push(make_packet(i, class_id=cid))
        for cid in range(3):
            popped = []
            while queues.backlog_packets(cid):
                popped.append(queues.pop(cid).packet_id)
            expected = [
                i for i, c in enumerate(class_sequence) if c == cid
            ]
            assert popped == expected
