"""Property-based tests on the model layer (Eq 5/6/7, FCFS, metrics)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    DelayDifferentiationParameters,
    ProportionalDelayModel,
    check_feasibility,
    interval_rd,
)
from repro.core.conservation import fcfs_waiting_times
from repro.theory import ServiceDistribution, mg1_mean_wait, tdp_waits

pytestmark = pytest.mark.property

positive = st.floats(min_value=1e-3, max_value=1e3)


def ddp_strategy(num_classes: int):
    """Strictly decreasing positive delta vectors via ratio products."""
    return st.lists(
        st.floats(min_value=1.1, max_value=8.0),
        min_size=num_classes - 1,
        max_size=num_classes - 1,
    ).map(
        lambda ratios: DelayDifferentiationParameters(
            tuple(
                float(np.prod(ratios[i:])) for i in range(len(ratios))
            )
            + (1.0,)
        )
    )


class TestEq6Properties:
    @given(
        ddp_strategy(4),
        st.lists(positive, min_size=4, max_size=4),
        positive,
    )
    @settings(max_examples=200, deadline=None)
    def test_eq6_always_satisfies_both_constraint_sets(self, ddps, rates, d_agg):
        """Eq 6 delays always honour the DDP ratios AND Eq 5."""
        model = ProportionalDelayModel(ddps)
        delays = model.class_delays(rates, d_agg)
        for i in range(4):
            for j in range(4):
                assert math.isclose(
                    delays[i] / delays[j], ddps.ratio(i, j), rel_tol=1e-9
                )
        lhs = sum(r * d for r, d in zip(rates, delays))
        rhs = sum(rates) * d_agg
        assert math.isclose(lhs, rhs, rel_tol=1e-9)

    @given(ddp_strategy(4), st.lists(positive, min_size=4, max_size=4), positive)
    @settings(max_examples=200, deadline=None)
    def test_delays_ordered_like_ddps(self, ddps, rates, d_agg):
        delays = ProportionalDelayModel(ddps).class_delays(rates, d_agg)
        assert all(a > b for a, b in zip(delays, delays[1:]))


class TestLindleyProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),  # gap to next
                st.floats(min_value=0.1, max_value=20.0),  # size
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_waits_nonnegative_and_bounded_by_backlog(self, gaps_sizes):
        times = np.cumsum([g for g, _ in gaps_sizes])
        sizes = np.array([s for _, s in gaps_sizes])
        waits = fcfs_waiting_times(times, sizes, capacity=1.0)
        assert np.all(waits >= 0)
        # A packet can never wait longer than all prior service combined.
        for k in range(len(waits)):
            assert waits[k] <= sizes[:k].sum() + 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=5.0),
                 min_size=2, max_size=100)
    )
    @settings(max_examples=150, deadline=None)
    def test_scaling_invariance(self, gaps):
        """Scaling times AND sizes by c scales waits by c."""
        times = np.cumsum(gaps)
        sizes = np.ones(len(gaps))
        base = fcfs_waiting_times(times, sizes, 1.0)
        scaled = fcfs_waiting_times(times * 3.0, sizes * 3.0, 1.0)
        assert np.allclose(scaled, base * 3.0)


class TestFeasibilityProperties:
    service = ServiceDistribution.exponential(1.0)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=0.2),
                 min_size=3, max_size=3),
        st.lists(st.floats(min_value=1.1, max_value=4.0),
                 min_size=2, max_size=2),
    )
    @settings(max_examples=100, deadline=None)
    def test_tdp_outcomes_always_feasible(self, rates, ratios):
        """Whatever waits Kleinrock's TDP discipline produces must
        satisfy Eq 7 -- it is a realizable work-conserving scheduler."""
        assume(sum(rates) * self.service.mean < 0.95)
        sdps = [1.0, ratios[0], ratios[0] * ratios[1]]
        delays = tdp_waits(rates, sdps, self.service)

        def subset_delay(subset):
            return mg1_mean_wait(
                sum(rates[i] for i in subset), self.service
            )

        report = check_feasibility(
            rates, delays, subset_delay, relative_tolerance=1e-7
        )
        assert report.feasible
        assert abs(report.conservation_residual) < 1e-7


class TestMetricProperties:
    @given(
        st.lists(
            st.one_of(
                st.floats(min_value=0.1, max_value=1e4), st.just(math.nan)
            ),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_interval_rd_defined_iff_two_active(self, means):
        active = [m for m in means if not math.isnan(m)]
        value = interval_rd(means)
        if len(active) < 2:
            assert value is None
        else:
            assert value is not None and value > 0

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0),
                 min_size=2, max_size=6),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_interval_rd_scale_invariant(self, means, scale):
        base = interval_rd(means)
        scaled = interval_rd([m * scale for m in means])
        assert math.isclose(base, scaled, rel_tol=1e-9)

    @given(st.floats(min_value=1.01, max_value=8.0),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_interval_rd_exact_on_geometric_profiles(self, ratio, n):
        means = [ratio ** (n - 1 - i) for i in range(n)]
        assert math.isclose(interval_rd(means), ratio, rel_tol=1e-9)
