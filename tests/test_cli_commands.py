"""CLI end-to-end smoke tests (tiny scales) and EventHandle units."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.sim.events import EventHandle


class TestEventHandle:
    def test_ordering_by_time_then_seq(self):
        early = EventHandle(1.0, 5, lambda: None)
        late = EventHandle(2.0, 1, lambda: None)
        tie_a = EventHandle(1.0, 1, lambda: None)
        assert tie_a < early < late

    def test_cancel_clears_payload(self):
        handle = EventHandle(1.0, 0, print, payload="x")
        handle.cancel()
        assert handle.cancelled
        assert handle.payload is None


class TestCLISmoke:
    def test_figure1_tiny(self, capsys):
        assert main(["figure1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out and "Figure 1b" in out
        assert "0.999" in out  # the full utilization grid ran
        assert out.count("wtp") >= 14  # 7 rhos x 2 SDP sets

    def test_figure2_tiny(self, capsys):
        assert main(["figure2", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2a" in out and "Figure 2b" in out
        assert "40/30/20/10" in out

    def test_help_lists_all_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for name in ("figure1", "figure2", "figure3", "figure45", "table1",
                     "ablations", "selfcheck", "all"):
            assert name in out
