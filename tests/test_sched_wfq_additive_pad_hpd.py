"""Tests for SCFQ, additive, PAD and HPD schedulers + the registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.schedulers import (
    AdditiveDelayScheduler,
    HPDScheduler,
    PADScheduler,
    SCFQScheduler,
    WFQScheduler,
    available_schedulers,
    make_scheduler,
)
from repro.sim import Link, PacketSink, Simulator

from .conftest import make_packet, run_poisson_link


class TestSCFQ:
    def test_weights_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SCFQScheduler((1.0, 0.0))

    def test_wfq_alias(self):
        assert WFQScheduler is SCFQScheduler

    def test_equal_weights_interleave(self):
        """With equal weights and equal sizes the two classes alternate."""
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        link = Link(sim, SCFQScheduler((1.0, 1.0)), capacity=1.0, target=sink)
        for i in range(4):
            sim.schedule(0.0, link.receive, make_packet(i, class_id=0, size=1.0))
        for i in range(4):
            sim.schedule(0.0, link.receive, make_packet(10 + i, class_id=1, size=1.0))
        sim.run()
        classes = [p.class_id for p in sink.packets]
        # After the first (arrival-order) packet, service alternates.
        assert classes.count(0) == classes.count(1) == 4
        switches = sum(1 for a, b in zip(classes, classes[1:]) if a != b)
        assert switches >= 5

    def test_bandwidth_shares_follow_weights(self):
        """Persistent backlogs split the link ~1:3 with weights (1, 3)."""
        sim = Simulator()
        sink = PacketSink(keep_packets=True)
        link = Link(sim, SCFQScheduler((1.0, 3.0)), capacity=1.0, target=sink)
        for i in range(200):
            sim.schedule(0.0, link.receive, make_packet(i, class_id=0, size=1.0))
            sim.schedule(0.0, link.receive, make_packet(1000 + i, class_id=1, size=1.0))
        sim.run(until=100.0)
        served = [0, 0]
        for packet in sink.packets:
            served[packet.class_id] += 1
        assert served[1] / served[0] == pytest.approx(3.0, rel=0.15)

    def test_capacity_differentiation_delay_not_controllable(self):
        """Section 2.1's claim: with fixed weights, the *delay* ratio
        moves when the class load split moves (unlike WTP)."""
        ratios = []
        for split in ((0.5, 0.5), (0.8, 0.2)):
            rates = [0.9 * split[0], 0.9 * split[1]]
            delays, _ = run_poisson_link(
                SCFQScheduler((1.0, 2.0)), rates, horizon=1e5, seed=3
            )
            ratios.append(delays[0] / delays[1])
        assert abs(ratios[0] - ratios[1]) / ratios[0] > 0.5


class TestAdditive:
    def test_offsets_validation(self):
        with pytest.raises(ConfigurationError):
            AdditiveDelayScheduler((1.0, 1.0))
        with pytest.raises(ConfigurationError):
            AdditiveDelayScheduler((-1.0, 1.0))

    def test_offset_wins_until_wait_catches_up(self):
        scheduler = AdditiveDelayScheduler((0.0, 10.0))
        low = make_packet(0, class_id=0, created_at=0.0)
        high = make_packet(1, class_id=1, created_at=5.0)
        scheduler.enqueue(low, 0.0)
        scheduler.enqueue(high, 5.0)
        # t=6: low = 6, high = 1 + 10 = 11 -> high first.
        assert scheduler.select(6.0) is high

    @pytest.mark.slow
    def test_heavy_load_delay_differences_near_offsets(self):
        """Eq 3: d_i - d_{i+1} tends to s_{i+1} - s_i in heavy load.

        Convergence is asymptotic (busy-period boundaries dilute the
        spacing), so at rho = 0.98 we accept 60-110% of the offset --
        far from the ~0 an undifferentiated discipline would show and
        scaling with the offset as the additive model requires.
        """
        rho = 0.98
        rates = [rho * 0.5, rho * 0.5]
        offset = 10.0
        delays, _ = run_poisson_link(
            AdditiveDelayScheduler((0.0, offset)), rates, horizon=6e5, seed=9
        )
        difference = delays[0] - delays[1]
        assert 0.6 * offset < difference < 1.1 * offset


class TestPAD:
    def test_long_run_normalized_delays_equalize(self):
        """PAD holds d_i * s_i equal even at moderate load, where WTP
        undershoots -- the 'optimal proportional scheduler' property."""
        rho = 0.8
        rates = [rho * s for s in (0.4, 0.3, 0.2, 0.1)]
        delays, _ = run_poisson_link(
            PADScheduler((1.0, 2.0, 4.0, 8.0)), rates, horizon=3e5, seed=2
        )
        for i in range(3):
            assert delays[i] / delays[i + 1] == pytest.approx(2.0, rel=0.15)

    def test_normalized_average_reporting(self):
        scheduler = PADScheduler((1.0, 2.0))
        import math
        assert math.isnan(scheduler.normalized_average(0))
        packet = make_packet(0, class_id=0, created_at=0.0)
        scheduler.enqueue(packet, 0.0)
        scheduler.select(4.0)
        assert scheduler.normalized_average(0) == pytest.approx(4.0)


class TestHPD:
    def test_g_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            HPDScheduler((1.0, 2.0), g=1.5)

    def test_hybrid_tracks_target_ratio(self):
        rho = 0.9
        rates = [rho * s for s in (0.4, 0.3, 0.2, 0.1)]
        delays, _ = run_poisson_link(
            HPDScheduler((1.0, 2.0, 4.0, 8.0), g=0.875), rates,
            horizon=3e5, seed=4,
        )
        for i in range(3):
            assert delays[i] / delays[i + 1] == pytest.approx(2.0, rel=0.25)

    def test_g_one_behaves_like_wtp_ordering(self):
        scheduler = HPDScheduler((1.0, 2.0), g=1.0)
        low = make_packet(0, class_id=0, created_at=0.0)
        high = make_packet(1, class_id=1, created_at=8.0)
        scheduler.enqueue(low, 0.0)
        scheduler.enqueue(high, 8.0)
        # WTP at t=10: low = 10 > high = 4.
        assert scheduler.select(10.0) is low


class TestRegistry:
    def test_all_names_construct(self):
        for name in available_schedulers():
            scheduler = make_scheduler(name, (1.0, 2.0, 4.0, 8.0))
            assert scheduler.num_classes == 4

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("nope", (1.0, 2.0))

    def test_expected_names_present(self):
        names = available_schedulers()
        for expected in ("wtp", "bpr", "fcfs", "strict", "scfq", "wfq",
                         "additive", "pad", "hpd"):
            assert expected in names

    def test_case_insensitive(self):
        assert make_scheduler("WTP", (1.0, 2.0)).name == "wtp"

    def test_additive_offsets_shifted_to_zero(self):
        scheduler = make_scheduler("additive", (1.0, 2.0, 4.0))
        assert scheduler.offsets == (0.0, 1.0, 3.0)
