"""Tests for the terminal plotting helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis import bar_chart, box_row, scatter, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line == "".join(sorted(line))

    def test_nan_renders_as_space(self):
        line = sparkline([1.0, math.nan, 3.0])
        assert line[1] == " "

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_explicit_bounds_clamp(self):
        wide = sparkline([0.0, 10.0], minimum=0.0, maximum=100.0)
        assert wide[1] != "█"  # 10 of 100 is a low level


class TestBoxRow:
    def test_median_marker_and_box(self):
        row = box_row(1.0, 2.0, 3.0, 4.0, 5.0, low=0.0, high=6.0, width=60)
        assert "|" in row
        assert "=" in row and "-" in row
        assert len(row) == 60

    def test_out_of_range_values_clamped(self):
        row = box_row(-10.0, 0.0, 1.0, 2.0, 50.0, low=0.0, high=4.0)
        assert len(row) == 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            box_row(1, 2, 3, 4, 5, low=0, high=0)
        with pytest.raises(ConfigurationError):
            box_row(1, 2, 3, 4, 5, low=0, high=6, width=5)

    def test_tight_distribution_is_narrow(self):
        tight = box_row(2.9, 2.95, 3.0, 3.05, 3.1, low=0.0, high=6.0)
        wide = box_row(0.5, 1.5, 3.0, 4.5, 5.5, low=0.0, high=6.0)
        assert tight.count("-") + tight.count("=") < (
            wide.count("-") + wide.count("=")
        )


class TestScatter:
    def test_dimensions_and_markers(self):
        text = scatter([(0.0, 0.0), (1.0, 1.0)], width=20, height=5)
        lines = text.splitlines()
        assert len(lines) == 6  # grid + axis line
        assert all(len(line) == 20 for line in lines[:-1])
        assert sum(line.count("*") for line in lines) == 2

    def test_empty(self):
        assert scatter([]) == "(no points)"

    def test_higher_y_is_higher_row(self):
        text = scatter([(0.0, 0.0), (1.0, 10.0)], width=10, height=4)
        lines = text.splitlines()[:-1]
        top_index = next(i for i, l in enumerate(lines) if "*" in l)
        bottom_index = max(i for i, l in enumerate(lines) if "*" in l)
        assert top_index < bottom_index

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            scatter([(0, 0)], width=1)


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") < lines[1].count("#")
        assert lines[1].count("#") == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [0.0])

    def test_empty(self):
        assert bar_chart([], []) == "(no bars)"
