"""Tests for the experiment harnesses (scaled-down runs of every
figure/table pipeline) and the single-hop common machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    MicroscopicConfig,
    SingleHopConfig,
    FigureOneConfig,
    FigureThreeConfig,
    FigureTwoConfig,
    format_figure1,
    format_figure2,
    format_figure3,
    format_figure45,
    format_table1,
    generate_trace,
    replay_through_scheduler,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure45,
    run_single_hop,
    TableOneConfig,
    run_table1,
)
from repro.experiments.figure1 import SDP_RATIO_2
from repro.schedulers import make_scheduler
from repro.traffic.mix import ClassLoadDistribution


QUICK = dict(horizon=6e4, warmup=3e3)


class TestSingleHopCommon:
    def test_trace_hits_requested_utilization(self):
        config = SingleHopConfig(utilization=0.9, **QUICK)
        trace = generate_trace(config)
        load = trace.offered_load(config.capacity, config.horizon)
        assert load == pytest.approx(0.9, rel=0.15)  # Pareto is bursty

    def test_same_seed_same_trace(self):
        config = SingleHopConfig(seed=5, **QUICK)
        a, b = generate_trace(config), generate_trace(config)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.sizes, b.sizes)

    def test_different_seed_different_trace(self):
        a = generate_trace(SingleHopConfig(seed=1, **QUICK))
        b = generate_trace(SingleHopConfig(seed=2, **QUICK))
        assert len(a) != len(b) or not np.array_equal(a.times, b.times)

    def test_run_produces_ordered_delays(self):
        result = run_single_hop(SingleHopConfig(utilization=0.95, **QUICK))
        delays = result.mean_delays
        assert delays[0] > delays[1] > delays[2] > delays[3]

    def test_replay_same_trace_two_schedulers(self):
        config = SingleHopConfig(utilization=0.95, **QUICK)
        trace = generate_trace(config)
        wtp = replay_through_scheduler(trace, make_scheduler("wtp", config.sdps), config)
        bpr = replay_through_scheduler(trace, make_scheduler("bpr", config.sdps), config)
        assert wtp.monitor.counts() != [0, 0, 0, 0]
        # Both runs saw the same arrivals; departures can differ only by
        # the packets still in the queue when the horizon cuts the run.
        total_wtp, total_bpr = sum(wtp.monitor.counts()), sum(bpr.monitor.counts())
        assert abs(total_wtp - total_bpr) < 0.01 * total_wtp

    def test_conservation_residual_small(self):
        result = run_single_hop(SingleHopConfig(utilization=0.9, **QUICK))
        assert abs(result.conservation_residual()) < 0.10

    def test_feasibility_report_at_default_point(self):
        result = run_single_hop(SingleHopConfig(utilization=0.95, **QUICK))
        assert result.feasibility_report().feasible

    def test_target_ratios(self):
        result = run_single_hop(SingleHopConfig(**QUICK))
        assert result.target_ratios() == pytest.approx([2.0, 2.0, 2.0])

    def test_sdp_class_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SingleHopConfig(sdps=(1.0, 2.0), **QUICK)

    def test_warmup_must_precede_horizon(self):
        with pytest.raises(ConfigurationError):
            SingleHopConfig(horizon=1e3, warmup=1e4)


class TestFigure1Pipeline:
    def test_points_and_convergence_trend(self):
        config = FigureOneConfig(
            utilizations=(0.75, 0.97),
            seeds=(1, 2),
            horizon=6e4,
            warmup=3e3,
        )
        points = run_figure1(config)
        assert len(points) == 4  # 2 rhos x 2 schedulers
        wtp = {p.utilization: p for p in points if p.scheduler == "wtp"}
        # Heavier load -> closer to the target ratio 2 (paper's shape).
        assert wtp[0.97].worst_relative_error < wtp[0.75].worst_relative_error
        assert all(p.feasible for p in points)

    def test_scaled_reduces_work(self):
        config = FigureOneConfig().scaled(0.1)
        assert config.horizon == pytest.approx(1e5)
        assert len(config.seeds) == 1

    def test_format_contains_rows(self):
        config = FigureOneConfig(
            utilizations=(0.9,), seeds=(1,), horizon=5e4, warmup=2e3,
            check_feasibility=False,
        )
        text = format_figure1(run_figure1(config))
        assert "wtp" in text and "bpr" in text and "0.900" in text


class TestFigure2Pipeline:
    def test_wtp_insensitive_bpr_biased(self):
        distributions = (
            ClassLoadDistribution((0.7, 0.1, 0.1, 0.1)),
            ClassLoadDistribution((0.1, 0.1, 0.1, 0.7)),
        )
        config = FigureTwoConfig(
            distributions=distributions, seeds=(1, 2), horizon=8e4,
            warmup=4e3, check_feasibility=False,
        )
        points = run_figure2(config)
        wtp_errors = [
            p.worst_relative_error for p in points if p.scheduler == "wtp"
        ]
        assert max(wtp_errors) < 0.45
        text = format_figure2(points)
        assert "70/10/10/10" in text

    def test_point_count(self):
        config = FigureTwoConfig(
            distributions=(ClassLoadDistribution((0.25, 0.25, 0.25, 0.25)),),
            seeds=(1,), horizon=5e4, warmup=2e3, check_feasibility=False,
        )
        assert len(run_figure2(config)) == 2


class TestFigure3Pipeline:
    def test_boxes_tighten_with_tau(self):
        config = FigureThreeConfig(
            taus_p_units=(10.0, 1000.0), horizon=2e5, warmup=5e3,
        )
        boxes = run_figure3(config)
        assert len(boxes) == 4
        for scheduler in ("wtp", "bpr"):
            spread = {
                b.tau_p_units: b.summary.p95 - b.summary.p5
                for b in boxes
                if b.scheduler == scheduler
            }
            assert spread[1000.0] < spread[10.0]

    def test_format(self):
        config = FigureThreeConfig(
            schedulers=("wtp",), taus_p_units=(100.0,), horizon=6e4,
            warmup=3e3,
        )
        text = format_figure3(run_figure3(config))
        assert "median" in text and "wtp" in text


class TestFigure45Pipeline:
    def test_bpr_noisier_than_wtp(self):
        config = MicroscopicConfig(horizon=1.5e5, warmup=1e4)
        views = run_figure45(config)
        bpr_scores = [
            s for s in views["bpr"].sawtooth_scores() if not math.isnan(s)
        ]
        wtp_scores = [
            s for s in views["wtp"].sawtooth_scores() if not math.isnan(s)
        ]
        assert bpr_scores and wtp_scores
        # The BPR sawtooth artifact: larger packet-to-packet jumps.
        assert np.mean(bpr_scores) > np.mean(wtp_scores)

    def test_views_have_data_and_format(self):
        config = MicroscopicConfig(horizon=1e5, warmup=5e3)
        views = run_figure45(config)
        for view in views.values():
            assert view.interval_means.shape[1] == 3
            assert any(len(s) for s in view.packet_samples)
        assert "sawtooth" in format_figure45(views)


class TestTable1Pipeline:
    def test_single_cell_grid(self):
        config = TableOneConfig(
            hops_values=(2,), utilizations=(0.8,),
            flow_packets_values=(5,), flow_rates_kbps=(200.0,),
            experiments=4, warmup=2000.0,
        )
        cells = run_table1(config)
        assert len(cells) == 1
        assert 1.0 < cells[0].rd < 4.0
        text = format_table1(cells)
        assert "K=2" in text and "F=5" in text

    def test_scaled(self):
        config = TableOneConfig().scaled(0.1)
        assert config.experiments == 10
        assert config.warmup == pytest.approx(10_000.0)
