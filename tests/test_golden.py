"""Golden-run regression tests.

Every scenario in :mod:`tests.golden.scenarios` is re-executed through
its runner worker and compared, value by value, against the committed
JSON under ``tests/golden/``.  Floats are compared with the explicit
tolerances recorded in each golden file; integers, strings, booleans,
and container shapes must match exactly; NaN only matches NaN.

A failure here means the simulation pipeline's observable output
changed.  If the change is intentional, regenerate the corpus with
``PYTHONPATH=src python -m tests.golden.regenerate`` and commit the
JSON diff alongside the code change.
"""

from __future__ import annotations

import json
import math

import pytest

from tests.golden.scenarios import GoldenScenario, golden_scenarios

SCENARIOS = golden_scenarios()


def _assert_matches(expected, actual, rel: float, abs_tol: float, path: str):
    """Recursive comparison with float tolerances and exact structure."""
    if isinstance(expected, float) and isinstance(actual, (int, float)):
        if math.isnan(expected):
            assert math.isnan(actual), f"{path}: expected NaN, got {actual!r}"
            return
        assert actual == pytest.approx(expected, rel=rel, abs=abs_tol), (
            f"{path}: {actual!r} != {expected!r} (rel={rel}, abs={abs_tol})"
        )
    elif isinstance(expected, bool) or isinstance(actual, bool):
        assert actual is expected, f"{path}: {actual!r} != {expected!r}"
    elif isinstance(expected, int):
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"
    elif isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: not a dict: {actual!r}"
        assert sorted(actual) == sorted(expected), (
            f"{path}: keys {sorted(actual)} != {sorted(expected)}"
        )
        for key in expected:
            _assert_matches(
                expected[key], actual[key], rel, abs_tol, f"{path}.{key}"
            )
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: not a list: {actual!r}"
        assert len(actual) == len(expected), (
            f"{path}: length {len(actual)} != {len(expected)}"
        )
        for index, (exp, act) in enumerate(zip(expected, actual)):
            _assert_matches(exp, act, rel, abs_tol, f"{path}[{index}]")
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[s.name for s in SCENARIOS]
)
def test_golden_scenario(scenario: GoldenScenario) -> None:
    assert scenario.path.exists(), (
        f"missing golden file {scenario.path}; run "
        "`PYTHONPATH=src python -m tests.golden.regenerate`"
    )
    golden = json.loads(scenario.path.read_text())
    assert golden["scenario"] == scenario.name
    tolerances = golden["tolerances"]
    summary = scenario.run()
    _assert_matches(
        golden["summary"],
        summary,
        rel=tolerances["relative"],
        abs_tol=tolerances["absolute"],
        path=scenario.name,
    )


#: Scenarios that cannot run under the invariant checker: the hybrid
#: cell's fluid segments have no event stream to check.  Its structural
#: guarantee is pinned elsewhere -- the differential harness proves the
#: epsilon=0 hybrid run bit-identical to the checked evented path.
UNCHECKED_SCENARIOS = frozenset({"hybrid_city_wtp"})


def test_golden_runs_are_invariant_checked() -> None:
    """The corpus doubles as invariant-checked runs: every committed
    summary must record a verification report with real traffic."""
    for scenario in SCENARIOS:
        if scenario.name in UNCHECKED_SCENARIOS:
            continue
        golden = json.loads(scenario.path.read_text())
        reports = golden["summary"]["invariants"]
        if isinstance(reports, dict):
            reports = [reports]
        for report in reports:
            assert report["checked"] is True, scenario.name
            assert report["arrivals"] > 0, scenario.name
            assert report["departures"] > 0, scenario.name
