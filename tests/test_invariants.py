"""Tests of the runtime invariant-checking subsystem.

Three angles:

* *Transparency*: a checked run produces bit-identical measurements to
  an unchecked run, and a link that never had a checker attached runs
  the original class methods (zero overhead when disabled).
* *Sensitivity*: deliberately broken schedulers (inverted WTP
  priorities, equal-split BPR rates, inverted strict priority) and
  tampered kernel state (stolen packets, forged byte counters, idle
  servers with backlog, calendar time regressions) each trigger
  :class:`~repro.errors.InvariantViolation` naming the violated
  invariant.
* *Unit behaviour*: the scheduler-check registry and the Eq 5
  conservation-law verifier.
"""

from __future__ import annotations

import heapq
import math

import pytest

from repro.errors import InvariantViolation, SimulationError
from repro.experiments.common import (
    SingleHopConfig,
    generate_trace,
    replay_through_scheduler,
)
from repro.invariants import (
    InvariantChecker,
    register_scheduler_check,
    registered_scheduler_checks,
    scheduler_check_for,
    verify_conservation_law,
)
from repro.invariants import scheduler_checks as _checks_module
from repro.schedulers import make_scheduler
from repro.schedulers.bpr import BPRScheduler
from repro.schedulers.strict_priority import StrictPriorityScheduler
from repro.schedulers.wtp import WTPScheduler
from repro.sim import Link, PacketSink, Simulator

from .conftest import make_packet

SDPS = (1.0, 2.0, 4.0, 8.0)


def small_config(scheduler: str = "wtp", **overrides) -> SingleHopConfig:
    """A Figure 1/2-style run shrunk to tier-1 test size."""
    settings = dict(
        scheduler=scheduler,
        sdps=SDPS,
        utilization=0.9,
        horizon=3e4,
        warmup=2e3,
        seed=42,
    )
    settings.update(overrides)
    return SingleHopConfig(**settings)


# ----------------------------------------------------------------------
# Deliberately broken schedulers.  Each keeps its parent's ``name`` so
# the registry applies the real discipline's contract to the impostor.
# ----------------------------------------------------------------------
class InvertedWTP(WTPScheduler):
    """Serves the *minimum*-priority head instead of the maximum."""

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_priority = math.inf
        for cid in range(self.num_classes):
            queue = self.queues.queues[cid]
            if not queue:
                continue
            priority = (now - queue[0].arrived_at) * self.sdps[cid]
            if priority < best_priority:
                best_priority = priority
                best_class = cid
        return best_class


class EqualSplitBPR(BPRScheduler):
    """Ignores backlogs: splits capacity evenly instead of Eq 8."""

    def _recompute_rates(self) -> None:
        share = self.capacity / self.num_classes
        for cid in range(self.num_classes):
            self._rates[cid] = share


class InvertedStrictPriority(StrictPriorityScheduler):
    """Serves the *lowest* backlogged class."""

    def choose_class(self, now: float) -> int:
        for cid in range(self.num_classes):
            if self.queues.queues[cid]:
                return cid
        return -1


class UnregisteredTailWTP(WTPScheduler):
    """WTP that pops queue *tails*, under a name with no dispatch check,
    so only the generic per-class FIFO invariant can catch it."""

    name = "tail-popping-wtp"

    def select(self, now: float):
        class_id = self.choose_class(now)
        packet = self.queues.pop_tail(class_id)
        self.on_select(packet, now)
        return packet


# ----------------------------------------------------------------------
# Transparency
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["wtp", "bpr", "fcfs", "strict", "qwtp", "drr"])
def test_checked_run_matches_unchecked(name: str) -> None:
    config = small_config(name)
    trace = generate_trace(config)
    plain = replay_through_scheduler(trace, make_scheduler(name, SDPS), config)
    checked = replay_through_scheduler(
        trace, make_scheduler(name, SDPS), config, check_invariants=True
    )
    # Bit-identical measurements: the hooks observe, never perturb.
    assert checked.mean_delays == plain.mean_delays
    assert checked.successive_ratios == plain.successive_ratios
    assert checked.link_utilization == plain.link_utilization
    assert plain.invariants is None
    report = checked.invariants
    assert report is not None
    assert report.arrivals > 0
    assert report.departures > 0
    assert report.dispatches >= report.departures
    assert report.busy_periods > 0
    assert report.conservation_residual is not None
    assert abs(report.conservation_residual) < 0.25
    if name in registered_scheduler_checks():
        assert report.scheduler_check == name
    else:
        assert report.scheduler_check is None
    payload = report.to_dict()
    assert payload["checked"] is True
    assert payload["arrivals"] == report.arrivals


def test_disabled_checker_leaves_class_methods() -> None:
    """Zero overhead when disabled: no per-instance hook attributes."""
    sim = Simulator()
    scheduler = WTPScheduler(SDPS)
    link = Link(sim, scheduler, capacity=1.0, target=PacketSink())
    assert "receive" not in link.__dict__
    assert "_complete_service" not in link.__dict__
    assert "select" not in scheduler.__dict__

    checker = InvariantChecker(link)
    assert not checker.attached
    checker.attach()
    assert checker.attached
    assert "receive" in link.__dict__
    assert "_complete_service" in link.__dict__
    assert "select" in scheduler.__dict__

    checker.detach()
    assert not checker.attached
    # The restored bound methods are the original class implementations.
    assert link.receive.__func__ is Link.receive
    assert link._complete_service.__func__ is Link._complete_service
    assert scheduler.select.__func__ is WTPScheduler.select
    checker.detach()  # idempotent


def test_double_attach_rejected() -> None:
    sim = Simulator()
    link = Link(sim, WTPScheduler(SDPS), capacity=1.0, target=PacketSink())
    checker = InvariantChecker(link).attach()
    with pytest.raises(SimulationError):
        checker.attach()
    checker.detach()
    checker.attach()  # fine again after detach
    checker.detach()


def test_attach_rejects_swapped_scheduler() -> None:
    sim = Simulator()
    link = Link(sim, WTPScheduler(SDPS), capacity=1.0, target=PacketSink())
    checker = InvariantChecker(link)
    link.scheduler = WTPScheduler(SDPS)
    with pytest.raises(SimulationError):
        checker.attach()


# ----------------------------------------------------------------------
# Sensitivity: broken schedulers
# ----------------------------------------------------------------------
def test_inverted_wtp_triggers_priority_order_violation() -> None:
    config = small_config("wtp")
    trace = generate_trace(config)
    with pytest.raises(InvariantViolation) as excinfo:
        replay_through_scheduler(
            trace, InvertedWTP(SDPS), config, check_invariants=True
        )
    violation = excinfo.value
    assert violation.invariant == "wtp-priority-order"
    assert violation.packet_id is not None
    assert violation.class_id is not None
    assert violation.sim_time is not None
    assert f"packet={violation.packet_id}" in str(violation)


def test_equal_split_bpr_triggers_rate_allocation_violation() -> None:
    config = small_config("bpr")
    trace = generate_trace(config)
    with pytest.raises(InvariantViolation) as excinfo:
        replay_through_scheduler(
            trace, EqualSplitBPR(SDPS), config, check_invariants=True
        )
    assert excinfo.value.invariant == "bpr-rate-allocation"


def test_inverted_strict_priority_triggers_violation() -> None:
    config = small_config("strict")
    trace = generate_trace(config)
    with pytest.raises(InvariantViolation) as excinfo:
        replay_through_scheduler(
            trace,
            InvertedStrictPriority(len(SDPS)),
            config,
            check_invariants=True,
        )
    assert excinfo.value.invariant == "strict-priority-order"


def test_tail_popping_scheduler_triggers_class_fifo_violation() -> None:
    config = small_config("wtp")
    trace = generate_trace(config)
    scheduler = UnregisteredTailWTP(SDPS)
    assert scheduler_check_for(scheduler) is None
    with pytest.raises(InvariantViolation) as excinfo:
        replay_through_scheduler(
            trace, scheduler, config, check_invariants=True
        )
    assert excinfo.value.invariant == "class-fifo"


# ----------------------------------------------------------------------
# Sensitivity: tampered kernel state (small hand-built scenarios)
# ----------------------------------------------------------------------
def _manual_link(scheduler=None, capacity: float = 1.0):
    sim = Simulator()
    scheduler = scheduler if scheduler is not None else WTPScheduler((1.0, 2.0))
    link = Link(sim, scheduler, capacity, target=PacketSink())
    return sim, link, scheduler


def test_stolen_packet_triggers_losslessness_violation() -> None:
    sim, link, scheduler = _manual_link()
    checker = InvariantChecker(link).attach()
    for i, t in enumerate((0.0, 1.0, 2.0)):
        sim.schedule(t, link.receive, make_packet(i, size=10.0, created_at=t))
    # Mid-run, a packet vanishes from the queue behind the link's back.
    sim.schedule(3.0, lambda _=None: scheduler.queues.pop(0))
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run_checked(until=50.0)
    assert excinfo.value.invariant == "losslessness"
    assert checker.attached


def test_forged_byte_counter_triggers_work_conservation_violation() -> None:
    sim, link, _ = _manual_link()

    def forge_bytes(_=None):
        link.bytes_sent += 3.0

    InvariantChecker(link).attach()
    sim.schedule(0.0, link.receive, make_packet(0, size=10.0))
    sim.schedule(5.0, forge_bytes)
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run_checked(until=50.0)
    assert excinfo.value.invariant == "work-conservation"


def test_tampered_service_start_triggers_causality_violation() -> None:
    sim, link, _ = _manual_link()

    def tamper(_=None):
        link.in_service.service_start = 3.0

    InvariantChecker(link).attach()
    sim.schedule(0.0, link.receive, make_packet(0, size=10.0))
    sim.schedule(5.0, tamper)
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run_checked(until=50.0)
    assert excinfo.value.invariant == "event-causality"


def test_idle_server_with_backlog_triggers_violation() -> None:
    sim, link, _ = _manual_link()
    InvariantChecker(link).attach()
    # A non-work-conserving server: it accepts work but never serves.
    link._begin_busy_period = lambda now: None
    link._start_service = lambda: None
    sim.schedule(1.0, link.receive, make_packet(0, size=10.0))
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run_checked(until=50.0)
    assert excinfo.value.invariant == "work-conservation"
    assert "idle" in excinfo.value.detail


def test_run_checked_catches_calendar_time_regression() -> None:
    sim = Simulator()

    def push_into_the_past(_=None):
        heapq.heappush(sim._heap, (2.0, 10**9, lambda: None, None))

    sim.schedule(5.0, push_into_the_past)
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run_checked()
    assert excinfo.value.invariant == "event-causality"
    assert excinfo.value.sim_time == 5.0


def test_finalize_catches_corrupted_queue_accounting() -> None:
    sim, link, scheduler = _manual_link()
    checker = InvariantChecker(link).attach()
    sim.schedule(0.0, link.receive, make_packet(0, size=10.0))
    sim.run_checked(until=50.0)
    scheduler.queues.bytes_backlog[0] = 50.0
    with pytest.raises(InvariantViolation) as excinfo:
        checker.finalize()
    assert excinfo.value.invariant == "losslessness"
    assert "byte-backlog" in excinfo.value.detail


def test_finalize_catches_corrupted_packet_counter() -> None:
    sim, link, scheduler = _manual_link()
    checker = InvariantChecker(link).attach()
    sim.schedule(0.0, link.receive, make_packet(0, size=10.0))
    sim.run_checked(until=50.0)
    scheduler.queues.total_packets += 1
    with pytest.raises(InvariantViolation) as excinfo:
        checker.finalize()
    assert excinfo.value.invariant == "losslessness"


def test_finalize_reports_clean_run() -> None:
    sim, link, _ = _manual_link()
    checker = InvariantChecker(link).attach()
    for i, t in enumerate((0.0, 1.0, 2.0)):
        sim.schedule(
            t, link.receive, make_packet(i, class_id=i % 2, size=5.0)
        )
    sim.run_checked(until=100.0)
    report = checker.finalize()
    assert report.arrivals == 3
    assert report.departures == 3
    assert report.dispatches == 3
    assert report.busy_periods == 1
    assert report.scheduler_check == "wtp"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_builtin_checks_registered() -> None:
    names = registered_scheduler_checks()
    assert {"wtp", "qwtp", "bpr", "fcfs", "strict"} <= set(names)
    assert names == tuple(sorted(names))


def test_unregistered_scheduler_has_no_check() -> None:
    # Every built-in discipline now ships an oracle; only a scheduler
    # with an unknown ``name`` falls outside the registry.
    class UnregisteredWTP(WTPScheduler):
        name = "no-such-discipline"

    assert scheduler_check_for(UnregisteredWTP(SDPS)) is None


def test_custom_check_registration() -> None:
    calls = []

    class CustomNamedWTP(WTPScheduler):
        name = "unit-test-discipline"

    def factory(scheduler):
        def check(queues, now, chosen):
            calls.append((now, chosen.packet_id))

        return check

    register_scheduler_check("unit-test-discipline", factory)
    try:
        scheduler = CustomNamedWTP(SDPS)
        assert "unit-test-discipline" in registered_scheduler_checks()
        sim, link, _ = _manual_link(scheduler)
        InvariantChecker(link).attach()
        sim.schedule(0.0, link.receive, make_packet(0, size=10.0))
        sim.run_checked(until=50.0)
        assert calls == [(0.0, 0)]
    finally:
        _checks_module._REGISTRY.pop("unit-test-discipline")


# ----------------------------------------------------------------------
# Conservation-law verifier
# ----------------------------------------------------------------------
def test_conservation_law_accepts_exact_identity() -> None:
    rates = [2.0, 1.0]
    delays = [3.0, 6.0]
    aggregate = (2.0 * 3.0 + 1.0 * 6.0) / 3.0
    residual = verify_conservation_law(rates, delays, aggregate)
    assert residual == pytest.approx(0.0, abs=1e-12)


def test_conservation_law_rejects_large_residual() -> None:
    with pytest.raises(InvariantViolation) as excinfo:
        verify_conservation_law([1.0, 1.0], [10.0, 10.0], 5.0, tolerance=0.25)
    assert excinfo.value.invariant == "conservation-law"


def test_conservation_law_rejects_nan_delay_for_active_class() -> None:
    with pytest.raises(InvariantViolation) as excinfo:
        verify_conservation_law([1.0, 1.0], [3.0, math.nan], 3.0)
    assert excinfo.value.invariant == "conservation-law"
    assert excinfo.value.class_id == 1


def test_conservation_law_ignores_nan_delay_for_silent_class() -> None:
    residual = verify_conservation_law([1.0, 0.0], [3.0, math.nan], 3.0)
    assert residual == pytest.approx(0.0, abs=1e-12)


def test_conservation_law_rejects_misaligned_inputs() -> None:
    with pytest.raises(InvariantViolation):
        verify_conservation_law([1.0, 1.0], [3.0], 3.0)


# ----------------------------------------------------------------------
# Error type
# ----------------------------------------------------------------------
def test_invariant_violation_carries_structured_fields() -> None:
    violation = InvariantViolation(
        "class-fifo", "demo", packet_id=7, class_id=2, sim_time=12.5
    )
    assert violation.invariant == "class-fifo"
    assert violation.detail == "demo"
    assert violation.packet_id == 7
    assert violation.class_id == 2
    assert violation.sim_time == 12.5
    message = str(violation)
    assert "class-fifo" in message
    assert "packet=7" in message
    assert "class=2" in message
    assert "t=12.5" in message
