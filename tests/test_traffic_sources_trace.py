"""Tests for TrafficSource, ArrivalTrace, and TraceSource."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import PacketSink, Simulator
from repro.traffic import (
    ConstantInterarrivals,
    FixedPacketSize,
    PacketIdAllocator,
    PoissonInterarrivals,
    TrafficSource,
)
from repro.traffic.trace import (
    ArrivalTrace,
    TraceSource,
    build_class_trace,
    merge_traces,
)


class TestTrafficSource:
    def test_constant_source_emits_on_schedule(self, sim):
        sink = PacketSink(keep_packets=True)
        source = TrafficSource(
            sim, sink, class_id=2,
            interarrivals=ConstantInterarrivals(5.0),
            sizes=FixedPacketSize(100.0),
            stop_time=26.0,
        )
        source.start()
        sim.run()
        times = [p.created_at for p in sink.packets]
        assert times == [5.0, 10.0, 15.0, 20.0, 25.0]
        assert all(p.class_id == 2 for p in sink.packets)
        assert source.packets_emitted == 5
        assert source.bytes_emitted == 500.0

    def test_start_is_idempotent(self, sim):
        sink = PacketSink()
        source = TrafficSource(
            sim, sink, 0, ConstantInterarrivals(1.0), FixedPacketSize(1.0),
            stop_time=3.5,
        )
        source.start()
        source.start()
        sim.run()
        assert sink.received == 3

    def test_shared_id_allocator_gives_unique_ids(self, sim):
        sink = PacketSink(keep_packets=True)
        ids = PacketIdAllocator()
        for cid in range(3):
            TrafficSource(
                sim, sink, cid, ConstantInterarrivals(1.0 + cid * 0.1),
                FixedPacketSize(1.0), ids=ids, stop_time=10.0,
            ).start()
        sim.run()
        packet_ids = [p.packet_id for p in sink.packets]
        assert len(packet_ids) == len(set(packet_ids))

    def test_offered_rate(self, sim):
        source = TrafficSource(
            sim, PacketSink(), 0, ConstantInterarrivals(2.0),
            FixedPacketSize(100.0),
        )
        assert source.offered_rate_bytes == pytest.approx(50.0)

    def test_invalid_stop_time_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            TrafficSource(
                sim, PacketSink(), 0, ConstantInterarrivals(1.0),
                FixedPacketSize(1.0), start_time=5.0, stop_time=5.0,
            )


class TestArrivalTrace:
    def build(self):
        return ArrivalTrace(
            times=np.array([1.0, 2.0, 3.0, 4.0]),
            class_ids=np.array([0, 1, 0, 2]),
            sizes=np.array([10.0, 20.0, 30.0, 40.0]),
        )

    def test_length_and_classes(self):
        trace = self.build()
        assert len(trace) == 4
        assert trace.num_classes == 3

    def test_filter_classes(self):
        trace = self.build().filter_classes([0])
        assert trace.times.tolist() == [1.0, 3.0]
        assert trace.sizes.tolist() == [10.0, 30.0]

    def test_filter_preserves_order_for_multiple_classes(self):
        trace = self.build().filter_classes([0, 2])
        assert trace.times.tolist() == [1.0, 3.0, 4.0]

    def test_class_rates(self):
        rates = self.build().class_rates(horizon=4.0)
        assert rates == pytest.approx([0.5, 0.25, 0.25])

    def test_offered_load(self):
        trace = self.build()
        assert trace.offered_load(capacity=10.0, horizon=10.0) == pytest.approx(1.0)

    def test_unsorted_times_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalTrace(
                np.array([2.0, 1.0]), np.array([0, 0]), np.array([1.0, 1.0])
            )

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalTrace(np.array([1.0]), np.array([0, 1]), np.array([1.0]))


class TestBuildAndMerge:
    def test_build_class_trace_horizon(self, rng):
        trace = build_class_trace(
            1, PoissonInterarrivals(1.0, rng), FixedPacketSize(10.0),
            horizon=100.0,
        )
        assert np.all(trace.times < 100.0)
        assert np.all(trace.class_ids == 1)
        assert len(trace) > 50  # ~100 expected

    def test_merge_sorts_globally(self, rng):
        a = build_class_trace(
            0, PoissonInterarrivals(1.0, rng), FixedPacketSize(1.0), 50.0
        )
        b = build_class_trace(
            1, PoissonInterarrivals(2.0, rng), FixedPacketSize(1.0), 50.0
        )
        merged = merge_traces([a, b])
        assert len(merged) == len(a) + len(b)
        assert np.all(np.diff(merged.times) >= 0)

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_traces([])


class TestTraceSource:
    def test_replay_reproduces_arrivals(self, sim):
        trace = ArrivalTrace(
            np.array([1.0, 2.5, 4.0]),
            np.array([0, 1, 0]),
            np.array([10.0, 20.0, 30.0]),
        )
        sink = PacketSink(keep_packets=True)
        TraceSource(sim, sink, trace).start()
        sim.run()
        assert [p.created_at for p in sink.packets] == [1.0, 2.5, 4.0]
        assert [p.class_id for p in sink.packets] == [0, 1, 0]
        assert [p.size for p in sink.packets] == [10.0, 20.0, 30.0]

    def test_replay_determinism_across_runs(self, rng):
        trace = build_class_trace(
            0, PoissonInterarrivals(1.0, rng), FixedPacketSize(1.0), 100.0
        )
        outputs = []
        for _ in range(2):
            simulator = Simulator()
            sink = PacketSink(keep_packets=True)
            TraceSource(simulator, sink, trace).start()
            simulator.run()
            outputs.append([p.created_at for p in sink.packets])
        assert outputs[0] == outputs[1]
