"""Tests of the sharded sweep tier: store, shm handles, merge, resume.

The load-bearing properties:

* a sharded parallel sweep is bit-identical to the serial reference,
  with and without shared-memory trace publication,
* the shm handle protocol round-trips traces exactly and degrades to
  the pickled inline fallback when shm is unavailable,
* delta-aware cache keys survive edits to modules outside the worker's
  import closure (zero re-execution) and invalidate on edits inside it,
  with ``--explain-cache`` naming the module,
* the on-disk result store salvages complete records after a crash and
  a resumed sweep executes only the missing cells.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.traffic.io as traffic_io
from repro.errors import ConfigurationError
from repro.experiments.common import SingleHopConfig
from repro.experiments.figure1 import FigureOneConfig, run_figure1
from repro.runner import (
    ResultCache,
    ResultStore,
    ShardRunner,
    ShardWriter,
    SingleHopTask,
    SweepRunner,
    serial_runner,
    single_hop_summary,
)
from repro.runner.hashing import _SOURCE_OVERRIDES, invalidate_code_caches
from repro.traffic.io import (
    InlineTraceHandle,
    SharedTraceHandle,
    attach_trace,
    publish_trace,
    share_trace,
)
from repro.traffic.trace import ArrivalTrace

#: 2 schedulers x 2 loads x 2 seeds, laptop-sized.
TINY_FIG1 = FigureOneConfig(
    utilizations=(0.8, 0.92),
    seeds=(1, 2),
    horizon=2e4,
    warmup=1e3,
    check_feasibility=False,
)


def small_tasks(n: int = 6) -> list[SingleHopTask]:
    return [
        SingleHopTask(
            config=SingleHopConfig(
                scheduler="wtp", utilization=0.9, horizon=5e3,
                warmup=200.0, seed=seed,
            )
        )
        for seed in range(1, n + 1)
    ]


def tiny_trace() -> ArrivalTrace:
    return ArrivalTrace(
        times=np.array([0.5, 1.0, 2.25]),
        class_ids=np.array([0, 1, 0], dtype=np.int64),
        sizes=np.array([100.0, 1500.0, 40.0]),
    )


class TestTraceHandles:
    def test_shm_round_trip_is_exact(self):
        if not traffic_io.shm_available():  # pragma: no cover - no /dev/shm
            pytest.skip("no shared memory on this host")
        trace = tiny_trace()
        handle, block = share_trace(trace)
        try:
            attached, worker_block = attach_trace(handle)
            assert np.array_equal(attached.times, trace.times)
            assert np.array_equal(attached.class_ids, trace.class_ids)
            assert np.array_equal(attached.sizes, trace.sizes)
            assert attached.class_ids.dtype == np.int64
            worker_block.close()
        finally:
            block.close()
            block.unlink()

    def test_inline_fallback_round_trip(self):
        trace = tiny_trace()
        handle, block = publish_trace(trace, use_shm=False)
        assert block is None
        assert isinstance(handle, InlineTraceHandle)
        attached, worker_block = attach_trace(handle)
        assert worker_block is None
        assert np.array_equal(attached.times, trace.times)

    def test_probe_failure_degrades_to_inline(self, monkeypatch):
        monkeypatch.setattr(traffic_io, "_SHM_PROBED", False)
        handle, block = publish_trace(tiny_trace(), use_shm=True)
        assert isinstance(handle, InlineTraceHandle)
        assert block is None

    def test_protocol_mismatch_is_rejected(self):
        stale = SharedTraceHandle(shm_name="x", count=1, protocol=0)
        with pytest.raises(ConfigurationError):
            attach_trace(stale)


class TestResultStore:
    def test_writer_enforces_ascending_indices(self, tmp_path):
        with ShardWriter(tmp_path / "s.jsonl") as out:
            out.write(3, {"x": 1})
            with pytest.raises(ValueError):
                out.write(3, {"x": 2})

    def test_truncated_tail_is_salvaged(self, tmp_path):
        store = ResultStore(tmp_path)
        store.open_grid("grid-a", "w", total=4)
        with ShardWriter(store.shard_path(0)) as out:
            out.write(0, {"v": 0})
            out.write(1, {"v": 1})
        # Simulate a crash mid-write: chop the last record in half.
        path = store.shard_files()[0]
        text = path.read_text()
        path.write_text(text[: len(text) - 7])

        resumed = ResultStore(tmp_path)
        done = resumed.open_grid("grid-a", "w", total=4)
        assert done == {0}
        assert resumed.partial_files
        assert list(resumed.iter_results()) == [(0, {"v": 0})]

    def test_resumed_run_gets_fresh_shard_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.open_grid("grid-a", "w", total=2)
        with ShardWriter(store.shard_path(0)) as out:
            out.write(0, {"v": 0})
        resumed = ResultStore(tmp_path)
        resumed.open_grid("grid-a", "w", total=2)
        assert resumed.shard_path(0) != store.shard_path(0)

    def test_different_grid_resets_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        store.open_grid("grid-a", "w", total=1)
        with ShardWriter(store.shard_path(0)) as out:
            out.write(0, {"v": 0})
        other = ResultStore(tmp_path)
        done = other.open_grid("grid-b", "w", total=1)
        assert done == set()
        assert not other.shard_files()

    def test_merge_dedups_first_wins_across_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        store.open_grid("grid-a", "w", total=3)
        with ShardWriter(store.shard_path(0)) as out:
            out.write(0, {"run": "first"})
            out.write(2, {"run": "first"})
        resumed = ResultStore(tmp_path)
        resumed.open_grid("grid-a", "w", total=3)
        with ShardWriter(resumed.shard_path(0)) as out:
            out.write(1, {"run": "second"})
            out.write(2, {"run": "second"})  # duplicate of run 0's cell
        final = ResultStore(tmp_path)
        final.open_grid("grid-a", "w", total=3)
        assert list(final.iter_results()) == [
            (0, {"run": "first"}),
            (1, {"run": "second"}),
            (2, {"run": "first"}),
        ]


class TestShardedParity:
    def test_sharded_equals_serial_single_hop(self):
        tasks = small_tasks()
        serial = serial_runner().map(single_hop_summary, tasks)
        with ShardRunner(jobs=2, shard_size=2) as runner:
            sharded = runner.map(single_hop_summary, tasks)
        assert sharded == serial

    def test_sharded_equals_serial_figure1(self):
        serial = run_figure1(TINY_FIG1, runner=serial_runner())
        with ShardRunner(jobs=2) as runner:
            sharded = run_figure1(TINY_FIG1, runner=runner)
        assert sharded == serial

    def test_inline_fallback_is_bit_identical(self):
        tasks = small_tasks(4)
        serial = serial_runner().map(single_hop_summary, tasks)
        with ShardRunner(jobs=2, shard_size=1, use_shm=False) as runner:
            sharded = runner.map(single_hop_summary, tasks)
        assert sharded == serial

    def test_consume_streams_in_ascending_order(self):
        tasks = small_tasks(5)
        seen: list[int] = []
        payloads: dict[int, dict] = {}

        def consume(index: int, payload: dict) -> None:
            seen.append(index)
            payloads[index] = payload

        with ShardRunner(jobs=2, shard_size=2) as runner:
            returned = runner.map(single_hop_summary, tasks, consume=consume)
        assert returned is None
        assert seen == list(range(len(tasks)))
        assert payloads[0] == single_hop_summary(tasks[0])

    def test_report_counts_and_summary(self):
        tasks = small_tasks(4)
        with ShardRunner(jobs=1, shard_size=2) as runner:
            runner.map(single_hop_summary, tasks)
        report = runner.last_report
        assert report.total == 4 and report.executed == 4
        assert report.shards == 2 and report.shard_size == 2
        assert report.coordinator_peak_rss_mb > 0
        assert "peak rss" in report.summary()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardRunner(jobs=0)
        with pytest.raises(ValueError):
            ShardRunner(shard_size=-1)


class TestShardedCacheAndResume:
    def test_both_tiers_share_one_cache(self, tmp_path):
        tasks = small_tasks(3)
        with SweepRunner(jobs=1, cache=ResultCache(tmp_path)) as sweep:
            first = sweep.map(single_hop_summary, tasks)
        with ShardRunner(jobs=1, cache=ResultCache(tmp_path)) as shard:
            second = shard.map(single_hop_summary, tasks)
        assert shard.last_report.cache_hits == 3
        assert shard.last_report.executed == 0
        assert second == first

    def test_crash_resume_executes_only_missing_cells(self, tmp_path):
        tasks = small_tasks(6)
        store_dir = tmp_path / "store"
        with ShardRunner(jobs=1, shard_size=2, store_dir=store_dir) as runner:
            first = runner.map(single_hop_summary, tasks)
        assert runner.last_report.executed == 6

        # "Crash": drop one whole shard file and truncate another
        # mid-record, leaving 3 complete cells on disk.
        store = ResultStore(store_dir)
        files = store.shard_files()
        files[0].unlink()
        lines = files[1].read_text().splitlines(keepends=True)
        files[1].write_text(lines[0] + lines[1][:10])

        with ShardRunner(jobs=1, shard_size=2, store_dir=store_dir) as runner:
            second = runner.map(single_hop_summary, tasks)
        report = runner.last_report
        assert report.resumed == 3
        assert report.executed == 3
        assert second == first

    def test_explain_reports_full_hits_on_warm_rerun(self, tmp_path):
        tasks = small_tasks(3)
        with ShardRunner(jobs=1, cache=ResultCache(tmp_path)) as cold:
            cold.map(single_hop_summary, tasks)
        warm = ShardRunner(jobs=1, cache=ResultCache(tmp_path), explain=True)
        with warm:
            warm.map(single_hop_summary, tasks)
        (report,) = warm.explanations
        assert report.hits == 3 and report.hit_rate == 1.0
        assert "3/3 hits (100.0%)" in report.summary()


class TestDeltaAwareInvalidation:
    """Edits outside the worker's import closure must not invalidate."""

    @pytest.fixture(autouse=True)
    def _clean_overrides(self):
        yield
        _SOURCE_OVERRIDES.clear()
        invalidate_code_caches()

    def _edit(self, module: str) -> None:
        import repro.runner.hashing as hashing

        original = hashing.package_modules()[module].read_bytes()
        _SOURCE_OVERRIDES[module] = original + b"\n# edited\n"
        invalidate_code_caches()

    def test_unrelated_edit_keeps_every_hit(self, tmp_path):
        tasks = small_tasks(3)
        with ShardRunner(jobs=1, cache=ResultCache(tmp_path)) as cold:
            cold.map(single_hop_summary, tasks)

        # figures_svg renders plots; single_hop_summary never imports it.
        self._edit("repro.experiments.figures_svg")
        warm = ShardRunner(jobs=1, cache=ResultCache(tmp_path), explain=True)
        with warm:
            warm.map(single_hop_summary, tasks)
        assert warm.last_report.executed == 0
        assert warm.last_report.cache_hits == 3
        (report,) = warm.explanations
        assert report.status_counts() == {"hit": 3}

    def test_closure_edit_invalidates_and_names_the_module(self, tmp_path):
        tasks = small_tasks(2)
        with ShardRunner(jobs=1, cache=ResultCache(tmp_path)) as cold:
            cold.map(single_hop_summary, tasks)

        self._edit("repro.sim.link")
        warm = ShardRunner(jobs=1, cache=ResultCache(tmp_path), explain=True)
        with warm:
            warm.map(single_hop_summary, tasks)
        assert warm.last_report.cache_hits == 0
        assert warm.last_report.executed == 2
        (report,) = warm.explanations
        assert report.status_counts() == {"code-changed": 2}
        assert report.changed_modules() == ["repro.sim.link"]
        assert "repro.sim.link" in report.summary()

    def test_sweep_runner_shares_the_delta_keys(self, tmp_path):
        tasks = small_tasks(2)
        with SweepRunner(jobs=1, cache=ResultCache(tmp_path)) as cold:
            cold.map(single_hop_summary, tasks)
        self._edit("repro.experiments.figures_svg")
        warm = SweepRunner(jobs=1, cache=ResultCache(tmp_path), explain=True)
        with warm:
            warm.map(single_hop_summary, tasks)
        assert warm.last_report.executed == 0
        (report,) = warm.explanations
        assert report.hit_rate == 1.0


class TestShardWorkerRegistry:
    def test_shared_trace_returns_none_when_unpublished(self):
        from repro.runner.shard import shared_trace

        assert shared_trace("never-published") is None

    def test_registry_attaches_inline_handles(self):
        from repro.runner import shard as shard_mod

        trace = tiny_trace()
        handle, _ = publish_trace(trace, use_shm=False)
        shard_mod._register_traces({"t": handle})
        try:
            got = shard_mod.shared_trace("t")
            assert np.array_equal(got.times, trace.times)
        finally:
            shard_mod._PROCESS_TRACES.pop("t", None)

    def test_store_records_are_json_lines(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with ShardWriter(path) as out:
            out.write(0, {"mean": 1.5})
        (line,) = path.read_text().splitlines()
        assert json.loads(line) == {"i": 0, "r": {"mean": 1.5}}
