"""Property tests of scheduler edge cases.

The corners the broad invariant sweeps rarely reach:

* a capacity scheduler (DRR, SCFQ) with exactly one backlogged class
  must degenerate to plain FIFO over that class;
* zero or negative weights/SDPs are configuration errors, not silent
  division hazards;
* WTP and quantized WTP break priority ties deterministically towards
  the higher class (the paper's Eq 11 convention), and repeated
  decisions over unchanged state agree;
* BPR allocates a zero rate to a class with empty backlog and splits
  the full capacity over the others in s_i * q_i proportion (Eqs 8-9).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.schedulers.bpr import BPRScheduler
from repro.schedulers.drr import DRRScheduler
from repro.schedulers.quantized_wtp import QuantizedWTPScheduler
from repro.schedulers.wfq import SCFQScheduler
from repro.schedulers.wtp import WTPScheduler

from .conftest import make_packet

pytestmark = pytest.mark.property

#: Powers of two, so priority arithmetic in the tie-break tests is
#: exact: with dyadic arrival offsets, (now - arrived) * sdp round-trips
#: without rounding error and ties are genuine float equality.
SDPS = (1.0, 2.0, 4.0, 8.0)

size_strategy = st.floats(min_value=1.0, max_value=1500.0)


def _drain(scheduler, now: float = 1e4):
    """Pop every queued packet; returns them in service order."""
    served = []
    while scheduler.backlogged:
        served.append(scheduler.select(now))
    return served


# ----------------------------------------------------------------------
# Single backlogged class: capacity schedulers degenerate to FIFO
# ----------------------------------------------------------------------
@given(
    weights=st.lists(
        st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=4
    ),
    data=st.data(),
    sizes=st.lists(size_strategy, min_size=1, max_size=20),
)
@settings(max_examples=80, deadline=None)
def test_drr_single_backlogged_class_is_fifo(weights, data, sizes):
    scheduler = DRRScheduler(weights)
    cid = data.draw(
        st.integers(min_value=0, max_value=len(weights) - 1), label="class"
    )
    for i, size in enumerate(sizes):
        scheduler.enqueue(
            make_packet(i, class_id=cid, size=size, created_at=float(i)), float(i)
        )
    served = _drain(scheduler)
    assert [p.packet_id for p in served] == list(range(len(sizes)))
    assert all(p.class_id == cid for p in served)
    assert not scheduler.backlogged


@given(
    weights=st.lists(
        st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=4
    ),
    data=st.data(),
    sizes=st.lists(size_strategy, min_size=1, max_size=20),
)
@settings(max_examples=80, deadline=None)
def test_scfq_single_backlogged_class_is_fifo(weights, data, sizes):
    scheduler = SCFQScheduler(weights)
    cid = data.draw(
        st.integers(min_value=0, max_value=len(weights) - 1), label="class"
    )
    for i, size in enumerate(sizes):
        scheduler.enqueue(
            make_packet(i, class_id=cid, size=size, created_at=float(i)), float(i)
        )
    served = _drain(scheduler)
    assert [p.packet_id for p in served] == list(range(len(sizes)))
    assert all(p.class_id == cid for p in served)


# ----------------------------------------------------------------------
# Weight validation
# ----------------------------------------------------------------------
@given(bad=st.floats(max_value=0.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_non_positive_weights_rejected(bad):
    with pytest.raises(ConfigurationError):
        DRRScheduler([1.0, bad])
    with pytest.raises(ConfigurationError):
        SCFQScheduler([1.0, bad])
    with pytest.raises(ConfigurationError):
        WTPScheduler((bad, 1.0) if bad < 1.0 else (bad, bad + 1.0))
    with pytest.raises(ConfigurationError):
        BPRScheduler((bad, 1.0) if bad < 1.0 else (bad, bad + 1.0))


def test_non_increasing_sdps_rejected():
    with pytest.raises(ConfigurationError):
        WTPScheduler((1.0, 1.0))
    with pytest.raises(ConfigurationError):
        WTPScheduler((2.0, 1.0))


def test_drr_rejects_non_positive_quantum_scale():
    with pytest.raises(ConfigurationError):
        DRRScheduler([1.0, 2.0], quantum_scale=0.0)


# ----------------------------------------------------------------------
# WTP / quantized WTP tie-breaking
# ----------------------------------------------------------------------
@given(
    m=st.integers(min_value=8, max_value=800),
    pair=st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    ).filter(lambda p: p[0] < p[1]),
)
@settings(max_examples=120, deadline=None)
def test_wtp_breaks_exact_ties_towards_higher_class(m, pair):
    low, high = pair
    now = 100.0
    waited = m / 16.0  # dyadic, so k / s * s == k exactly for these SDPs
    scheduler = WTPScheduler(SDPS)
    for cid in (low, high):
        arrived = now - waited / SDPS[cid]
        scheduler.enqueue(
            make_packet(cid, class_id=cid, size=100.0, created_at=arrived),
            arrived,
        )
    # Both heads hold priority exactly `waited`; the tie must go up.
    assert scheduler.choose_class(now) == high
    # Decisions over unchanged state are deterministic.
    assert scheduler.choose_class(now) == high


@given(
    m=st.integers(min_value=1, max_value=5),
    pair=st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    ).filter(lambda p: p[0] < p[1]),
    offsets=st.tuples(
        st.floats(min_value=0.0, max_value=3.9),
        st.floats(min_value=0.0, max_value=3.9),
    ),
)
@settings(max_examples=120, deadline=None)
def test_quantized_wtp_breaks_epoch_ties_towards_higher_class(
    m, pair, offsets
):
    epoch = 4.0
    low, high = pair
    now = 100 * epoch
    scheduler = QuantizedWTPScheduler(SDPS, epoch=epoch)
    # waited_epochs * sdp is equal for both classes by construction;
    # the intra-epoch offsets must not influence the decision.
    for cid, other, offset in ((low, high, offsets[0]), (high, low, offsets[1])):
        waited_epochs = m * int(SDPS[other])
        arrived = (100 - waited_epochs) * epoch + offset
        scheduler.enqueue(
            make_packet(cid, class_id=cid, size=100.0, created_at=arrived),
            arrived,
        )
    assert scheduler.choose_class(now) == high
    assert scheduler.choose_class(now) == high


# ----------------------------------------------------------------------
# BPR with an empty class backlog (Eqs 8-9)
# ----------------------------------------------------------------------
@given(
    capacity=st.floats(min_value=0.5, max_value=10.0),
    low_sizes=st.lists(size_strategy, min_size=1, max_size=5),
    mid_sizes=st.lists(size_strategy, min_size=1, max_size=5),
)
@settings(max_examples=80, deadline=None)
def test_bpr_rates_with_one_class_empty(capacity, low_sizes, mid_sizes):
    sdps = (1.0, 2.0, 4.0)
    scheduler = BPRScheduler(sdps, capacity=capacity)
    pid = 0
    for cid, sizes in ((0, low_sizes), (1, mid_sizes)):
        for size in sizes:
            scheduler.enqueue(
                make_packet(pid, class_id=cid, size=size, created_at=0.0), 0.0
            )
            pid += 1
    scheduler.select(0.0)  # on_select recomputes rates over the rest
    rates = scheduler.current_rates
    backlog = scheduler.queues.bytes_backlog
    assert backlog[2] == 0.0
    assert rates[2] == 0.0  # empty class gets no rate
    weight_sum = sum(s * q for s, q in zip(sdps, backlog))
    if weight_sum == 0.0:
        assert rates == (0.0, 0.0, 0.0)
    else:
        # Eq 9: the whole capacity is split over backlogged classes...
        assert sum(rates) == pytest.approx(capacity, rel=1e-12)
        # ...and Eq 8: in s_i * q_i proportion.
        for cid in range(3):
            expected = sdps[cid] * backlog[cid] * capacity / weight_sum
            assert rates[cid] == pytest.approx(expected, rel=1e-12, abs=0.0)
