"""Tests for the coupled delay+loss experiment harness."""

from __future__ import annotations

import math

import pytest

from repro.experiments.lossy import (
    LossyConfig,
    LossyPoint,
    format_lossy,
    run_lossy_sweep,
)


QUICK = dict(horizon=6e4, warmup=3e3)


class TestLossyPoint:
    def test_ratios(self):
        point = LossyPoint(
            offered_load=1.0,
            mean_delays=[8.0, 4.0, 2.0],
            loss_fractions=[0.4, 0.2, 0.1],
            total_drops=10,
            departures=100,
        )
        assert point.delay_ratios() == pytest.approx([2.0, 2.0])
        assert point.loss_ratios() == pytest.approx([2.0, 2.0])

    def test_zero_loss_gives_nan_ratio(self):
        point = LossyPoint(1.0, [2.0, 1.0], [0.1, 0.0], 5, 50)
        assert math.isnan(point.loss_ratios()[0])


class TestSweep:
    def test_no_drops_below_saturation(self):
        config = LossyConfig(offered_loads=(0.85,), **QUICK)
        (point,) = run_lossy_sweep(config)
        assert point.total_drops == 0
        assert point.departures > 1000

    def test_overload_drops_and_proportional_losses(self):
        config = LossyConfig(offered_loads=(1.3,), **QUICK)
        (point,) = run_lossy_sweep(config)
        assert point.total_drops > 200
        for ratio in point.loss_ratios():
            assert ratio == pytest.approx(2.0, rel=0.3)

    def test_delays_stay_ordered_under_loss(self):
        config = LossyConfig(offered_loads=(1.2,), **QUICK)
        (point,) = run_lossy_sweep(config)
        delays = point.mean_delays
        assert delays[0] > delays[1] > delays[2] > delays[3]

    def test_windowed_plr_variant_runs(self):
        config = LossyConfig(
            offered_loads=(1.2,), plr_window=1000, **QUICK
        )
        (point,) = run_lossy_sweep(config)
        assert point.total_drops > 0

    def test_format_contains_all_loads(self):
        config = LossyConfig(offered_loads=(0.9, 1.2), **QUICK)
        text = format_lossy(run_lossy_sweep(config), config)
        assert "0.90" in text and "1.20" in text
        assert "dR12" in text and "lR34" in text


class TestAnalyticOverlay:
    def test_rows_and_fidelity(self):
        from repro.experiments import format_overlay, run_analytic_overlay

        rows = run_analytic_overlay(utilizations=(0.8,), horizon=1e5)
        assert len(rows) == 4
        for row in rows:
            assert row.simulation_gap < 0.10
        text = format_overlay(rows)
        assert "kleinrock" in text and "0.80" in text

    def test_model_gap_shrinks_with_load(self):
        from repro.experiments import run_analytic_overlay

        rows = run_analytic_overlay(utilizations=(0.7, 0.95), horizon=1e5)
        by_rho = {}
        for row in rows:
            by_rho.setdefault(row.utilization, []).append(row.model_gap)
        assert (
            sum(by_rho[0.95]) / len(by_rho[0.95])
            < sum(by_rho[0.7]) / len(by_rho[0.7])
        )
