"""Fan-in fusion: merge ordering and stale-cache invalidation.

The chain walk's upstream fixpoint (``Link._build_chain``) lets a
drain entry absorb *sibling* upstream links feeding the same server,
so a whole fan-in merge runs in one fused loop.  Two hard properties
are pinned here:

* **Merge ordering** (hypothesis): when two upstream links complete at
  the exact same timestamp, the merge server must receive their
  packets in ``(time, seq)`` calendar order -- bit-identically fused
  vs evented.  The traces force collisions by giving both upstreams
  identical integer arrival times and sizes on equal-capacity links,
  so every busy period produces simultaneous completions.

* **Stale-fusion invalidation** (regression): a cached chain used to
  revalidate only through its *members'* guards, so upstream-side
  topology edits after the first drain -- a new sibling link built
  mid-run, a target rebound, a route added -- could leave a stale
  walk (and a stale ``_chain_fuse`` decision) in place forever.  The
  simulator-wide ``_topo_version`` stamp closes this; these tests
  mutate the topology mid-run and require both a rebuild and exact
  fused-vs-evented equivalence across the edit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.flows import FlowRecorder, UserFlow
from repro.network.routed import RoutedNetwork
from repro.network.topology import FlowDemux
from repro.schedulers import make_scheduler
from repro.sim import Link, PacketSink, Simulator
from repro.traffic.trace import ArrivalTrace, TraceSource

SDPS = (1.0, 2.0, 4.0, 8.0)


class OrderSink:
    """Terminal recording exact hand-off order (the property under test)."""

    def __init__(self) -> None:
        self.seen: list[tuple] = []

    def receive(self, packet) -> None:
        self.seen.append(
            (packet.packet_id, packet.class_id, packet.departed_at)
        )


def _trace(times, cids, sizes) -> ArrivalTrace:
    return ArrivalTrace(
        np.asarray(times, dtype=np.float64),
        np.asarray(cids, dtype=np.int64),
        np.asarray(sizes, dtype=np.float64),
    )


def _run_merge(entries, scheduler: str, drain: bool):
    """Two equal-capacity upstreams replaying colliding traces into one
    merge server; returns (hand-off order, per-link counters)."""
    sim = Simulator()
    sink = OrderSink()
    merge = Link(
        sim,
        make_scheduler(scheduler, SDPS),
        capacity=1.0,
        target=FlowDemux(PacketSink(), cross_sink=sink),
        name="merge",
        drain=drain,
    )
    times, sizes = [], []
    t = 0.0
    for gap, _, _, size in entries:
        t += gap
        times.append(t)
        sizes.append(size)
    for index, cid_field in ((0, 1), (1, 2)):
        upstream = Link(
            sim,
            make_scheduler(scheduler, SDPS),
            capacity=1.0,
            target=merge,
            name=f"up{index}",
            drain=drain,
        )
        cids = [entry[cid_field] for entry in entries]
        TraceSource(
            sim, upstream, _trace(times, cids, sizes),
            first_packet_id=index * 10_000,
        ).start()
    sim.run()  # to full drain: every packet delivered
    counters = (merge.arrivals, merge.departures, merge.bytes_sent,
                merge.busy_time)
    return tuple(sink.seen), counters


#: (gap, class at upstream 0, class at upstream 1, size) per arrival --
#: integer gaps and sizes on unit-capacity links make upstream
#: completions land on integer instants, colliding across upstreams.
_ENTRIES = st.lists(
    st.tuples(
        st.integers(1, 3),
        st.integers(0, 3),
        st.integers(0, 3),
        st.sampled_from((1.0, 2.0)),
    ),
    min_size=1,
    max_size=24,
)


@pytest.mark.parametrize("scheduler", ("wtp", "drr"))
@given(entries=_ENTRIES)
@settings(max_examples=25, deadline=None)
def test_simultaneous_merge_handoff_order(scheduler: str, entries) -> None:
    fused_order, fused_counters = _run_merge(entries, scheduler, drain=True)
    event_order, event_counters = _run_merge(entries, scheduler, drain=False)
    assert fused_order == event_order
    assert fused_counters == event_counters
    assert len(fused_order) == 2 * len(entries)


def test_colliding_completions_really_collide() -> None:
    """The strategy above is only meaningful if simultaneous upstream
    completions actually occur; pin that on a deterministic example."""
    entries = [(1, 3, 0, 1.0), (1, 2, 1, 1.0), (1, 1, 2, 1.0)]
    order, counters = _run_merge(entries, "wtp", drain=True)
    assert len(order) == 6
    # Both upstreams complete at t=2,3,4: the merge receives pairs with
    # equal upstream departure instants, so its hand-off order must
    # interleave the two packet-id ranges (ties broken by the calendar
    # seq of the colliding completions, not by link identity).
    assert any(a[0] < 10_000 <= b[0] for a, b in zip(order, order[1:]))
    assert counters[0] == counters[1] == 6


# ----------------------------------------------------------------------
# Stale-fusion invalidation
# ----------------------------------------------------------------------
def _cross(sim, target, first_packet_id: int) -> None:
    """Fused-feeder cross traffic (class 0) spanning the whole run --
    an inline arrival source is what makes a chain *fuse* rather than
    park on every foreign calendar event."""
    times = [1.0 + 2.0 * k for k in range(60)]
    TraceSource(
        sim, target, _trace(times, [0] * 60, [0.5] * 60),
        first_packet_id=first_packet_id,
    ).start()


def _merge_with_flows(sim, drain: bool):
    recorder = FlowRecorder()
    merge = Link(
        sim,
        make_scheduler("wtp", SDPS),
        capacity=2.0,
        target=FlowDemux(recorder, PacketSink()),
        name="merge",
        drain=drain,
    )
    entry = Link(
        sim, make_scheduler("wtp", SDPS), capacity=1.0, target=merge,
        name="up0", drain=drain,
    )
    UserFlow(
        sim, entry, flow_id=0, class_id=3, num_packets=40,
        packet_size=1.0, period=1.5, first_packet_id=0,
    ).launch(0.5)
    _cross(sim, entry, first_packet_id=100_000)
    return entry, merge, recorder


def test_new_upstream_link_mid_run_rediscovered() -> None:
    """A sibling upstream built *after* the entry's chain was cached
    must be discovered: building a Link bumps ``_topo_version``, so the
    entry's next drain rebuilds its walk and absorbs the sibling."""

    def run(drain: bool):
        sim = Simulator()
        entry, merge, recorder = _merge_with_flows(sim, drain)
        state: dict = {}

        def add_sibling() -> None:
            state["cache_before"] = entry._chain_cache
            sibling = Link(
                sim, make_scheduler("wtp", SDPS), capacity=1.0,
                target=merge, name="up1", drain=drain,
            )
            UserFlow(
                sim, sibling, flow_id=1, class_id=1, num_packets=30,
                packet_size=1.0, period=1.5, first_packet_id=5_000,
            ).launch(sim.now + 0.25)

        sim.schedule(20.0, add_sibling)
        sim.run(until=150.0)
        delays = (
            tuple(recorder.flow_delays(0)),
            tuple(recorder.flow_delays(1)),
        )
        return sim, entry, state, delays

    sim_d, entry_d, state_d, delays_d = run(True)
    sim_e, _, _, delays_e = run(False)
    assert delays_d == delays_e
    assert len(delays_d[0]) == 40 and len(delays_d[1]) == 30
    # The entry had drained (and cached a two-member walk) before the
    # sibling existed, then rebuilt: the cache object was replaced and
    # the rebuilt walk fused all three members.
    assert state_d["cache_before"] is not None
    assert len(state_d["cache_before"].members) == 2
    rebuilt = entry_d._chain_cache
    assert rebuilt is not state_d["cache_before"]
    assert len(rebuilt.members) == 3
    assert entry_d._chain_fuse is True


def test_target_rebind_mid_run_invalidates_chain() -> None:
    """Rebinding ``link.target`` mid-run is an upstream-side edit the
    old guards never saw; the setter must invalidate and the next drain
    must deliver to the new target -- identically fused vs evented."""

    def run(drain: bool):
        sim = Simulator()
        first, second = FlowRecorder(), FlowRecorder()
        tail = Link(
            sim, make_scheduler("wtp", SDPS), capacity=2.0,
            target=FlowDemux(first, PacketSink()), name="tail", drain=drain,
        )
        entry = Link(
            sim, make_scheduler("wtp", SDPS), capacity=1.0, target=tail,
            name="entry", drain=drain,
        )
        UserFlow(
            sim, entry, flow_id=0, class_id=3, num_packets=60,
            packet_size=1.0, period=1.25, first_packet_id=0,
        ).launch(0.5)

        def rewire() -> None:
            tail.target = FlowDemux(second, PacketSink())

        sim.schedule(30.0, rewire)
        sim.run(until=200.0)
        return (
            tuple(first.flow_delays(0)),
            tuple(second.flow_delays(0)),
            (tail.arrivals, tail.departures, tail.bytes_sent,
             tail.busy_time),
        )

    fused = run(True)
    evented = run(False)
    assert fused == evented
    before, after, _ = fused
    assert len(before) > 0 and len(after) > 0
    assert len(before) + len(after) == 60


def test_route_added_mid_run_rediscovered() -> None:
    """Satellite regression: a route added mid-run both redirects new
    flows and forces cached chains (whose walks predate the route) to
    rebuild through the simulator-wide topology stamp."""

    def run(drain: bool):
        sim = Simulator()
        net = RoutedNetwork(sim, drain=drain)
        for node in "ABCD":
            net.add_node(node)
        for src, dst in (("A", "B"), ("B", "C"), ("B", "D")):
            net.add_link(src, dst, make_scheduler("wtp", SDPS), capacity=1.5)
        recorder_c, recorder_d = FlowRecorder(), FlowRecorder()
        net.add_route(0, ["A", "B", "C"], terminal=recorder_c)
        UserFlow(
            sim, net.ingress(0), flow_id=0, class_id=3, num_packets=50,
            packet_size=1.0, period=1.0, first_packet_id=0,
        ).launch(0.5)

        def add_route_and_flow() -> None:
            net.add_route(1, ["A", "B", "D"], terminal=recorder_d)
            UserFlow(
                sim, net.ingress(1), flow_id=1, class_id=1,
                num_packets=25, packet_size=1.0, period=1.0,
                first_packet_id=9_000,
            ).launch(sim.now + 0.125)

        sim.schedule(15.0, add_route_and_flow)
        sim.run(until=150.0)
        states = tuple(
            (link.arrivals, link.departures, link.bytes_sent,
             link.busy_time)
            for link in net.links.values()
        )
        return (
            tuple(recorder_c.flow_delays(0)),
            tuple(recorder_d.flow_delays(1)),
            states,
        )

    fused = run(True)
    evented = run(False)
    assert fused == evented
    assert len(fused[0]) == 50 and len(fused[1]) == 25
