"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_events_fire_in_insertion_order(self, sim):
        fired = []
        for label in "abc":
            sim.schedule(2.0, fired.append, label)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(7.5, lambda: None)
        sim.run()
        assert sim.now == 7.5

    def test_schedule_in_past_raises(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda: None)

    def test_schedule_at_current_time_allowed(self, sim):
        fired = []
        sim.schedule(3.0, lambda: sim.schedule(3.0, fired.append, "x"))
        sim.run()
        assert fired == ["x"]

    def test_schedule_after_relative_delay(self, sim):
        fired = []
        sim.schedule(2.0, lambda: sim.schedule_after(3.0, fired.append, "x"))
        sim.run()
        assert fired == ["x"]
        assert sim.now == 5.0

    def test_schedule_after_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_callback_without_payload_called_with_no_args(self, sim):
        calls = []
        sim.schedule(1.0, lambda: calls.append("no-arg"))
        sim.run()
        assert calls == ["no-arg"]


class TestCancellation:
    def test_cancellable_event_fires_like_plain(self, sim):
        fired = []
        sim.schedule_cancellable(2.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.run()
        assert fired == ["a", "b"]
        assert sim.events_processed == 2

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule_cancellable(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule_cancellable(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_cancel_one_of_many(self, sim):
        fired = []
        keep = sim.schedule_cancellable(1.0, fired.append, "keep")
        drop = sim.schedule_cancellable(2.0, fired.append, "drop")
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert not keep.cancelled

    def test_cancellable_in_past_raises(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_cancellable(5.0, lambda: None)


class TestRunUntil:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_run_until_fires_event_at_boundary(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_run_until_can_resume(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        sim.run(until=20.0)
        assert fired == ["a", "b"]
        assert sim.now == 20.0

    def test_run_until_in_past_raises(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=2.0)
        # The clock and calendar are untouched by the rejected call.
        assert sim.now == 5.0

    def test_run_until_now_is_a_noop(self, sim):
        sim.run(until=5.0)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_is_not_reentrant(self, sim):
        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule_after(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]


class TestIntrospection:
    def test_events_processed_counts_fired_only(self, sim):
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule_cancellable(2.0, lambda: None)
        handle.cancel()
        sim.run()
        assert sim.events_processed == 1

    def test_peek_skips_cancelled(self, sim):
        first = sim.schedule_cancellable(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0

    def test_peek_skips_run_of_consecutive_cancelled(self, sim):
        handles = [
            sim.schedule_cancellable(float(t), lambda: None)
            for t in range(1, 5)
        ]
        sim.schedule(9.0, lambda: None)
        for handle in handles:
            handle.cancel()
        assert sim.peek() == 9.0
        # The dead run is gone for good: peek stays O(1) afterwards.
        assert sim.pending == 1

    def test_peek_all_cancelled_returns_none(self, sim):
        handles = [
            sim.schedule_cancellable(float(t), lambda: None)
            for t in range(1, 4)
        ]
        for handle in handles:
            handle.cancel()
        assert sim.peek() is None
        assert sim.pending == 0

    def test_peek_does_not_fire_or_drop_live_events(self, sim):
        fired = []
        dead = sim.schedule_cancellable(1.0, lambda: fired.append("dead"))
        sim.schedule(2.0, lambda: fired.append("live"))
        dead.cancel()
        assert sim.peek() == 2.0
        assert fired == []
        sim.run()
        assert fired == ["live"]

    def test_peek_empty_returns_none(self, sim):
        assert sim.peek() is None

    def test_pending_counts_heap_entries(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2

    def test_step_returns_false_when_drained(self, sim):
        assert sim.step() is False
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False
