"""Tests for the R_D interval metric and end-to-end comparisons."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.metrics import (
    PercentileSummary,
    compare_flow_percentiles,
    interval_rd,
    rd_series,
    successive_ratio_rd,
    summarize_rd,
)
from repro.errors import ConfigurationError


class TestIntervalRd:
    def test_all_active_perfect_ratio(self):
        assert interval_rd([8.0, 4.0, 2.0, 1.0]) == pytest.approx(2.0)

    def test_mixed_ratios_average(self):
        value = interval_rd([9.0, 3.0, 1.0])  # ratios 3 and 3
        assert value == pytest.approx(3.0)

    def test_inactive_class_uses_normalized_ratio(self):
        """Classes 1 and 3 active (gap of 2 steps): (d1/d3)^(1/2)."""
        value = interval_rd([8.0, math.nan, 2.0])
        assert value == pytest.approx(2.0)

    def test_single_active_class_is_undefined(self):
        assert interval_rd([math.nan, 5.0, math.nan]) is None

    def test_no_active_classes_is_undefined(self):
        assert interval_rd([math.nan, math.nan]) is None

    def test_zero_mean_is_undefined(self):
        assert interval_rd([2.0, 0.0]) is None

    def test_inverted_differentiation_gives_rd_below_one(self):
        assert interval_rd([1.0, 2.0]) == pytest.approx(0.5)


class TestRdSeries:
    def test_skips_undefined_intervals(self):
        means = np.array(
            [
                [4.0, 2.0],
                [math.nan, 3.0],
                [6.0, 3.0],
            ]
        )
        series = rd_series(means)
        assert series == pytest.approx([2.0, 2.0])

    def test_empty_matrix(self):
        assert rd_series(np.empty((0, 3))) == []


class TestPercentileSummary:
    def test_five_point_summary(self):
        samples = list(range(1, 101))
        summary = PercentileSummary.from_samples(samples)
        assert summary.median == pytest.approx(50.5)
        assert summary.p5 < summary.p25 < summary.median
        assert summary.median < summary.p75 < summary.p95
        assert summary.count == 100

    def test_nan_samples_dropped(self):
        summary = PercentileSummary.from_samples([1.0, math.nan, 3.0])
        assert summary.count == 2
        assert summary.median == pytest.approx(2.0)

    def test_empty_gives_nan(self):
        summary = PercentileSummary.from_samples([])
        assert summary.count == 0
        assert math.isnan(summary.median)

    def test_summarize_rd_pipeline(self):
        means = np.array([[4.0, 2.0]] * 10 + [[8.0, 2.0]] * 10)
        summary = summarize_rd(means)
        assert summary.count == 20
        assert summary.p5 == pytest.approx(2.0)
        assert summary.p95 == pytest.approx(4.0)


class TestSuccessiveRatioRd:
    def test_average_of_pairs(self):
        assert successive_ratio_rd([8.0, 4.0, 1.0]) == pytest.approx(3.0)

    def test_requires_positive_means(self):
        with pytest.raises(ConfigurationError):
            successive_ratio_rd([1.0, 0.0])

    def test_requires_two_classes(self):
        with pytest.raises(ConfigurationError):
            successive_ratio_rd([1.0])


class TestEndToEndComparison:
    def test_consistent_experiment(self):
        low = [10.0, 12.0, 14.0, 16.0, 20.0] * 4
        high = [d / 2 for d in low]
        outcome = compare_flow_percentiles([low, high])
        assert outcome.consistent
        assert outcome.rd == pytest.approx(2.0)
        assert outcome.percentile_matrix.shape == (2, 10)

    def test_inconsistency_detected(self):
        low = [1.0] * 20
        high = [2.0] * 20  # higher class strictly worse
        outcome = compare_flow_percentiles([low, high])
        assert not outcome.consistent
        assert outcome.inconsistencies == 10  # every percentile cell

    def test_ties_are_consistent(self):
        same = [5.0] * 20
        outcome = compare_flow_percentiles([same, list(same)])
        assert outcome.consistent
        assert outcome.rd == pytest.approx(1.0)

    def test_three_classes_pairwise(self):
        flows = [[8.0] * 10, [4.0] * 10, [2.0] * 10]
        outcome = compare_flow_percentiles(flows)
        assert outcome.consistent
        assert outcome.rd == pytest.approx(2.0)

    def test_tolerance_absorbs_small_violation(self):
        low = [1.0] * 10
        high = [1.05] * 10
        strict = compare_flow_percentiles([low, high])
        lax = compare_flow_percentiles([low, high], tolerance=0.10)
        assert not strict.consistent
        assert lax.consistent

    def test_single_flow_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_flow_percentiles([[1.0]])

    def test_empty_flow_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_flow_percentiles([[1.0], []])
