"""Bit-equivalence of the compiled (block-drawn) arrival path.

The compiled path's contract is *bit-identity*: every gap, size and
timestamp equals the scalar path's to the last ulp, so the golden
corpus and every seeded experiment are unaffected by which path runs.
These tests pin that contract for all five interarrival processes and
both size samplers, across chunk boundaries, interleaved scalar/block
draws, stop-time truncation, and full source-into-link emission.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.rng import BufferedExponentials
from repro.traffic import (
    ArrivalCursor,
    CompiledMixedSource,
    CompiledSource,
    ConstantInterarrivals,
    DiscretePacketSizes,
    FixedPacketSize,
    InterarrivalProcess,
    MMPPInterarrivals,
    OnOffInterarrivals,
    PacketIdAllocator,
    ParetoInterarrivals,
    PoissonInterarrivals,
    TrafficSource,
    paper_trimodal_sizes,
)
from repro.network.crosstraffic import MixedClassSource
from repro.traffic.trace import build_class_trace

pytestmark = pytest.mark.property


def make_process(kind: str, seed: int) -> InterarrivalProcess:
    rng = np.random.default_rng(seed)
    if kind == "pareto":
        return ParetoInterarrivals(0.01, 1.9, rng)
    if kind == "poisson":
        return PoissonInterarrivals(0.01, rng)
    if kind == "cbr":
        return ConstantInterarrivals(0.01)
    if kind == "onoff":
        return OnOffInterarrivals(
            peak_gap=0.002, mean_on=0.05, mean_off=0.03, rng=rng
        )
    if kind == "mmpp":
        return MMPPInterarrivals(
            rate_a=100.0, rate_b=400.0,
            mean_sojourn_a=0.1, mean_sojourn_b=0.05, rng=rng,
        )
    raise AssertionError(kind)


PROCESS_KINDS = ["pareto", "poisson", "cbr", "onoff", "mmpp"]


class RecordingSink:
    """Receiver stub capturing the full packet stream."""

    def __init__(self) -> None:
        self.packets: list[tuple] = []

    def receive(self, packet) -> None:
        self.packets.append(
            (
                packet.packet_id,
                packet.class_id,
                packet.size,
                packet.created_at,
                packet.flow_id,
            )
        )


class TestBlockDraws:
    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    @given(seed=st.integers(0, 2**32 - 1), split=st.integers(1, 199))
    @settings(max_examples=20, deadline=None)
    def test_draw_gaps_bit_identical_across_splits(self, kind, seed, split):
        """Any block split, with scalar draws interleaved, matches the
        pure scalar sequence value-for-value."""
        scalar = make_process(kind, seed)
        blocked = make_process(kind, seed)
        expected = [scalar.next_gap() for _ in range(200)]
        got = list(blocked.draw_gaps(split))
        got.append(blocked.next_gap())
        got.extend(blocked.draw_gaps(200 - split - 1))
        assert got[:200] == expected

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_discrete_sizes_bit_identical(self, seed):
        scalar = paper_trimodal_sizes(np.random.default_rng(seed))
        blocked = paper_trimodal_sizes(np.random.default_rng(seed))
        expected = [scalar.next_size() for _ in range(300)]
        got = list(blocked.draw_sizes(123))
        got.append(blocked.next_size())
        got.extend(blocked.draw_sizes(176))
        assert got == expected

    def test_fixed_sizes_block(self):
        sampler = FixedPacketSize(500.0)
        assert (sampler.draw_sizes(7) == 500.0).all()

    def test_base_class_fallback_matches_scalar(self):
        """A process that only implements next_gap still block-draws
        correctly through the base-class fallback."""

        class Alternating(InterarrivalProcess):
            def __init__(self) -> None:
                self._flip = False

            def next_gap(self) -> float:
                self._flip = not self._flip
                return 1.0 if self._flip else 2.0

            @property
            def mean(self) -> float:
                return 1.5

        process = Alternating()
        assert process.draw_gaps(4).tolist() == [1.0, 2.0, 1.0, 2.0]
        assert process.next_gap() == 1.0

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_buffered_exponentials_match_generator(self, seed):
        """draw(scale) reproduces rng.exponential(scale) exactly, for
        varying scales, across the prefetch-block boundary."""
        direct = np.random.default_rng(seed)
        buffered = BufferedExponentials(np.random.default_rng(seed), block=7)
        scales = [0.5, 2.0, 1.0 / 3.0, 10.0]
        for i in range(40):
            scale = scales[i % len(scales)]
            assert buffered.draw(scale) == direct.exponential(scale)


class TestCompiledTrace:
    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    @given(seed=st.integers(0, 2**32 - 1), chunk=st.integers(1, 64))
    @settings(max_examples=10, deadline=None)
    def test_build_class_trace_matches_scalar(self, kind, seed, chunk):
        """Compiled == scalar for every process, including tiny chunks
        that force many block boundaries before the horizon."""
        sizes_a = paper_trimodal_sizes(np.random.default_rng(seed + 1))
        sizes_b = paper_trimodal_sizes(np.random.default_rng(seed + 1))
        scalar = build_class_trace(
            2, make_process(kind, seed), sizes_a, horizon=1.0, compiled=False
        )
        compiled = build_class_trace(
            2, make_process(kind, seed), sizes_b, horizon=1.0,
            compiled=True, chunk=chunk,
        )
        assert (compiled.times == scalar.times).all()
        assert (compiled.sizes == scalar.sizes).all()
        assert (compiled.class_ids == scalar.class_ids).all()

    def test_horizon_before_first_arrival_gives_empty_trace(self):
        process = ConstantInterarrivals(5.0)
        trace = build_class_trace(
            0, process, FixedPacketSize(1.0), horizon=1.0, compiled=True
        )
        assert len(trace) == 0

    def test_truncation_exactly_at_chunk_boundary(self):
        """Horizon falling exactly on a block's last timestamp keeps the
        strict `< horizon` rule (the boundary arrival is dropped)."""
        process = ConstantInterarrivals(1.0)
        trace = build_class_trace(
            0, process, FixedPacketSize(1.0), horizon=8.0,
            compiled=True, chunk=4,
        )
        scalar = build_class_trace(
            0, ConstantInterarrivals(1.0), FixedPacketSize(1.0),
            horizon=8.0, compiled=False,
        )
        assert trace.times.tolist() == scalar.times.tolist()
        assert trace.times[-1] < 8.0

    def test_start_time_carry_folds_into_first_block(self):
        scalar = build_class_trace(
            0, ConstantInterarrivals(0.5), FixedPacketSize(1.0),
            horizon=20.0, start_time=3.0, compiled=False,
        )
        compiled = build_class_trace(
            0, ConstantInterarrivals(0.5), FixedPacketSize(1.0),
            horizon=20.0, start_time=3.0, compiled=True, chunk=5,
        )
        assert (compiled.times == scalar.times).all()


class TestCompiledSources:
    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    def test_compiled_source_emits_identical_stream(self, kind):
        """CompiledSource behind a cursor == TrafficSource, packet for
        packet (ids, classes, sizes, timestamps), incl. stop_time."""
        seed = 7
        scalar_sink, compiled_sink = RecordingSink(), RecordingSink()

        sim_a = Simulator()
        TrafficSource(
            sim_a, scalar_sink, 1,
            make_process(kind, seed),
            paper_trimodal_sizes(np.random.default_rng(99)),
            ids=PacketIdAllocator(), flow_id=5,
            start_time=0.01, stop_time=0.8,
        ).start()
        sim_a.run()

        sim_b = Simulator()
        cursor = ArrivalCursor(sim_b)
        cursor.add(
            CompiledSource(
                compiled_sink, 1,
                make_process(kind, seed),
                paper_trimodal_sizes(np.random.default_rng(99)),
                ids=PacketIdAllocator(), flow_id=5,
                start_time=0.01, stop_time=0.8, chunk=16,
            )
        )
        cursor.start()
        sim_b.run()

        assert compiled_sink.packets == scalar_sink.packets
        assert len(compiled_sink.packets) > 0

    @given(
        stop=st.floats(0.011, 2.0, allow_nan=False),
        chunk=st.integers(1, 16),
    )
    @settings(max_examples=15, deadline=None)
    def test_stop_time_truncation_any_position(self, stop, chunk):
        """stop_time landing anywhere relative to chunk boundaries --
        first element of a block, mid-block, beyond -- truncates the
        compiled stream exactly where the scalar source stops."""
        scalar_sink, compiled_sink = RecordingSink(), RecordingSink()
        sim_a = Simulator()
        TrafficSource(
            sim_a, scalar_sink, 0,
            make_process("pareto", 3), FixedPacketSize(1.0),
            stop_time=stop,
        ).start()
        sim_a.run()
        sim_b = Simulator()
        cursor = ArrivalCursor(sim_b)
        cursor.add(
            CompiledSource(
                compiled_sink, 0,
                make_process("pareto", 3), FixedPacketSize(1.0),
                stop_time=stop, chunk=chunk,
            )
        )
        cursor.start()
        sim_b.run()
        assert compiled_sink.packets == scalar_sink.packets

    def test_cursor_merges_sources_with_shared_ids(self):
        """Three sources on one cursor allocate shared packet ids in the
        same global order as three scalar sources on the calendar."""
        kinds = ["pareto", "poisson", "onoff"]

        scalar_sink = RecordingSink()
        sim_a = Simulator()
        ids_a = PacketIdAllocator()
        for class_id, kind in enumerate(kinds):
            TrafficSource(
                sim_a, scalar_sink, class_id,
                make_process(kind, 11 + class_id), FixedPacketSize(100.0),
                ids=ids_a, stop_time=0.5,
            ).start()
        sim_a.run()

        compiled_sink = RecordingSink()
        sim_b = Simulator()
        ids_b = PacketIdAllocator()
        cursor = ArrivalCursor(sim_b)
        for class_id, kind in enumerate(kinds):
            cursor.add(
                CompiledSource(
                    compiled_sink, class_id,
                    make_process(kind, 11 + class_id), FixedPacketSize(100.0),
                    ids=ids_b, stop_time=0.5, chunk=32,
                )
            )
        cursor.start()
        sim_b.run()

        assert compiled_sink.packets == scalar_sink.packets
        assert len(compiled_sink.packets) > 100

    def test_cursor_keeps_one_pending_event(self):
        sim = Simulator()
        cursor = ArrivalCursor(sim)
        for seed in range(5):
            cursor.add(
                CompiledSource(
                    RecordingSink(), 0,
                    make_process("poisson", seed), FixedPacketSize(1.0),
                )
            )
        cursor.start()
        assert sim.pending == 1
        assert cursor.pending_sources == 5

    def test_mixed_source_matches_scalar(self):
        """CompiledMixedSource == MixedClassSource: same per-packet
        class draws, sizes, ids and timestamps."""
        probs = (0.4, 0.3, 0.2, 0.1)

        scalar_sink = RecordingSink()
        sim_a = Simulator()
        MixedClassSource(
            sim_a, scalar_sink,
            make_process("pareto", 21), probs, 500.0,
            np.random.default_rng(77), ids=PacketIdAllocator(),
        ).start()
        sim_a.run(until=2.0)

        compiled_sink = RecordingSink()
        sim_b = Simulator()
        cursor = ArrivalCursor(sim_b)
        cursor.add(
            CompiledMixedSource(
                compiled_sink,
                make_process("pareto", 21), probs, 500.0,
                np.random.default_rng(77), ids=PacketIdAllocator(), chunk=64,
            )
        )
        cursor.start()
        sim_b.run(until=2.0)

        assert compiled_sink.packets == scalar_sink.packets
        assert len(compiled_sink.packets) > 50
        classes = {p[1] for p in compiled_sink.packets}
        assert classes == {0, 1, 2, 3}
