"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.sim import DelayMonitor, Link, PacketSink, Simulator
from repro.sim.packet import Packet
from repro.sim.rng import RandomStreams
from repro.traffic import (
    FixedPacketSize,
    PacketIdAllocator,
    PoissonInterarrivals,
    TrafficSource,
)


#: The one seed shared by every deterministic fixture in the suite.
#: Tests needing their own streams should still take an explicit seed
#: argument so a failure reproduces from the test id alone.
GLOBAL_TEST_SEED = 12345

# Property tests must not flake between runs: derandomize Hypothesis so
# example generation is a pure function of each test, independent of
# wall clock and process entropy (CI and local runs explore identical
# examples).
hypothesis_settings.register_profile("deterministic", derandomize=True)
hypothesis_settings.load_profile("deterministic")


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(GLOBAL_TEST_SEED)


def make_packet(
    packet_id: int = 0,
    class_id: int = 0,
    size: float = 100.0,
    created_at: float = 0.0,
    flow_id: int | None = None,
) -> Packet:
    """Packet factory with sensible defaults."""
    return Packet(packet_id, class_id, size, created_at, flow_id)


def run_poisson_link(
    scheduler,
    rates,
    horizon: float = 5e4,
    capacity: float = 1.0,
    packet_size: float = 1.0,
    seed: int = 0,
    warmup_fraction: float = 0.05,
):
    """Drive a scheduler with per-class Poisson traffic; return
    (mean delays per class, link).  Used across scheduler tests."""
    simulator = Simulator()
    streams = RandomStreams(seed)
    link = Link(simulator, scheduler, capacity, target=PacketSink())
    monitor = DelayMonitor(
        scheduler.num_classes, warmup=horizon * warmup_fraction
    )
    link.add_monitor(monitor)
    ids = PacketIdAllocator()
    for class_id, rate in enumerate(rates):
        TrafficSource(
            simulator,
            link,
            class_id,
            PoissonInterarrivals(1.0 / rate, streams.generator()),
            FixedPacketSize(packet_size),
            ids=ids,
        ).start()
    simulator.run(until=horizon)
    return monitor.mean_delays(), link
