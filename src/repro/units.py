"""Unit conventions shared across the library.

The paper normalizes time to an arbitrary unit and expresses results in
"p-units" -- multiples of the *average packet transmission time*.  With
the paper's trimodal packet-size mix (40% x 40 B, 50% x 550 B, 10% x
1500 B) the average packet is 441 bytes, and the paper fixes the average
transmission time at 11.2 time units, which pins the normalized link
capacity at 441 / 11.2 = 39.375 bytes per time unit.

All simulator internals use (bytes, time units, bytes-per-time-unit).
Helpers below convert to and from SI-flavoured quantities (bits per
second, seconds) for the multi-hop study, which the paper states in
Mbps/kbps.
"""

from __future__ import annotations

__all__ = [
    "PAPER_MEAN_PACKET_BYTES",
    "PAPER_P_UNIT",
    "PAPER_LINK_CAPACITY",
    "p_units_to_time",
    "time_to_p_units",
    "bits_per_second_to_bytes_per_unit",
    "transmission_time",
]

#: Mean packet size of the paper's trimodal mix, in bytes.
PAPER_MEAN_PACKET_BYTES = 0.4 * 40 + 0.5 * 550 + 0.1 * 1500  # = 441.0

#: One "p-unit": the average packet transmission time, in time units.
PAPER_P_UNIT = 11.2

#: Normalized link capacity implied by the two constants above
#: (bytes per time unit).
PAPER_LINK_CAPACITY = PAPER_MEAN_PACKET_BYTES / PAPER_P_UNIT  # = 39.375


def p_units_to_time(p_units: float, p_unit: float = PAPER_P_UNIT) -> float:
    """Convert a duration expressed in p-units to simulator time units."""
    return p_units * p_unit


def time_to_p_units(time_units: float, p_unit: float = PAPER_P_UNIT) -> float:
    """Convert a duration in simulator time units to p-units."""
    return time_units / p_unit


def bits_per_second_to_bytes_per_unit(
    bits_per_second: float, seconds_per_unit: float = 1.0
) -> float:
    """Convert a rate in bits/s to bytes per simulator time unit.

    ``seconds_per_unit`` sets how much wall-clock time one simulator time
    unit represents.  The multi-hop experiments use one unit == one
    second divided by an arbitrary scale; only ratios matter because the
    paper reports only queueing delays.
    """
    return bits_per_second / 8.0 * seconds_per_unit


def transmission_time(size_bytes: float, capacity_bytes_per_unit: float) -> float:
    """Time to serialize ``size_bytes`` on a link of the given capacity."""
    if capacity_bytes_per_unit <= 0:
        raise ValueError("link capacity must be positive")
    return size_bytes / capacity_bytes_per_unit
