"""Table 1: end-to-end R_D over the (F, R_u) x (K, rho) grid.

Sixteen cells: user-flow length F in {10, 100} packets, user-flow rate
R_u in {50, 200} kbps, path length K in {4, 8} hops, link utilization
rho in {0.85, 0.95}.  Each cell runs M user experiments and reports the
averaged end-to-end delay ratio R_D (ideal 2.0 for SDP ratio 2) plus
the count of inconsistent experiments (paper: zero everywhere; R_D
between 2.0 and 2.3, improving with K and rho).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.metrics import EndToEndComparison
from ..network.multihop import MultiHopConfig, MultiHopResult
from ..runner import MultiHopTask, SweepRunner, multihop_summary, serial_runner

__all__ = ["TableOneConfig", "TableOneCell", "run_table1", "format_table1"]


@dataclass(frozen=True)
class TableOneConfig:
    """Grid plus per-cell simulation scale (paper defaults)."""

    hops_values: tuple[int, ...] = (4, 8)
    utilizations: tuple[float, ...] = (0.85, 0.95)
    flow_packets_values: tuple[int, ...] = (10, 100)
    flow_rates_kbps: tuple[float, ...] = (50.0, 200.0)
    experiments: int = 100
    warmup: float = 100_000.0
    seed: int = 1
    #: Run every cell under the runtime invariant checker (one per hop).
    check_invariants: bool = False
    #: Drive cross-traffic through the compiled arrival cursor.
    compiled_arrivals: bool = True
    #: Busy-period drain kernel on every hop's link (bit-identical).
    drain_kernel: bool = True

    def scaled(self, factor: float) -> "TableOneConfig":
        return TableOneConfig(
            hops_values=self.hops_values,
            utilizations=self.utilizations,
            flow_packets_values=self.flow_packets_values,
            flow_rates_kbps=self.flow_rates_kbps,
            experiments=max(5, round(self.experiments * factor)),
            warmup=max(5_000.0, self.warmup * factor),
            seed=self.seed,
            check_invariants=self.check_invariants,
            compiled_arrivals=self.compiled_arrivals,
            drain_kernel=self.drain_kernel,
        )


@dataclass
class TableOneCell:
    """One Table 1 cell and its measured outcome."""

    hops: int
    utilization: float
    flow_packets: int
    flow_rate_kbps: float
    result: MultiHopResult

    @property
    def rd(self) -> float:
        return self.result.rd

    @property
    def inconsistent(self) -> int:
        return self.result.inconsistent_experiments


def table1_tasks(config: TableOneConfig) -> list[MultiHopTask]:
    """The sixteen-cell grid, flattened in the paper's row-major order."""
    tasks = []
    for hops in config.hops_values:
        for rho in config.utilizations:
            for flow_packets in config.flow_packets_values:
                for rate in config.flow_rates_kbps:
                    tasks.append(
                        MultiHopTask(
                            config=MultiHopConfig(
                                hops=hops,
                                utilization=rho,
                                flow_packets=flow_packets,
                                flow_rate_kbps=rate,
                                experiments=config.experiments,
                                warmup=config.warmup,
                                seed=config.seed,
                                drain_kernel=config.drain_kernel,
                            ),
                            check_invariants=config.check_invariants,
                            compiled_arrivals=config.compiled_arrivals,
                        )
                    )
    return tasks


def run_table1(
    config: TableOneConfig, runner: Optional[SweepRunner] = None
) -> list[TableOneCell]:
    """Run every cell of the Table 1 grid (cells fan out over ``runner``)."""
    if runner is None:
        runner = serial_runner()
    tasks = table1_tasks(config)
    summaries = runner.map(multihop_summary, tasks)

    cells = []
    for task, summary in zip(tasks, summaries):
        mh_config = task.config
        result = MultiHopResult(
            config=mh_config,
            comparisons=[
                EndToEndComparison(
                    percentile_matrix=np.asarray(
                        c["percentile_matrix"], dtype=float
                    ),
                    inconsistencies=c["inconsistencies"],
                    rd=c["rd"],
                )
                for c in summary["comparisons"]
            ],
        )
        cells.append(
            TableOneCell(
                hops=mh_config.hops,
                utilization=mh_config.utilization,
                flow_packets=mh_config.flow_packets,
                flow_rate_kbps=mh_config.flow_rate_kbps,
                result=result,
            )
        )
    return cells


def format_table1(cells: Sequence[TableOneCell]) -> str:
    """Render the measured grid in the paper's row/column layout."""
    if not cells:
        return "Table 1: no cells"
    columns = sorted(
        {(c.flow_packets, c.flow_rate_kbps) for c in cells}
    )
    rows = sorted({(c.hops, c.utilization) for c in cells})
    by_key = {
        (c.hops, c.utilization, c.flow_packets, c.flow_rate_kbps): c
        for c in cells
    }
    header = f"{'':>14}" + "".join(
        f"{'F=%d,Ru=%g' % col:>16}" for col in columns
    )
    lines = [
        "Table 1: end-to-end R_D (ideal 2.00); '!' marks inconsistent runs",
        header,
    ]
    for hops, rho in rows:
        row_label = f"K={hops}, rho={rho:g}"
        entries = []
        for flow_packets, rate in columns:
            cell = by_key.get((hops, rho, flow_packets, rate))
            if cell is None:
                entries.append(f"{'--':>16}")
            else:
                mark = "!" if cell.inconsistent else ""
                entries.append(f"{cell.rd:>15.2f}{mark or ' '}")
        lines.append(f"{row_label:>14}" + "".join(entries))
    total_inconsistent = sum(c.inconsistent for c in cells)
    lines.append(f"inconsistent experiments across all cells: {total_inconsistent}")
    return "\n".join(lines)
