"""Analytic overlay: simulator vs Kleinrock vs the Eq 6 ideal.

The paper evaluates WTP purely by simulation ("in the absence of
appropriate analytical tools ... we use simulations").  For Poisson
inputs those tools *do* exist (Kleinrock's TDP solution,
:mod:`repro.theory.kleinrock`), which buys two things at once:

* a fidelity audit -- the event-driven WTP simulator should match the
  closed-form waits at every load, bounding simulation error; and
* an analytic restatement of the paper's central claim -- the TDP waits
  converge to the Eq 6 ideal proportional delays as rho -> 1, and the
  gap at each load *is* the undershoot Figure 1 shows.

One overlay row per (rho, class): measured mean delay, the Kleinrock
prediction, the ideal, and the two relative gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..schedulers.wtp import WTPScheduler
from ..sim.engine import Simulator
from ..sim.link import Link, PacketSink
from ..sim.monitor import DelayMonitor
from ..sim.rng import RandomStreams
from ..theory import (
    ServiceDistribution,
    proportional_delays_mg1,
    tdp_waits,
)
from ..traffic.poisson import PoissonInterarrivals
from ..traffic.sizes import FixedPacketSize
from ..traffic.source import PacketIdAllocator, TrafficSource

__all__ = ["OverlayRow", "run_analytic_overlay", "format_overlay"]


@dataclass
class OverlayRow:
    """One (rho, class) comparison."""

    utilization: float
    class_id: int              # 0-based
    measured: float
    kleinrock: float
    ideal: float

    @property
    def simulation_gap(self) -> float:
        """|measured - Kleinrock| / Kleinrock: simulator fidelity."""
        return abs(self.measured - self.kleinrock) / self.kleinrock

    @property
    def model_gap(self) -> float:
        """|Kleinrock - ideal| / ideal: WTP's distance from Eq 6."""
        return abs(self.kleinrock - self.ideal) / self.ideal


def run_analytic_overlay(
    utilizations: Sequence[float] = (0.7, 0.8, 0.9, 0.95),
    sdps: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    shares: tuple[float, ...] = (0.4, 0.3, 0.2, 0.1),
    horizon: float = 3e5,
    seed: int = 41,
) -> list[OverlayRow]:
    """Simulate WTP with Poisson unit-packet traffic per load; compare."""
    service = ServiceDistribution.deterministic(1.0)
    rows = []
    for rho in utilizations:
        rates = [rho * share for share in shares]
        sim = Simulator()
        streams = RandomStreams(seed)
        link = Link(sim, WTPScheduler(sdps), capacity=1.0, target=PacketSink())
        monitor = DelayMonitor(len(sdps), warmup=horizon * 0.05)
        link.add_monitor(monitor)
        ids = PacketIdAllocator()
        for class_id, rate in enumerate(rates):
            TrafficSource(
                sim, link, class_id,
                PoissonInterarrivals(1.0 / rate, streams.generator()),
                FixedPacketSize(1.0), ids=ids,
            ).start()
        sim.run(until=horizon)
        theory = tdp_waits(rates, sdps, service)
        ideal = proportional_delays_mg1(rates, sdps, service)
        for class_id, measured in enumerate(monitor.mean_delays()):
            rows.append(
                OverlayRow(
                    utilization=rho,
                    class_id=class_id,
                    measured=measured,
                    kleinrock=theory[class_id],
                    ideal=ideal[class_id],
                )
            )
    return rows


def format_overlay(rows: Sequence[OverlayRow]) -> str:
    """ASCII table of the three-way comparison."""
    lines = [
        "Analytic overlay: WTP simulator vs Kleinrock TDP vs Eq 6 ideal "
        "(Poisson, unit packets)",
        f"{'rho':>6} {'class':>6} {'measured':>9} {'kleinrock':>10} "
        f"{'ideal':>8} {'sim gap':>8} {'model gap':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.utilization:>6.2f} {row.class_id + 1:>6d} "
            f"{row.measured:>9.3f} {row.kleinrock:>10.3f} "
            f"{row.ideal:>8.3f} {row.simulation_gap:>7.1%} "
            f"{row.model_gap:>9.1%}"
        )
    return "\n".join(lines)
