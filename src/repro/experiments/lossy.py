"""Coupled delay-and-loss differentiation -- the paper's future work.

Section 7 flags the extension of the proportional model to *both*
performance metrics ("coupled delay and loss differentiation") as the
main open problem, and warns that WTP/BPR may degrade with bounded
buffers because they rely on long queues.  This harness measures
exactly that regime: a bounded-buffer link running a delay scheduler
*and* a PLR dropper simultaneously, swept across offered loads that
straddle the loss onset.

For each load the experiment reports, per class: mean queueing delay,
loss fraction, and the successive-class delay and loss ratios against
their proportional targets.  Expected shapes:

* below the loss onset, delay ratios behave as in Figure 1 and losses
  are zero;
* past saturation, PLR pins the loss ratios to the LDPs, while the
  delay ratios compress (bounded queues cap the waiting-time spread --
  the degradation the paper predicts for WTP/BPR with small buffers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..dropping.plr import PLRDropper
from ..schedulers.registry import make_scheduler
from ..sim.engine import Simulator
from ..sim.link import Link, PacketSink
from ..sim.monitor import DelayMonitor
from ..sim.rng import RandomStreams
from ..traffic.mix import ClassLoadDistribution, PAPER_DEFAULT_LOADS
from ..traffic.pareto import ParetoInterarrivals
from ..traffic.sizes import paper_trimodal_sizes
from ..traffic.source import PacketIdAllocator, TrafficSource
from ..units import PAPER_LINK_CAPACITY

__all__ = ["LossyConfig", "LossyPoint", "run_lossy_sweep", "format_lossy"]


@dataclass(frozen=True)
class LossyConfig:
    """Bounded-buffer sweep parameters."""

    scheduler: str = "wtp"
    sdps: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)
    #: LDPs: class 1 should lose 8x as often as class 4.
    ldps: tuple[float, ...] = (8.0, 4.0, 2.0, 1.0)
    loads: ClassLoadDistribution = field(
        default_factory=lambda: PAPER_DEFAULT_LOADS
    )
    offered_loads: tuple[float, ...] = (0.9, 1.0, 1.1, 1.3)
    buffer_packets: int = 100
    plr_window: int | None = None
    horizon: float = 2e5
    warmup: float = 1e4
    capacity: float = PAPER_LINK_CAPACITY
    seed: int = 29


@dataclass
class LossyPoint:
    """Measurements at one offered load."""

    offered_load: float
    mean_delays: list[float]
    loss_fractions: list[float]
    total_drops: int
    departures: int

    def delay_ratios(self) -> list[float]:
        return [
            self.mean_delays[i] / self.mean_delays[i + 1]
            for i in range(len(self.mean_delays) - 1)
        ]

    def loss_ratios(self) -> list[float]:
        out = []
        for a, b in zip(self.loss_fractions, self.loss_fractions[1:]):
            out.append(a / b if b > 0 else float("nan"))
        return out


def run_lossy_sweep(config: LossyConfig) -> list[LossyPoint]:
    """Run the bounded-buffer sweep; one point per offered load."""
    points = []
    num_classes = len(config.sdps)
    sizes_mean = paper_trimodal_sizes().mean
    for offered in config.offered_loads:
        sim = Simulator()
        streams = RandomStreams(config.seed)
        dropper = PLRDropper(config.ldps, window=config.plr_window)
        link = Link(
            sim,
            make_scheduler(config.scheduler, config.sdps),
            config.capacity,
            buffer_packets=config.buffer_packets,
            drop_policy=dropper,
            target=PacketSink(),
        )
        monitor = DelayMonitor(num_classes, warmup=config.warmup)
        link.add_monitor(monitor)
        ids = PacketIdAllocator()
        gaps = config.loads.mean_gaps(offered, config.capacity, sizes_mean)
        for class_id, gap in enumerate(gaps):
            TrafficSource(
                sim, link, class_id,
                ParetoInterarrivals(gap, rng=streams.generator()),
                paper_trimodal_sizes(streams.generator()),
                ids=ids,
            ).start()
        sim.run(until=config.horizon)
        fractions = [
            dropper.drops[c] / dropper.arrivals[c] if dropper.arrivals[c] else 0.0
            for c in range(num_classes)
        ]
        points.append(
            LossyPoint(
                offered_load=offered,
                mean_delays=monitor.mean_delays(),
                loss_fractions=fractions,
                total_drops=link.drops,
                departures=link.departures,
            )
        )
    return points


def format_lossy(points: Sequence[LossyPoint], config: LossyConfig) -> str:
    """ASCII table: delays, losses and their ratios per offered load."""
    n = len(config.sdps)
    delay_targets = [config.sdps[i + 1] / config.sdps[i] for i in range(n - 1)]
    loss_targets = [config.ldps[i] / config.ldps[i + 1] for i in range(n - 1)]
    lines = [
        "Coupled delay+loss differentiation (bounded buffer of "
        f"{config.buffer_packets} packets)",
        f"delay-ratio targets {delay_targets}, loss-ratio targets {loss_targets}",
        f"{'load':>6} {'drops':>8} "
        + " ".join(f"{'dR%d%d' % (i + 1, i + 2):>7}" for i in range(n - 1))
        + " "
        + " ".join(f"{'lR%d%d' % (i + 1, i + 2):>7}" for i in range(n - 1)),
    ]
    for p in points:
        delay_r = " ".join(f"{r:>7.2f}" for r in p.delay_ratios())
        loss_r = " ".join(
            f"{r:>7.2f}" if r == r else f"{'--':>7}" for r in p.loss_ratios()
        )
        lines.append(
            f"{p.offered_load:>6.2f} {p.total_drops:>8d} {delay_r} {loss_r}"
        )
    return "\n".join(lines)
