"""Shared single-hop experiment harness (Simulation Study A, Section 5).

One :class:`SingleHopConfig` describes a run: N classes of Pareto
traffic with the paper's trimodal packet sizes multiplexed onto one
link under a chosen scheduler.  :func:`run_single_hop` executes it and
returns measured per-class delays plus any requested interval monitors
and packet taps.

The harness generates the arrival *trace* first and replays it, for the
two reasons the paper's methodology needs: different schedulers can be
compared on identical arrivals (Figures 4/5), and the trace's FCFS
subset delays feed the Eq 7 feasibility verification that Section 3
prescribes for Figures 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.conservation import (
    conservation_residual,
    fcfs_mean_delay,
    subset_delay_function,
)
from ..core.ddp import ddps_from_sdps
from ..core.feasibility import FeasibilityReport, check_proportional_feasibility
from ..errors import ConfigurationError
from ..invariants import InvariantChecker, InvariantReport, verify_conservation_law
from ..schedulers.base import Scheduler
from ..schedulers.registry import make_scheduler
from ..sim.engine import Simulator
from ..sim.link import Link, PacketSink
from ..sim.monitor import DelayMonitor, IntervalDelayMonitor, PacketTap
from ..sim.rng import RandomStreams
from ..traffic.mix import ClassLoadDistribution
from ..traffic.pareto import ParetoInterarrivals
from ..traffic.sizes import paper_trimodal_sizes
from ..traffic.trace import ArrivalTrace, TraceSource, build_class_trace, merge_traces
from ..units import PAPER_LINK_CAPACITY, PAPER_P_UNIT

__all__ = ["SingleHopConfig", "SingleHopResult", "generate_trace",
           "run_single_hop", "replay_through_scheduler"]


@dataclass(frozen=True)
class SingleHopConfig:
    """One single-link simulation run (paper defaults pre-filled)."""

    scheduler: str = "wtp"
    sdps: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)
    utilization: float = 0.95
    loads: ClassLoadDistribution = field(
        default_factory=lambda: ClassLoadDistribution((0.4, 0.3, 0.2, 0.1))
    )
    horizon: float = 1e6            # simulation time units (paper: 10^6)
    warmup: float = 5e4             # discarded start-up interval
    seed: int = 1
    capacity: float = PAPER_LINK_CAPACITY
    pareto_shape: float = 1.9
    #: Monitoring timescales tau, in time units, for interval monitors.
    interval_taus: tuple[float, ...] = ()
    #: (start, end) windows for per-packet taps.
    tap_windows: tuple[tuple[float, float], ...] = ()
    keep_samples: bool = False
    #: Busy-period drain kernel A/B switch (bit-identical results; see
    #: :mod:`repro.sim.link`).  Part of the config, so sweep-cache
    #: fingerprints distinguish drained from evented runs.
    drain: bool = True

    def __post_init__(self) -> None:
        if len(self.sdps) != self.loads.num_classes:
            raise ConfigurationError("one SDP per class required")
        if self.warmup >= self.horizon:
            raise ConfigurationError("warmup must be below the horizon")

    @property
    def num_classes(self) -> int:
        return self.loads.num_classes

    @property
    def p_unit(self) -> float:
        """Average packet transmission time on this link (time units)."""
        return paper_trimodal_sizes().mean / self.capacity


@dataclass
class SingleHopResult:
    """Measurements of one single-hop run."""

    config: SingleHopConfig
    trace: ArrivalTrace
    monitor: DelayMonitor
    interval_monitors: dict[float, IntervalDelayMonitor]
    taps: list[PacketTap]
    link_utilization: float
    #: What the runtime invariant checker verified (``None`` when the
    #: run executed unchecked).
    invariants: Optional[InvariantReport] = None

    @property
    def mean_delays(self) -> list[float]:
        return self.monitor.mean_delays()

    @property
    def successive_ratios(self) -> list[float]:
        """Measured d_i / d_{i+1} (the paper's Figure 1/2 points)."""
        return self.monitor.successive_ratios()

    def target_ratios(self) -> list[float]:
        """Ideal successive ratios s_{i+1} / s_i (Eq 13)."""
        sdps = self.config.sdps
        return [sdps[i + 1] / sdps[i] for i in range(len(sdps) - 1)]

    # ------------------------------------------------------------------
    # Paper-methodology audits
    # ------------------------------------------------------------------
    def fcfs_aggregate_delay(self) -> float:
        """d(lambda): FCFS mean delay of this very trace."""
        return fcfs_mean_delay(
            self.trace, self.config.capacity, self.config.warmup
        )

    def conservation_residual(self) -> float:
        """Relative Eq 5 residual of the measured class delays."""
        rates = self.trace.class_rates(self.config.horizon)
        return conservation_residual(
            rates, self.mean_delays, self.fcfs_aggregate_delay()
        )

    def feasibility_report(
        self, relative_tolerance: float = 0.05
    ) -> FeasibilityReport:
        """Eq 7 check of this run's DDP target at this run's traffic.

        The tolerance is loose because subset delays are *measured*; the
        paper performs the identical check by simulating the FCFS
        server.
        """
        ddps = ddps_from_sdps(self.config.sdps)
        rates = self.trace.class_rates(self.config.horizon)
        subset_delay = subset_delay_function(
            self.trace, self.config.capacity, self.config.warmup
        )
        return check_proportional_feasibility(
            ddps, rates, subset_delay, relative_tolerance
        )


def generate_trace(
    config: SingleHopConfig, compiled: bool = True
) -> ArrivalTrace:
    """Draw the per-class Pareto arrival trace for a config.

    ``compiled`` selects block-drawn trace compilation (the default;
    bit-identical to the scalar loop, several times faster) or the
    scalar per-packet path for A/B comparison.
    """
    streams = RandomStreams(config.seed)
    sizes_mean = paper_trimodal_sizes().mean
    gaps = config.loads.mean_gaps(
        config.utilization, config.capacity, sizes_mean
    )
    per_class = []
    for class_id, gap in enumerate(gaps):
        interarrivals = ParetoInterarrivals(
            gap, config.pareto_shape, streams.generator()
        )
        sizes = paper_trimodal_sizes(streams.generator())
        per_class.append(
            build_class_trace(
                class_id, interarrivals, sizes, config.horizon,
                compiled=compiled,
            )
        )
    return merge_traces(per_class)


def replay_through_scheduler(
    trace: ArrivalTrace,
    scheduler: Scheduler,
    config: SingleHopConfig,
    check_invariants: bool = False,
    conservation_tolerance: float = 0.25,
) -> SingleHopResult:
    """Replay a trace through a scheduler and collect all measurements.

    With ``check_invariants`` the run is self-verifying: an
    :class:`~repro.invariants.InvariantChecker` attaches to the link,
    the kernel executes through
    :meth:`~repro.sim.engine.Simulator.run_checked`, and Kleinrock's
    conservation law (Eq 5) is checked post-run against the trace's
    FCFS reference delay within ``conservation_tolerance``.  Any
    violation raises :class:`~repro.errors.InvariantViolation`.
    """
    sim = Simulator()
    link = Link(
        sim, scheduler, config.capacity, target=PacketSink(),
        drain=config.drain,
    )
    monitor = DelayMonitor(
        config.num_classes, warmup=config.warmup, keep_samples=config.keep_samples
    )
    link.add_monitor(monitor)
    interval_monitors: dict[float, IntervalDelayMonitor] = {}
    for tau in config.interval_taus:
        interval = IntervalDelayMonitor(
            config.num_classes, tau=tau, warmup=config.warmup
        )
        interval_monitors[tau] = interval
        link.add_monitor(interval)
    taps = []
    for start, end in config.tap_windows:
        tap = PacketTap(config.num_classes, start, end)
        taps.append(tap)
        link.add_monitor(tap)

    source = TraceSource(sim, link, trace)
    source.start()
    checker = InvariantChecker(link).attach() if check_invariants else None
    if checker is not None:
        sim.run_checked(until=config.horizon)
    else:
        sim.run(until=config.horizon)
    for interval in interval_monitors.values():
        interval.finalize()
    invariants = None
    if checker is not None:
        invariants = checker.finalize()
        invariants.conservation_residual = verify_conservation_law(
            trace.class_rates(config.horizon),
            monitor.mean_delays(),
            fcfs_mean_delay(trace, config.capacity, config.warmup),
            tolerance=conservation_tolerance,
            sim_time=sim.now,
        )
    return SingleHopResult(
        config=config,
        trace=trace,
        monitor=monitor,
        interval_monitors=interval_monitors,
        taps=taps,
        link_utilization=link.utilization(config.horizon),
        invariants=invariants,
    )


def run_single_hop(
    config: SingleHopConfig,
    trace: Optional[ArrivalTrace] = None,
    check_invariants: bool = False,
) -> SingleHopResult:
    """Generate (or reuse) a trace and run it under ``config.scheduler``."""
    if trace is None:
        trace = generate_trace(config)
    scheduler = make_scheduler(config.scheduler, config.sdps)
    return replay_through_scheduler(
        trace, scheduler, config, check_invariants=check_invariants
    )
