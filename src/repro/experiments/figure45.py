"""Figures 4 and 5: microscopic views of BPR and WTP.

Three classes (s = 1, 2, 4) at rho = 0.95.  The *same* arrival streams
are replayed through BPR (Figure 4) and WTP (Figure 5), producing two
views each:

* View I: per-class average queueing delay in consecutive 30-p-unit
  intervals over a ~15,000-p-unit window.
* View II: per-packet queueing delay at departure over a ~1,000-p-unit
  window inside an overloaded stretch.

Expected shape: BPR's view II shows the sawtooth artifact (delays of
consecutive packets ramp up and collapse on new arrivals -- the
Proposition 1 pathology); WTP tracks proportional bands far more
smoothly.  :func:`sawtooth_score` quantifies the contrast: the mean
absolute delay change between consecutive departures of the same class,
normalized by the mean delay (higher = noisier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..runner import MicroscopicTask, SweepRunner, microscopic_summary, serial_runner
from ..traffic.mix import ClassLoadDistribution
from ..units import PAPER_P_UNIT
from .common import SingleHopConfig

__all__ = [
    "MicroscopicConfig",
    "MicroscopicViews",
    "run_figure45",
    "sawtooth_score",
    "format_figure45",
]

#: 3-class load split used for the microscopic views (the paper keeps
#: the default skew, reduced to three classes).
THREE_CLASS_LOADS = ClassLoadDistribution((0.5, 0.3, 0.2))


@dataclass(frozen=True)
class MicroscopicConfig:
    """Microscopic-view run; defaults reproduce the paper's setup."""

    sdps: tuple[float, ...] = (1.0, 2.0, 4.0)
    utilization: float = 0.95
    loads: ClassLoadDistribution = field(
        default_factory=lambda: THREE_CLASS_LOADS
    )
    seed: int = 7
    horizon: float = 4e5
    warmup: float = 2e4
    #: View I: interval averages of this many p-units...
    view1_tau_p_units: float = 30.0
    #: ...over a window this long (p-units).
    view1_window_p_units: float = 15000.0
    #: View II: per-packet samples over a window this long (p-units).
    view2_window_p_units: float = 1000.0
    #: Run both replays under the runtime invariant checker.
    check_invariants: bool = False
    #: Block-drawn trace compilation (bit-identical; much faster).
    compiled_arrivals: bool = True
    #: Busy-period drain kernel on the link (bit-identical; faster).
    drain: bool = True

    def scaled(self, factor: float) -> "MicroscopicConfig":
        return MicroscopicConfig(
            sdps=self.sdps,
            utilization=self.utilization,
            loads=self.loads,
            seed=self.seed,
            horizon=max(1e5, self.horizon * factor),
            warmup=max(5e3, self.warmup * factor),
            view1_tau_p_units=self.view1_tau_p_units,
            view1_window_p_units=self.view1_window_p_units,
            view2_window_p_units=self.view2_window_p_units,
            check_invariants=self.check_invariants,
            compiled_arrivals=self.compiled_arrivals,
            drain=self.drain,
        )


@dataclass
class MicroscopicViews:
    """Views I and II for one scheduler."""

    scheduler: str
    #: View I: (num_intervals, num_classes) mean-delay matrix.
    interval_means: np.ndarray
    #: View II: per class, (departure_time, delay) samples.
    packet_samples: list[list[tuple[float, float]]]

    def sawtooth_scores(self) -> list[float]:
        """Per-class sawtooth score from the view II samples."""
        return [sawtooth_score(samples) for samples in self.packet_samples]


def sawtooth_score(samples: Sequence[tuple[float, float]]) -> float:
    """Mean |delay step| between consecutive departures / mean delay."""
    if len(samples) < 2:
        return float("nan")
    delays = np.asarray([delay for _, delay in samples])
    mean = float(delays.mean())
    if mean <= 0:
        return float("nan")
    return float(np.abs(np.diff(delays)).mean()) / mean


def run_figure45(
    config: MicroscopicConfig,
    schedulers: tuple[str, str] = ("bpr", "wtp"),
    runner: Optional[SweepRunner] = None,
) -> dict[str, MicroscopicViews]:
    """Replay one trace through both schedulers; return both view sets.

    Each worker regenerates the identical trace from the shared seed, so
    both schedulers still see "the same arriving packet streams" while
    the two replays run in parallel.
    """
    if runner is None:
        runner = serial_runner()
    view1_tau = config.view1_tau_p_units * PAPER_P_UNIT
    # Both windows start after warm-up, inside the steady-state region.
    view1_start = config.warmup + 0.25 * (config.horizon - config.warmup)
    view1_end = view1_start + config.view1_window_p_units * PAPER_P_UNIT
    view2_start = view1_start
    view2_end = view2_start + config.view2_window_p_units * PAPER_P_UNIT

    tasks = [
        MicroscopicTask(
            config=SingleHopConfig(
                scheduler=name,
                sdps=config.sdps,
                utilization=config.utilization,
                loads=config.loads,
                horizon=config.horizon,
                warmup=config.warmup,
                seed=config.seed,
                interval_taus=(view1_tau,),
                tap_windows=((view2_start, view2_end),),
                drain=config.drain,
            ),
            scheduler=name,
            view1_tau=view1_tau,
            view1_start=view1_start,
            view1_end=view1_end,
            check_invariants=config.check_invariants,
            compiled_arrivals=config.compiled_arrivals,
        )
        for name in schedulers
    ]
    summaries = runner.map(microscopic_summary, tasks)

    views = {}
    for name, summary in zip(schedulers, summaries):
        num_classes = len(config.sdps)
        rows = summary["interval_means"]
        means = (
            np.asarray(rows, dtype=float)
            if rows
            else np.empty((0, num_classes))
        )
        views[name] = MicroscopicViews(
            scheduler=name,
            interval_means=means,
            packet_samples=[
                [(t, d) for t, d in samples]
                for samples in summary["packet_samples"]
            ],
        )
    return views


def format_figure45(views: dict[str, MicroscopicViews]) -> str:
    """ASCII summary: per-class mean delays and sawtooth scores."""
    lines = ["Figures 4-5: microscopic views (same arrivals, both schedulers)"]
    for name, view in views.items():
        scores = view.sawtooth_scores()
        with np.errstate(invalid="ignore"):
            means = np.nanmean(view.interval_means, axis=0)
        lines.append(
            f"  {name}: view-I class means = "
            + ", ".join(f"{m:.1f}" for m in means)
            + " | view-II sawtooth scores = "
            + ", ".join(f"{s:.3f}" for s in scores)
        )
    return "\n".join(lines)
