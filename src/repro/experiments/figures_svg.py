"""SVG renderings of the reproduced figures.

Turns each experiment's result objects into an actual chart (via
:mod:`repro.analysis.svg_plot`) so the reproduction produces *figures*,
not just tables.  Used by the CLI's ``--figures-dir`` option.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from ..analysis.svg_plot import (
    LineSeries,
    SvgCanvas,
    box_chart,
    grouped_bar_chart,
    line_chart,
    scatter_chart,
)
from .figure1 import FigureOnePoint
from .figure2 import FigureTwoPoint
from .figure3 import FigureThreeBox
from .figure45 import MicroscopicViews
from .table1 import TableOneCell

__all__ = [
    "figure1_svg",
    "figure2_svg",
    "figure3_svg",
    "figure45_svg",
    "table1_svg",
    "save_figures",
]


def figure1_svg(points: Sequence[FigureOnePoint]) -> SvgCanvas:
    """Mean successive-class ratio vs utilization, one line per scheduler."""
    target = points[0].target_ratios[0] if points else 2.0
    schedulers = sorted({p.scheduler for p in points})
    series = []
    for scheduler in schedulers:
        own = sorted(
            (p for p in points if p.scheduler == scheduler),
            key=lambda p: p.utilization,
        )
        series.append(
            LineSeries(
                label=scheduler.upper(),
                points=tuple((p.utilization, p.mean_ratio) for p in own),
            )
        )
    return line_chart(
        series,
        title=f"Figure 1: mean delay ratio vs load (target {target:g})",
        x_label="link utilization",
        y_label="ratio of successive class delays",
        y_reference=target,
    )


def figure2_svg(points: Sequence[FigureTwoPoint]) -> SvgCanvas:
    """Mean ratio per load distribution, grouped by scheduler."""
    target = points[0].target_ratios[0] if points else 2.0
    categories = []
    for p in points:
        label = p.loads.label()
        if label not in categories:
            categories.append(label)
    schedulers = sorted({p.scheduler for p in points})
    groups = []
    for scheduler in schedulers:
        by_label = {
            p.loads.label(): p.mean_ratio
            for p in points
            if p.scheduler == scheduler
        }
        groups.append(
            (scheduler.upper(), [by_label[c] for c in categories])
        )
    return grouped_bar_chart(
        categories,
        groups,
        title=f"Figure 2: ratio vs class load distribution (target {target:g})",
        y_label="mean successive-class delay ratio",
        y_reference=target,
    )


def figure3_svg(boxes: Sequence[FigureThreeBox]) -> SvgCanvas:
    """R_D percentile boxes per (scheduler, tau)."""
    rows = []
    for box in boxes:
        s = box.summary
        rows.append(
            (
                f"{box.scheduler} {box.tau_p_units:g}p",
                s.p5, s.p25, s.median, s.p75, s.p95,
            )
        )
    return box_chart(
        rows,
        title="Figure 3: R_D percentiles per monitoring timescale",
        y_label="R_D",
        y_reference=2.0,
    )


def figure45_svg(views: dict[str, MicroscopicViews]) -> dict[str, SvgCanvas]:
    """Per scheduler: per-packet delay scatter (microscopic view II)."""
    charts = {}
    for name, view in views.items():
        groups = [
            (f"class {cid + 1}", view.packet_samples[cid])
            for cid in range(len(view.packet_samples))
            if view.packet_samples[cid]
        ]
        figure = "Figure 4" if name == "bpr" else "Figure 5"
        charts[name] = scatter_chart(
            groups,
            title=f"{figure}: per-packet delays, {name.upper()}",
            x_label="departure time",
            y_label="queueing delay",
        )
    return charts


def table1_svg(cells: Sequence[TableOneCell]) -> SvgCanvas:
    """Table 1 as a grouped bar chart: R_D per cell."""
    categories = []
    for cell in cells:
        label = f"K={cell.hops},{cell.utilization:.0%}"
        if label not in categories:
            categories.append(label)
    columns = sorted({(c.flow_packets, c.flow_rate_kbps) for c in cells})
    groups = []
    for flow_packets, rate in columns:
        values = []
        for label in categories:
            match = next(
                c for c in cells
                if f"K={c.hops},{c.utilization:.0%}" == label
                and c.flow_packets == flow_packets
                and c.flow_rate_kbps == rate
            )
            values.append(match.rd)
        groups.append((f"F={flow_packets},Ru={rate:g}", values))
    return grouped_bar_chart(
        categories,
        groups,
        title="Table 1: end-to-end R_D (ideal 2.0)",
        y_label="R_D",
        y_reference=2.0,
    )


def save_figures(charts: dict[str, SvgCanvas], directory: str | Path) -> list[Path]:
    """Write each named canvas to ``directory/<name>.svg``."""
    directory = Path(directory)
    paths = []
    for name, canvas in charts.items():
        paths.append(canvas.save(directory / f"{name}.svg"))
    return paths
