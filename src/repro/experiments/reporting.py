"""Plain-text rendering helpers shared by the CLI and benchmarks."""

from __future__ import annotations

from typing import Sequence

from .ablations import AblationRow

__all__ = ["format_ablation_rows", "format_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Fixed-width ASCII table (no external dependencies)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def format_ablation_rows(rows: Sequence[AblationRow], title: str) -> str:
    """Render a list of :class:`AblationRow` as an ASCII table."""
    if not rows:
        return f"{title}: no rows"
    keys: list[str] = []
    for row in rows:
        for key in row.values:
            if key not in keys:
                keys.append(key)
    headers = ["label", *keys]
    body = [
        [row.label] + [
            f"{row.values[k]:.4g}" if k in row.values else "--" for k in keys
        ]
        for row in rows
    ]
    return f"{title}\n{format_table(headers, body)}"
