"""Figure 3: short-timescale behaviour -- percentiles of R_D vs tau.

At rho = 0.95 with SDP ratio 2, the run is cut into consecutive
monitoring intervals of length tau in {10, 100, 1000, 10000} p-units.
Per interval, R_D averages the normalized delay ratios of successive
active classes; the figure plots the 5/25/50/75/95 percentiles of the
R_D distribution.  Expected shape: both schedulers tighten around the
target (2.0) as tau grows; at small tau WTP's inter-quartile range is
already near the target while BPR's spread is much wider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.metrics import PercentileSummary
from ..runner import SingleHopTask, SweepRunner, serial_runner, single_hop_summary
from ..traffic.mix import PAPER_DEFAULT_LOADS, ClassLoadDistribution
from ..units import PAPER_P_UNIT
from .common import SingleHopConfig
from .figure1 import SDP_RATIO_2

__all__ = ["FigureThreeConfig", "FigureThreeBox", "run_figure3", "format_figure3"]

#: Monitoring timescales of Figure 3, in p-units.
PAPER_FIGURE3_TAUS_P_UNITS = (10.0, 100.0, 1000.0, 10000.0)


@dataclass(frozen=True)
class FigureThreeConfig:
    """Sweep parameters; defaults reproduce the paper's setup."""

    schedulers: tuple[str, ...] = ("wtp", "bpr")
    sdps: tuple[float, ...] = SDP_RATIO_2
    taus_p_units: tuple[float, ...] = PAPER_FIGURE3_TAUS_P_UNITS
    utilization: float = 0.95
    loads: ClassLoadDistribution = field(
        default_factory=lambda: PAPER_DEFAULT_LOADS
    )
    seed: int = 1
    horizon: float = 1e6
    warmup: float = 5e4
    #: Run every point under the runtime invariant checker.
    check_invariants: bool = False
    #: Block-drawn trace compilation (bit-identical; much faster).
    compiled_arrivals: bool = True
    #: Busy-period drain kernel on the link (bit-identical; faster).
    drain: bool = True

    def scaled(self, factor: float) -> "FigureThreeConfig":
        return FigureThreeConfig(
            schedulers=self.schedulers,
            sdps=self.sdps,
            taus_p_units=self.taus_p_units,
            utilization=self.utilization,
            loads=self.loads,
            seed=self.seed,
            horizon=max(1e5, self.horizon * factor),
            warmup=max(2e3, self.warmup * factor),
            check_invariants=self.check_invariants,
            compiled_arrivals=self.compiled_arrivals,
            drain=self.drain,
        )


@dataclass
class FigureThreeBox:
    """One box of Figure 3: R_D percentiles for (scheduler, tau)."""

    scheduler: str
    tau_p_units: float
    summary: PercentileSummary


def run_figure3(
    config: FigureThreeConfig, runner: Optional[SweepRunner] = None
) -> list[FigureThreeBox]:
    """Regenerate the Figure 3 boxes.

    All taus are monitored in a single run per scheduler (the paper's
    measurement is a post-processing of the same departure stream); the
    per-scheduler runs fan out over ``runner``.
    """
    if runner is None:
        runner = serial_runner()
    taus_time_units = tuple(t * PAPER_P_UNIT for t in config.taus_p_units)
    tasks = [
        SingleHopTask(
            config=SingleHopConfig(
                scheduler=scheduler,
                sdps=config.sdps,
                utilization=config.utilization,
                loads=config.loads,
                horizon=config.horizon,
                warmup=config.warmup,
                seed=config.seed,
                interval_taus=taus_time_units,
                drain=config.drain,
            ),
            check_invariants=config.check_invariants,
            compiled_arrivals=config.compiled_arrivals,
        )
        for scheduler in config.schedulers
    ]
    summaries = runner.map(single_hop_summary, tasks)

    boxes = []
    for scheduler, summary in zip(config.schedulers, summaries):
        by_tau = {tau: stats for tau, stats in summary["interval_rd"]}
        for tau_p, tau in zip(config.taus_p_units, taus_time_units):
            stats = by_tau[tau]
            boxes.append(
                FigureThreeBox(
                    scheduler=scheduler,
                    tau_p_units=tau_p,
                    summary=PercentileSummary(
                        p5=stats["p5"],
                        p25=stats["p25"],
                        median=stats["median"],
                        p75=stats["p75"],
                        p95=stats["p95"],
                        count=stats["count"],
                    ),
                )
            )
    return boxes


def format_figure3(boxes: Sequence[FigureThreeBox]) -> str:
    """ASCII rendering of the Figure 3 percentile boxes."""
    lines = [
        "Figure 3: percentiles of R_D per monitoring timescale tau",
        f"{'sched':>6} {'tau(p)':>8} {'p5':>7} {'p25':>7} {'median':>7} "
        f"{'p75':>7} {'p95':>7} {'n':>7}",
    ]
    for box in boxes:
        s = box.summary
        lines.append(
            f"{box.scheduler:>6} {box.tau_p_units:>8g} {s.p5:>7.3f} "
            f"{s.p25:>7.3f} {s.median:>7.3f} {s.p75:>7.3f} {s.p95:>7.3f} "
            f"{s.count:>7d}"
        )
    return "\n".join(lines)
