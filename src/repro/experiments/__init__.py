"""Experiment harnesses: one module per paper figure/table + ablations."""

from .common import (
    SingleHopConfig,
    SingleHopResult,
    generate_trace,
    replay_through_scheduler,
    run_single_hop,
)
from .figure1 import (
    SDP_RATIO_2,
    SDP_RATIO_4,
    FigureOneConfig,
    FigureOnePoint,
    format_figure1,
    run_figure1,
)
from .figure2 import FigureTwoConfig, FigureTwoPoint, format_figure2, run_figure2
from .figure3 import (
    FigureThreeBox,
    FigureThreeConfig,
    format_figure3,
    run_figure3,
)
from .figure45 import (
    MicroscopicConfig,
    MicroscopicViews,
    format_figure45,
    run_figure45,
    sawtooth_score,
)
from .analytic_overlay import OverlayRow, format_overlay, run_analytic_overlay
from .lossy import LossyConfig, LossyPoint, format_lossy, run_lossy_sweep
from .specs import load_spec, run_spec, run_spec_file
from .table1 import TableOneCell, TableOneConfig, format_table1, run_table1

__all__ = [
    "SingleHopConfig",
    "SingleHopResult",
    "generate_trace",
    "replay_through_scheduler",
    "run_single_hop",
    "SDP_RATIO_2",
    "SDP_RATIO_4",
    "FigureOneConfig",
    "FigureOnePoint",
    "format_figure1",
    "run_figure1",
    "FigureTwoConfig",
    "FigureTwoPoint",
    "format_figure2",
    "run_figure2",
    "FigureThreeBox",
    "FigureThreeConfig",
    "format_figure3",
    "run_figure3",
    "MicroscopicConfig",
    "MicroscopicViews",
    "format_figure45",
    "run_figure45",
    "sawtooth_score",
    "TableOneCell",
    "TableOneConfig",
    "format_table1",
    "run_table1",
    "LossyConfig",
    "LossyPoint",
    "format_lossy",
    "run_lossy_sweep",
    "load_spec",
    "run_spec",
    "run_spec_file",
    "OverlayRow",
    "format_overlay",
    "run_analytic_overlay",
]
