"""Export experiment results to CSV/JSON for external plotting.

The paper's figures are plots; this library regenerates the underlying
*data series*.  These helpers serialize each harness's results in a
stable schema so any plotting tool (matplotlib, gnuplot, a spreadsheet)
can redraw the figures without re-running the simulations.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from .figure1 import FigureOnePoint
from .figure2 import FigureTwoPoint
from .figure3 import FigureThreeBox
from .figure45 import MicroscopicViews
from .table1 import TableOneCell

__all__ = [
    "figure1_to_csv",
    "figure2_to_csv",
    "figure3_to_csv",
    "figure45_to_json",
    "table1_to_csv",
]


def _write_csv(path: Path, header: Sequence[str], rows) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def figure1_to_csv(points: Sequence[FigureOnePoint], path: str | Path) -> Path:
    """One row per (scheduler, utilization, class pair)."""
    path = Path(path)
    rows = [
        (p.scheduler, p.utilization, i + 1, i + 2, ratio, p.target_ratios[i],
         p.feasible)
        for p in points
        for i, ratio in enumerate(p.ratios)
    ]
    _write_csv(
        path,
        ("scheduler", "utilization", "class_low", "class_high",
         "measured_ratio", "target_ratio", "feasible"),
        rows,
    )
    return path


def figure2_to_csv(points: Sequence[FigureTwoPoint], path: str | Path) -> Path:
    """One row per (scheduler, load distribution, class pair)."""
    path = Path(path)
    rows = [
        (p.scheduler, p.loads.label(), i + 1, i + 2, ratio,
         p.target_ratios[i], p.feasible)
        for p in points
        for i, ratio in enumerate(p.ratios)
    ]
    _write_csv(
        path,
        ("scheduler", "loads", "class_low", "class_high",
         "measured_ratio", "target_ratio", "feasible"),
        rows,
    )
    return path


def figure3_to_csv(boxes: Sequence[FigureThreeBox], path: str | Path) -> Path:
    """One row per (scheduler, tau) with the five percentiles."""
    path = Path(path)
    rows = [
        (b.scheduler, b.tau_p_units, b.summary.p5, b.summary.p25,
         b.summary.median, b.summary.p75, b.summary.p95, b.summary.count)
        for b in boxes
    ]
    _write_csv(
        path,
        ("scheduler", "tau_p_units", "p5", "p25", "median", "p75", "p95",
         "intervals"),
        rows,
    )
    return path


def figure45_to_json(
    views: dict[str, MicroscopicViews], path: str | Path
) -> Path:
    """Both microscopic views, ready to replot (JSON: floats + NaN->null)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {}
    for name, view in views.items():
        interval_rows = [
            [None if value != value else float(value) for value in row]
            for row in view.interval_means
        ]
        payload[name] = {
            "interval_means": interval_rows,
            "packet_samples": [
                [[float(t), float(d)] for t, d in samples]
                for samples in view.packet_samples
            ],
            "sawtooth_scores": [
                None if score != score else float(score)
                for score in view.sawtooth_scores()
            ],
        }
    path.write_text(json.dumps(payload))
    return path


def table1_to_csv(cells: Sequence[TableOneCell], path: str | Path) -> Path:
    """One row per Table 1 cell."""
    path = Path(path)
    rows = [
        (c.hops, c.utilization, c.flow_packets, c.flow_rate_kbps, c.rd,
         c.inconsistent, len(c.result.comparisons))
        for c in cells
    ]
    _write_csv(
        path,
        ("hops", "utilization", "flow_packets", "flow_rate_kbps", "rd",
         "inconsistent_experiments", "experiments"),
        rows,
    )
    return path
