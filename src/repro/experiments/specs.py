"""Declarative experiment specs: run studies from a JSON file.

Downstream users often want to sweep parameters without writing
orchestration code.  A *spec* is a JSON document describing a list of
single-hop or multi-hop runs; :func:`run_spec` executes them and
returns structured results, and :func:`run_spec_file` adds file I/O.

Schema (all keys optional unless noted)::

    {
      "name": "my-study",
      "runs": [
        {
          "kind": "single-hop",            # required: single-hop | multi-hop
          "label": "wtp-95",
          "scheduler": "wtp",
          "sdps": [1, 2, 4, 8],
          "utilization": 0.95,
          "loads": [0.4, 0.3, 0.2, 0.1],
          "horizon": 2e5, "warmup": 1e4, "seed": 1
        },
        {
          "kind": "multi-hop",
          "label": "chain-4",
          "hops": 4, "utilization": 0.9,
          "flow_packets": 10, "flow_rate_kbps": 50,
          "experiments": 20, "warmup": 10000, "seed": 1
        }
      ]
    }

Unknown keys are rejected (typos should fail loudly, not silently run a
default).  Results are plain dicts, JSON-serializable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError
from ..network.multihop import MultiHopConfig, run_multihop
from ..traffic.mix import ClassLoadDistribution
from .common import SingleHopConfig, run_single_hop

__all__ = ["run_spec", "run_spec_file", "load_spec"]

_SINGLE_HOP_KEYS = {
    "kind", "label", "scheduler", "sdps", "utilization", "loads",
    "horizon", "warmup", "seed",
}
_MULTI_HOP_KEYS = {
    "kind", "label", "scheduler", "sdps", "hops", "utilization",
    "flow_packets", "flow_rate_kbps", "experiments", "warmup", "seed",
}


def load_spec(path: str | Path) -> dict[str, Any]:
    """Read and structurally validate a spec file."""
    try:
        spec = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON: {exc}") from None
    _validate_spec(spec)
    return spec


def _validate_spec(spec: dict[str, Any]) -> None:
    if not isinstance(spec, dict):
        raise ConfigurationError("spec must be a JSON object")
    runs = spec.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ConfigurationError("spec needs a non-empty 'runs' list")
    for index, run in enumerate(runs):
        if not isinstance(run, dict):
            raise ConfigurationError(f"runs[{index}] must be an object")
        kind = run.get("kind")
        if kind == "single-hop":
            allowed = _SINGLE_HOP_KEYS
        elif kind == "multi-hop":
            allowed = _MULTI_HOP_KEYS
        else:
            raise ConfigurationError(
                f"runs[{index}].kind must be 'single-hop' or 'multi-hop', "
                f"got {kind!r}"
            )
        unknown = set(run) - allowed
        if unknown:
            raise ConfigurationError(
                f"runs[{index}] has unknown keys {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )


def _run_single_hop(run: dict[str, Any]) -> dict[str, Any]:
    kwargs: dict[str, Any] = {}
    if "scheduler" in run:
        kwargs["scheduler"] = run["scheduler"]
    if "sdps" in run:
        kwargs["sdps"] = tuple(float(s) for s in run["sdps"])
    if "utilization" in run:
        kwargs["utilization"] = float(run["utilization"])
    if "loads" in run:
        kwargs["loads"] = ClassLoadDistribution(
            tuple(float(x) for x in run["loads"])
        )
    for key in ("horizon", "warmup"):
        if key in run:
            kwargs[key] = float(run[key])
    if "seed" in run:
        kwargs["seed"] = int(run["seed"])
    result = run_single_hop(SingleHopConfig(**kwargs))
    return {
        "kind": "single-hop",
        "label": run.get("label", ""),
        "mean_delays": result.mean_delays,
        "successive_ratios": result.successive_ratios,
        "target_ratios": result.target_ratios(),
        "conservation_residual": result.conservation_residual(),
        "link_utilization": result.link_utilization,
    }


def _run_multi_hop(run: dict[str, Any]) -> dict[str, Any]:
    kwargs: dict[str, Any] = {}
    for key, cast in (
        ("scheduler", str), ("hops", int), ("utilization", float),
        ("flow_packets", int), ("flow_rate_kbps", float),
        ("experiments", int), ("warmup", float), ("seed", int),
    ):
        if key in run:
            kwargs[key] = cast(run[key])
    if "sdps" in run:
        kwargs["sdps"] = tuple(float(s) for s in run["sdps"])
        kwargs["num_classes"] = len(kwargs["sdps"])
    result = run_multihop(MultiHopConfig(**kwargs))
    return {
        "kind": "multi-hop",
        "label": run.get("label", ""),
        "rd": result.rd,
        "experiments": len(result.comparisons),
        "inconsistent_experiments": result.inconsistent_experiments,
    }


def run_spec(spec: dict[str, Any]) -> dict[str, Any]:
    """Execute a validated spec; returns {'name', 'results': [...]}."""
    _validate_spec(spec)
    results = []
    for run in spec["runs"]:
        if run["kind"] == "single-hop":
            results.append(_run_single_hop(run))
        else:
            results.append(_run_multi_hop(run))
    return {"name": spec.get("name", ""), "results": results}


def run_spec_file(
    path: str | Path, output: str | Path | None = None
) -> dict[str, Any]:
    """Load, run and (optionally) write results as JSON next to you."""
    outcome = run_spec(load_spec(path))
    if output is not None:
        output = Path(output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(outcome, indent=2))
    return outcome
