"""Figure 2: delay ratios vs class load distribution at 95% utilization.

Seven class-load distributions are swept at rho = 0.95 for WTP and BPR
with SDP ratios 2 (Fig 2a) and 4 (Fig 2b).  Expected shape: WTP hits
the target ratio regardless of the distribution; BPR is accurate only
when class loads are balanced, and heavily loaded classes receive
*larger* delays than their SDPs specify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..runner import SingleHopTask, SweepRunner, serial_runner, single_hop_summary
from ..traffic.mix import FIGURE2_LOAD_DISTRIBUTIONS, ClassLoadDistribution
from .common import SingleHopConfig
from .figure1 import SDP_RATIO_2

__all__ = ["FigureTwoConfig", "FigureTwoPoint", "run_figure2", "format_figure2"]


@dataclass(frozen=True)
class FigureTwoConfig:
    """Sweep parameters; defaults reproduce the paper's setup."""

    schedulers: tuple[str, ...] = ("wtp", "bpr")
    sdps: tuple[float, ...] = SDP_RATIO_2
    distributions: tuple[ClassLoadDistribution, ...] = FIGURE2_LOAD_DISTRIBUTIONS
    utilization: float = 0.95
    seeds: tuple[int, ...] = tuple(range(1, 11))
    horizon: float = 1e6
    warmup: float = 5e4
    check_feasibility: bool = True
    #: Run every point under the runtime invariant checker.
    check_invariants: bool = False
    #: Block-drawn trace compilation (bit-identical; much faster).
    compiled_arrivals: bool = True
    #: Busy-period drain kernel on the link (bit-identical; faster).
    drain: bool = True

    def scaled(self, factor: float) -> "FigureTwoConfig":
        seeds = self.seeds[: max(1, round(len(self.seeds) * factor))]
        return FigureTwoConfig(
            schedulers=self.schedulers,
            sdps=self.sdps,
            distributions=self.distributions,
            utilization=self.utilization,
            seeds=seeds,
            horizon=max(5e4, self.horizon * factor),
            warmup=max(2e3, self.warmup * factor),
            check_feasibility=self.check_feasibility,
            check_invariants=self.check_invariants,
            compiled_arrivals=self.compiled_arrivals,
            drain=self.drain,
        )


@dataclass
class FigureTwoPoint:
    """One (scheduler, load distribution) bar of Figure 2."""

    scheduler: str
    loads: ClassLoadDistribution
    ratios: list[float]
    target_ratios: list[float]
    feasible: bool

    @property
    def mean_ratio(self) -> float:
        return sum(self.ratios) / len(self.ratios)

    @property
    def worst_relative_error(self) -> float:
        return max(
            abs(r - t) / t for r, t in zip(self.ratios, self.target_ratios)
        )


def figure2_tasks(config: FigureTwoConfig) -> list[SingleHopTask]:
    """The sweep grid, flattened in deterministic (loads, sched, seed) order."""
    tasks = []
    for loads in config.distributions:
        for scheduler in config.schedulers:
            for seed_index, seed in enumerate(config.seeds):
                tasks.append(
                    SingleHopTask(
                        config=SingleHopConfig(
                            scheduler=scheduler,
                            sdps=config.sdps,
                            utilization=config.utilization,
                            loads=loads,
                            horizon=config.horizon,
                            warmup=config.warmup,
                            seed=seed,
                            drain=config.drain,
                        ),
                        compute_feasibility=(
                            config.check_feasibility and seed_index == 0
                        ),
                        check_invariants=config.check_invariants,
                        compiled_arrivals=config.compiled_arrivals,
                    )
                )
    return tasks


def run_figure2(
    config: FigureTwoConfig, runner: Optional[SweepRunner] = None
) -> list[FigureTwoPoint]:
    """Regenerate the Figure 2 bars (fanned out over ``runner``)."""
    if runner is None:
        runner = serial_runner()
    summaries = runner.map(single_hop_summary, figure2_tasks(config))

    points = []
    cursor = 0
    count = len(config.seeds)
    for loads in config.distributions:
        for scheduler in config.schedulers:
            per_pair_sums = [0.0] * (len(config.sdps) - 1)
            feasible = True
            target = None
            for seed_index in range(count):
                summary = summaries[cursor]
                cursor += 1
                target = summary["target_ratios"]
                for i, ratio in enumerate(summary["ratios"]):
                    per_pair_sums[i] += ratio
                if "feasible" in summary and seed_index == 0:
                    feasible = summary["feasible"]
            ratios = [s / count for s in per_pair_sums]
            if any(math.isnan(r) for r in ratios):
                raise RuntimeError(f"no departures for some class: {loads}")
            points.append(
                FigureTwoPoint(
                    scheduler=scheduler,
                    loads=loads,
                    ratios=ratios,
                    target_ratios=list(target),
                    feasible=feasible,
                )
            )
    return points


def format_figure2(points: Sequence[FigureTwoPoint]) -> str:
    """ASCII rendering of the Figure 2 bars."""
    if not points:
        return "Figure 2: no points"
    target = points[0].target_ratios[0]
    pairs = len(points[0].ratios)
    lines = [
        f"Figure 2: desired average-delay ratio = {target:g} (rho = 0.95)",
        f"{'sched':>6} {'loads':>16} "
        + " ".join(f"{'d%d/d%d' % (i + 1, i + 2):>8}" for i in range(pairs))
        + f" {'feasible':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.scheduler:>6} {p.loads.label():>16} "
            + " ".join(f"{r:>8.3f}" for r in p.ratios)
            + f" {str(p.feasible):>9}"
        )
    return "\n".join(lines)
