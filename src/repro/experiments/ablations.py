"""Ablation studies beyond the paper's headline figures.

Each ablation exercises a design point the paper discusses in prose:

* :func:`sdp_ratio_sweep` -- "the deviations increase as we widen the
  differentiation spacing" (Section 5): accuracy of WTP/BPR vs the SDP
  ratio at fixed load.
* :func:`scheduler_comparison` -- all disciplines on identical traffic:
  WTP/BPR/PAD/HPD vs the uncontrollable baselines (strict priority,
  SCFQ capacity differentiation, FCFS, additive).
* :func:`additive_convergence` -- Eq 3: the additive scheduler's delay
  *differences* tend to the offset differences in heavy load.
* :func:`wtp_starvation_demo` -- Proposition 2: with s_i/s_j < 1 - R/R1
  an arbitrarily long high-class burst is served entirely before a
  waiting low-class packet.
* :func:`plr_demo` -- the loss-differentiation extension: PLR drop
  ratios track the LDP ratios on a lossy link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..dropping.plr import PLRDropper
from ..runner import SingleHopTask, SweepRunner, serial_runner, single_hop_summary
from ..schedulers.registry import make_scheduler
from ..schedulers.wtp import WTPScheduler
from ..sim.engine import Simulator
from ..sim.link import Link, PacketSink
from ..sim.monitor import DelayMonitor
from ..sim.packet import Packet
from ..sim.rng import RandomStreams
from ..traffic.mix import ClassLoadDistribution
from ..traffic.pareto import ParetoInterarrivals
from ..traffic.sizes import paper_trimodal_sizes
from ..traffic.source import PacketIdAllocator, TrafficSource
from ..units import PAPER_LINK_CAPACITY
from .common import SingleHopConfig, generate_trace, replay_through_scheduler

__all__ = [
    "sdp_ratio_sweep",
    "scheduler_comparison",
    "additive_convergence",
    "wtp_starvation_demo",
    "plr_demo",
    "adaptive_wtp_correction",
    "quantization_sweep",
    "absolute_vs_relative",
    "AblationRow",
]


@dataclass
class AblationRow:
    """Generic labelled measurement row."""

    label: str
    values: dict[str, float]


def sdp_ratio_sweep(
    ratios: Sequence[float] = (1.5, 2.0, 4.0, 8.0),
    schedulers: Sequence[str] = ("wtp", "bpr"),
    utilization: float = 0.95,
    horizon: float = 2e5,
    warmup: float = 1e4,
    seed: int = 3,
    runner: Optional[SweepRunner] = None,
) -> list[AblationRow]:
    """Accuracy (worst relative ratio error) vs SDP spacing.

    Every scheduler still sees identical arrivals per ratio: each worker
    regenerates the same deterministic trace from the shared seed.
    """
    if runner is None:
        runner = serial_runner()
    tasks = []
    for ratio in ratios:
        sdps = tuple(ratio**i for i in range(4))
        base = SingleHopConfig(
            sdps=sdps,
            utilization=utilization,
            horizon=horizon,
            warmup=warmup,
            seed=seed,
        )
        for name in schedulers:
            tasks.append(SingleHopTask(config=base, scheduler=name))
    summaries = runner.map(single_hop_summary, tasks)

    rows = []
    cursor = 0
    for ratio in ratios:
        values = {}
        for name in schedulers:
            summary = summaries[cursor]
            cursor += 1
            errors = [
                abs(r - t) / t
                for r, t in zip(summary["ratios"], summary["target_ratios"])
            ]
            values[name] = max(errors)
        rows.append(AblationRow(label=f"sdp_ratio={ratio:g}", values=values))
    return rows


def scheduler_comparison(
    schedulers: Sequence[str] = (
        "wtp", "adaptive-wtp", "bpr", "pad", "hpd", "strict", "scfq",
        "drr", "additive", "fcfs",
    ),
    utilization: float = 0.90,
    horizon: float = 2e5,
    warmup: float = 1e4,
    seed: int = 5,
    runner: Optional[SweepRunner] = None,
) -> list[AblationRow]:
    """All disciplines on identical traffic: mean delays + ratios."""
    if runner is None:
        runner = serial_runner()
    base = SingleHopConfig(
        utilization=utilization, horizon=horizon, warmup=warmup, seed=seed
    )
    # Additive offsets in time units comparable to the delays at play.
    additive_sdps = (1.0, 400.0, 800.0, 1200.0)
    tasks = [
        SingleHopTask(
            config=base,
            scheduler=name,
            sdps=additive_sdps if name == "additive" else None,
        )
        for name in schedulers
    ]
    summaries = runner.map(single_hop_summary, tasks)

    rows = []
    for name, summary in zip(schedulers, summaries):
        values = {
            f"d{i + 1}": d for i, d in enumerate(summary["mean_delays"])
        }
        for i, r in enumerate(summary["ratios"]):
            values[f"r{i + 1}{i + 2}"] = r
        rows.append(AblationRow(label=name, values=values))
    return rows


def additive_convergence(
    offsets: tuple[float, ...] = (0.0, 500.0, 1000.0, 1500.0),
    utilization: float = 0.95,
    horizon: float = 4e5,
    warmup: float = 2e4,
    seed: int = 11,
) -> list[AblationRow]:
    """Measured d_i - d_{i+1} vs the additive target s_{i+1} - s_i."""
    # AdditiveDelayScheduler wants strictly increasing offsets; the
    # registry shifts them, so call it directly via a spec with distinct
    # values and read back the measured differences.
    sdps = tuple(o + 1.0 for o in offsets)  # keep registry's validation happy
    loads = ClassLoadDistribution(
        tuple(1.0 / len(offsets) for _ in offsets)
    )
    base = SingleHopConfig(
        scheduler="additive",
        sdps=sdps,
        utilization=utilization,
        loads=loads,
        horizon=horizon,
        warmup=warmup,
        seed=seed,
    )
    trace = generate_trace(base)
    result = replay_through_scheduler(
        trace, make_scheduler("additive", sdps), base
    )
    delays = result.mean_delays
    rows = []
    for i in range(len(delays) - 1):
        target = offsets[i + 1] - offsets[i]
        measured = delays[i] - delays[i + 1]
        rows.append(
            AblationRow(
                label=f"pair_{i + 1}_{i + 2}",
                values={"target_diff": target, "measured_diff": measured},
            )
        )
    return rows


def wtp_starvation_demo(
    burst_packets: int = 200,
    sdps: tuple[float, float] = (1.0, 16.0),
    peak_to_service: float = 2.0,
) -> AblationRow:
    """Proposition 2, executed.

    A low-class packet waits while a class-2 burst arrives at peak rate
    R1 = peak_to_service * R.  With s_1/s_2 < 1 - R/R1 every burst
    packet is served before the low-class packet; the row reports how
    many of the ``burst_packets`` overtook it (expected: all).
    """
    sim = Simulator()
    scheduler = WTPScheduler(sdps)
    capacity = 1.0  # 1 byte per time unit; unit-size packets
    link = Link(sim, scheduler, capacity, target=PacketSink(keep_packets=True))
    size = 1.0
    peak_gap = size / (peak_to_service * capacity)
    # A blocker occupies the server so the tagged low-class packet is
    # *waiting* when the burst starts (Proposition 2's premise).
    blocker = Packet(packet_id=-1, class_id=0, size=size, created_at=0.0)
    sim.schedule(0.0, link.receive, blocker)
    low = Packet(packet_id=0, class_id=0, size=size, created_at=0.0)
    sim.schedule(0.0, link.receive, low)
    for k in range(burst_packets):
        packet = Packet(
            packet_id=1 + k, class_id=1, size=size, created_at=k * peak_gap
        )
        sim.schedule(k * peak_gap, link.receive, packet)
    sim.run()
    sink: PacketSink = link.target  # type: ignore[assignment]
    order = [p.packet_id for p in sink.packets]
    overtakers = sum(1 for pid in order[: order.index(0)] if pid >= 1)
    condition = sdps[0] / sdps[1] < 1.0 - capacity / (peak_to_service * capacity)
    return AblationRow(
        label="wtp_starvation",
        values={
            "burst_packets": float(burst_packets),
            "overtakers": float(overtakers),
            "condition_holds": float(condition),
        },
    )


def adaptive_wtp_correction(
    utilizations: Sequence[float] = (0.72, 0.80, 0.88, 0.95),
    sdps: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    horizon: float = 3e5,
    warmup: float = 1.5e4,
    seed: int = 17,
    runner: Optional[SweepRunner] = None,
) -> list[AblationRow]:
    """Extension ablation: adaptive SDPs vs plain WTP across loads.

    Reports the mean absolute error of the successive-class ratios
    against the target for both schedulers.  Expected: the adaptive
    variant repairs the moderate-load undershoot without hurting the
    heavy-load regime.
    """
    if runner is None:
        runner = serial_runner()
    names = ("wtp", "adaptive-wtp")
    tasks = [
        SingleHopTask(
            config=SingleHopConfig(
                sdps=sdps, utilization=rho, horizon=horizon, warmup=warmup,
                seed=seed,
            ),
            scheduler=name,
        )
        for rho in utilizations
        for name in names
    ]
    summaries = runner.map(single_hop_summary, tasks)

    rows = []
    cursor = 0
    for rho in utilizations:
        values = {}
        for name in names:
            summary = summaries[cursor]
            cursor += 1
            errors = [
                abs(r - t)
                for r, t in zip(summary["ratios"], summary["target_ratios"])
            ]
            values[name] = sum(errors) / len(errors)
        rows.append(AblationRow(label=f"rho={rho:g}", values=values))
    return rows


def absolute_vs_relative(
    surge_factors: Sequence[float] = (0.8, 1.5, 2.0),
    horizon: float = 1e5,
    seed: int = 37,
) -> list[AblationRow]:
    """Section 1's contrast, measured: Premium (absolute) vs WTP
    (relative) when the premium user's demand surges past its profile.

    A background best-effort load (rho = 0.75) shares a unit link with
    a priority flow whose offered rate is ``surge * profile``.  Premium:
    token-bucket policed to the profile, then strict priority -- delays
    stay tiny but the surge is *dropped*.  Relative: same traffic into
    the high WTP class, no policing -- nothing is lost, delays adapt.
    (Surges are kept inside the stable region so the relative delays
    are steady-state numbers, not a blowing-up queue.)
    """
    from ..policing import PremiumPolicer
    from ..schedulers.strict_priority import StrictPriorityScheduler
    from ..schedulers.wtp import WTPScheduler
    from ..traffic.poisson import PoissonInterarrivals
    from ..traffic.sizes import FixedPacketSize

    profile_rate = 0.1  # bytes per time unit on a unit-capacity link
    rows = []
    for surge in surge_factors:
        values = {}
        for mode in ("premium", "relative"):
            sim = Simulator()
            streams = RandomStreams(seed)
            if mode == "premium":
                scheduler = StrictPriorityScheduler(2)
            else:
                scheduler = WTPScheduler((1.0, 8.0))
            link = Link(sim, scheduler, capacity=1.0, target=PacketSink())
            monitor = DelayMonitor(2, warmup=horizon * 0.05)
            link.add_monitor(monitor)
            ids = PacketIdAllocator()
            TrafficSource(
                sim, link, 0,
                PoissonInterarrivals(1.0 / 0.75, streams.generator()),
                FixedPacketSize(1.0), ids=ids,
            ).start()
            if mode == "premium":
                policer = PremiumPolicer(
                    sim, link, rate=profile_rate, burst=10.0
                )
                entry = policer
            else:
                policer = None
                entry = link
            TrafficSource(
                sim, entry, 1,
                PoissonInterarrivals(1.0 / (profile_rate * surge),
                                     streams.generator()),
                FixedPacketSize(1.0), ids=ids,
            ).start()
            sim.run(until=horizon)
            values[f"{mode}_delay"] = monitor.mean_delay(1)
            if policer is not None:
                total = policer.forwarded + policer.dropped
                values["premium_loss"] = (
                    policer.dropped / total if total else 0.0
                )
        rows.append(AblationRow(label=f"surge={surge:g}x", values=values))
    return rows


def quantization_sweep(
    epochs_p_units: Sequence[float] = (0.1, 1.0, 10.0, 100.0),
    utilization: float = 0.95,
    horizon: float = 2e5,
    warmup: float = 1e4,
    seed: int = 19,
    runner: Optional[SweepRunner] = None,
) -> list[AblationRow]:
    """Implementability ablation (§4.2): WTP with quantized priorities.

    Sweeps the aging-epoch granularity (in p-units) and reports the
    worst successive-ratio error vs exact WTP on identical traffic.
    Expected: sub-p-unit epochs are indistinguishable from exact WTP;
    accuracy decays as the epoch approaches the delays being ranked.
    """
    from ..units import PAPER_P_UNIT

    if runner is None:
        runner = serial_runner()
    sdps = (1.0, 2.0, 4.0, 8.0)
    base = SingleHopConfig(
        sdps=sdps, utilization=utilization, horizon=horizon, warmup=warmup,
        seed=seed,
    )
    tasks = [SingleHopTask(config=base, scheduler="wtp")] + [
        SingleHopTask(config=base, epoch=epoch_p * PAPER_P_UNIT)
        for epoch_p in epochs_p_units
    ]
    summaries = runner.map(single_hop_summary, tasks)

    labels = ["exact"] + [f"epoch={epoch_p:g}p" for epoch_p in epochs_p_units]
    rows = []
    for label, summary in zip(labels, summaries):
        error = max(
            abs(r - t)
            for r, t in zip(summary["ratios"], summary["target_ratios"])
        )
        rows.append(AblationRow(label=label, values={"worst_error": error}))
    return rows


def plr_demo(
    ldps: tuple[float, ...] = (4.0, 2.0, 1.0),
    window: int | None = None,
    utilization: float = 1.3,
    buffer_packets: int = 60,
    horizon: float = 2e5,
    seed: int = 23,
) -> AblationRow:
    """Loss-differentiation extension: measured vs target loss ratios."""
    sim = Simulator()
    streams = RandomStreams(seed)
    num_classes = len(ldps)
    scheduler = make_scheduler("wtp", tuple(2.0**i for i in range(num_classes)))
    dropper = PLRDropper(ldps, window=window)
    link = Link(
        sim,
        scheduler,
        PAPER_LINK_CAPACITY,
        buffer_packets=buffer_packets,
        drop_policy=dropper,
    )
    loads = ClassLoadDistribution(
        tuple(1.0 / num_classes for _ in range(num_classes))
    )
    sizes_mean = paper_trimodal_sizes().mean
    ids = PacketIdAllocator()
    for class_id, gap in enumerate(
        loads.mean_gaps(utilization, PAPER_LINK_CAPACITY, sizes_mean)
    ):
        TrafficSource(
            sim,
            link,
            class_id,
            ParetoInterarrivals(gap, rng=streams.generator()),
            paper_trimodal_sizes(streams.generator()),
            ids=ids,
        ).start()
    sim.run(until=horizon)
    values = {}
    for i, ratio in enumerate(dropper.loss_ratios()):
        values[f"measured_l{i + 1}/l{i + 2}"] = ratio
        values[f"target_l{i + 1}/l{i + 2}"] = ldps[i] / ldps[i + 1]
    values["total_drops"] = float(link.drops)
    return AblationRow(label="plr", values=values)
