"""Figure 1: average-delay ratios between successive classes vs load.

The paper sweeps the aggregate utilization from 0.70 to ~0.999 for WTP
and BPR with SDP ratios 2 (Fig 1a: s = 1,2,4,8) and 4 (Fig 1b: s =
1,4,16,64), class loads 40/30/20/10 %, averaging ten seeded runs of
10^6 time units each.  Expected shape: both schedulers rise toward the
target ratio as rho -> 1; WTP converges essentially exactly, BPR lands
slightly off; at rho = 0.70 the measured ratio is ~1.5 (target 2) and
~1.7-2.3 (target 4).

``FigureOneConfig.scale`` shrinks horizon and seed count proportionally
so the benchmark harness can regenerate the series quickly; the CLI
runs full scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..runner import SingleHopTask, SweepRunner, serial_runner, single_hop_summary
from ..traffic.mix import PAPER_DEFAULT_LOADS, ClassLoadDistribution
from .common import SingleHopConfig

__all__ = [
    "FigureOneConfig",
    "FigureOnePoint",
    "run_figure1",
    "PAPER_FIGURE1_UTILIZATIONS",
    "SDP_RATIO_2",
    "SDP_RATIO_4",
]

#: Utilization grid of Figure 1 (the last point is the paper's 99.9%).
PAPER_FIGURE1_UTILIZATIONS = (0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.999)

SDP_RATIO_2 = (1.0, 2.0, 4.0, 8.0)
SDP_RATIO_4 = (1.0, 4.0, 16.0, 64.0)


@dataclass(frozen=True)
class FigureOneConfig:
    """Sweep parameters; defaults reproduce the paper's setup."""

    schedulers: tuple[str, ...] = ("wtp", "bpr")
    sdps: tuple[float, ...] = SDP_RATIO_2
    utilizations: tuple[float, ...] = PAPER_FIGURE1_UTILIZATIONS
    loads: ClassLoadDistribution = field(
        default_factory=lambda: PAPER_DEFAULT_LOADS
    )
    seeds: tuple[int, ...] = tuple(range(1, 11))
    horizon: float = 1e6
    warmup: float = 5e4
    check_feasibility: bool = True
    #: Run every point under the runtime invariant checker.
    check_invariants: bool = False
    #: Block-drawn trace compilation (bit-identical; much faster).
    compiled_arrivals: bool = True
    #: Busy-period drain kernel on the link (bit-identical; faster).
    drain: bool = True

    def scaled(self, factor: float) -> "FigureOneConfig":
        """Shrink run length and seed count by ``factor`` (0 < f <= 1)."""
        seeds = self.seeds[: max(1, round(len(self.seeds) * factor))]
        return FigureOneConfig(
            schedulers=self.schedulers,
            sdps=self.sdps,
            utilizations=self.utilizations,
            loads=self.loads,
            seeds=seeds,
            horizon=max(5e4, self.horizon * factor),
            warmup=max(2e3, self.warmup * factor),
            check_feasibility=self.check_feasibility,
            check_invariants=self.check_invariants,
            compiled_arrivals=self.compiled_arrivals,
            drain=self.drain,
        )


@dataclass
class FigureOnePoint:
    """One (scheduler, utilization) point: seed-averaged ratios."""

    scheduler: str
    utilization: float
    #: Mean over seeds of d_i / d_{i+1}, one entry per successive pair.
    ratios: list[float]
    target_ratios: list[float]
    feasible: bool

    @property
    def mean_ratio(self) -> float:
        return sum(self.ratios) / len(self.ratios)

    @property
    def worst_relative_error(self) -> float:
        return max(
            abs(r - t) / t for r, t in zip(self.ratios, self.target_ratios)
        )


def figure1_tasks(config: FigureOneConfig) -> list[SingleHopTask]:
    """The sweep grid, flattened in deterministic (rho, sched, seed) order."""
    tasks = []
    for utilization in config.utilizations:
        for scheduler in config.schedulers:
            for seed_index, seed in enumerate(config.seeds):
                tasks.append(
                    SingleHopTask(
                        config=SingleHopConfig(
                            scheduler=scheduler,
                            sdps=config.sdps,
                            utilization=utilization,
                            loads=config.loads,
                            horizon=config.horizon,
                            warmup=config.warmup,
                            seed=seed,
                            drain=config.drain,
                        ),
                        # The paper verifies Figures 1-2 operate at feasible
                        # DDPs (Section 3); checking one seed per point
                        # suffices.
                        compute_feasibility=(
                            config.check_feasibility and seed_index == 0
                        ),
                        check_invariants=config.check_invariants,
                        compiled_arrivals=config.compiled_arrivals,
                    )
                )
    return tasks


def run_figure1(
    config: FigureOneConfig, runner: Optional[SweepRunner] = None
) -> list[FigureOnePoint]:
    """Regenerate the Figure 1 series (one point per scheduler x rho).

    All (scheduler, rho, seed) runs are independent; they fan out over
    ``runner`` (inline/serial when omitted) and are aggregated here in
    fixed order, so parallel results equal serial ones exactly.
    """
    if runner is None:
        runner = serial_runner()
    summaries = runner.map(single_hop_summary, figure1_tasks(config))

    points = []
    cursor = 0
    count = len(config.seeds)
    for utilization in config.utilizations:
        for scheduler in config.schedulers:
            per_pair_sums = [0.0] * (len(config.sdps) - 1)
            feasible = True
            target = None
            for seed_index in range(count):
                summary = summaries[cursor]
                cursor += 1
                target = summary["target_ratios"]
                for i, ratio in enumerate(summary["ratios"]):
                    per_pair_sums[i] += ratio
                if "feasible" in summary and seed_index == 0:
                    feasible = summary["feasible"]
            ratios = [s / count for s in per_pair_sums]
            if any(math.isnan(r) for r in ratios):
                raise RuntimeError(
                    f"no departures for some class at rho={utilization}"
                )
            points.append(
                FigureOnePoint(
                    scheduler=scheduler,
                    utilization=utilization,
                    ratios=ratios,
                    target_ratios=list(target),
                    feasible=feasible,
                )
            )
    return points


def format_figure1(points: Sequence[FigureOnePoint]) -> str:
    """ASCII rendering of the Figure 1 series (one row per point)."""
    if not points:
        return "Figure 1: no points"
    target = points[0].target_ratios[0]
    pairs = len(points[0].ratios)
    lines = [
        f"Figure 1: desired average-delay ratio = {target:g}",
        f"{'sched':>6} {'rho':>6} "
        + " ".join(f"{'d%d/d%d' % (i + 1, i + 2):>8}" for i in range(pairs))
        + f" {'feasible':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.scheduler:>6} {p.utilization:>6.3f} "
            + " ".join(f"{r:>8.3f}" for r in p.ratios)
            + f" {str(p.feasible):>9}"
        )
    return "\n".join(lines)
