"""Token-bucket traffic policing -- the absolute-DiffServ substrate.

Section 1 contrasts the paper's *relative* differentiation with the
*absolute* DiffServ proposals: Premium Service (leased-line-like
behaviour for traffic inside a bandwidth profile, enforced by policing
and strict priority) and Assured Service (profile violations demoted to
a higher drop-preference rather than dropped).  This package implements
the common substrate -- a token bucket -- and the two edge behaviours,
so the trade-off the paper argues (absolute services need admission
control and waste capacity; relative services adapt) can be measured
instead of asserted.

A :class:`TokenBucket` with rate r (bytes per time unit) and burst b
(bytes) admits a packet of size L at time t iff the bucket holds at
least L tokens after refilling at rate r since the last check.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.link import Receiver
from ..sim.packet import Packet

__all__ = ["TokenBucket", "PremiumPolicer", "AssuredMarker"]


class TokenBucket:
    """Byte token bucket with continuous refill."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ConfigurationError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            raise ConfigurationError(
                f"time went backwards: {now} < {self._last_refill}"
            )
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    def conforms(self, size: float, now: float) -> bool:
        """True (and consume tokens) iff a ``size``-byte packet conforms."""
        self._refill(now)
        if size <= self._tokens:
            self._tokens -= size
            return True
        return False

    def tokens(self, now: float) -> float:
        """Current token level (after refilling to ``now``)."""
        self._refill(now)
        return self._tokens


class PremiumPolicer:
    """Premium Service edge: out-of-profile packets are *dropped*.

    Conforming packets pass through unchanged (send them into the
    highest class of a strict-priority link to complete the Premium
    forwarding model).
    """

    def __init__(
        self,
        sim: Simulator,
        target: Receiver,
        rate: float,
        burst: float,
    ) -> None:
        self.sim = sim
        self.target = target
        self.bucket = TokenBucket(rate, burst)
        self.forwarded = 0
        self.dropped = 0

    def receive(self, packet: Packet) -> None:
        if self.bucket.conforms(packet.size, self.sim.now):
            self.forwarded += 1
            self.target.receive(packet)
        else:
            self.dropped += 1


class AssuredMarker:
    """Assured Service edge: out-of-profile packets are *demoted*.

    Conforming ("In") packets keep their class; non-conforming ("Out")
    packets are rewritten to ``demote_to`` (lowest class by default), so
    congestion hits them first -- the drop-preference idea of [6],
    realized here through class rather than drop colour since the
    schedulers differentiate by class.
    """

    def __init__(
        self,
        sim: Simulator,
        target: Receiver,
        rate: float,
        burst: float,
        demote_to: int = 0,
    ) -> None:
        if demote_to < 0:
            raise ConfigurationError("demote_to must be a valid class index")
        self.sim = sim
        self.target = target
        self.bucket = TokenBucket(rate, burst)
        self.demote_to = demote_to
        self.in_profile = 0
        self.out_of_profile = 0

    def receive(self, packet: Packet) -> None:
        if self.bucket.conforms(packet.size, self.sim.now):
            self.in_profile += 1
        else:
            self.out_of_profile += 1
            packet.class_id = self.demote_to
        self.target.receive(packet)
