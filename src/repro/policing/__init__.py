"""Absolute-DiffServ edge behaviours (Premium/Assured), for contrast."""

from .token_bucket import AssuredMarker, PremiumPolicer, TokenBucket

__all__ = ["AssuredMarker", "PremiumPolicer", "TokenBucket"]
