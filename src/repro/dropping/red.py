"""RED and RIO queue management -- completing the Assured Service model.

The paper's reference [6] (Clark & Fang) realizes Assured Service with
*RIO*: RED with In/Out drop preference.  RED (Floyd & Jacobson) drops
arrivals probabilistically as the EWMA queue length climbs between two
thresholds, keeping queues short and de-synchronizing flows; RIO runs
two RED instances -- a lenient one for in-profile ("In") packets and an
aggressive one, driven by the *total* queue, for out-of-profile ("Out")
packets -- so violations feel congestion first.

These droppers plug into :class:`repro.sim.link.Link` like any
:class:`~repro.dropping.base.DropPolicy`, but act *probabilistically on
arrivals* (choose_victim returns ``None`` to drop the arriving packet)
rather than picking queued victims, matching how RED is deployed.  Use
them with ``buffer_packets`` as the hard limit behind the thresholds.

Out-of-profile classification: a packet is "Out" when its class is in
``out_classes`` (compose with
:class:`repro.policing.token_bucket.AssuredMarker`, which demotes
violators into a designated class).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sim.packet import Packet
from ..sim.queues import ClassQueueSet
from .base import DropPolicy

__all__ = ["REDDropper", "RIODropper"]


class _RedCurve:
    """One RED instance: EWMA queue average + drop probability ramp."""

    def __init__(
        self,
        min_threshold: float,
        max_threshold: float,
        max_probability: float,
        weight: float,
    ) -> None:
        if not 0 < min_threshold < max_threshold:
            raise ConfigurationError(
                "need 0 < min_threshold < max_threshold"
            )
        if not 0 < max_probability <= 1:
            raise ConfigurationError("max_probability must be in (0, 1]")
        if not 0 < weight <= 1:
            raise ConfigurationError("EWMA weight must be in (0, 1]")
        self.min_threshold = float(min_threshold)
        self.max_threshold = float(max_threshold)
        self.max_probability = float(max_probability)
        self.weight = float(weight)
        self.average = 0.0

    def update(self, instantaneous_queue: float) -> None:
        self.average = (
            (1.0 - self.weight) * self.average
            + self.weight * instantaneous_queue
        )

    def drop_probability(self) -> float:
        if self.average < self.min_threshold:
            return 0.0
        if self.average >= self.max_threshold:
            return 1.0
        span = self.max_threshold - self.min_threshold
        return self.max_probability * (self.average - self.min_threshold) / span


class REDDropper(DropPolicy):
    """Classic single-curve RED over the total queue length (packets).

    Attach as a Link drop policy *and* note that RED decides on every
    arrival: install it with a generous ``buffer_packets`` hard limit
    and call :meth:`should_drop` implicitly via the Link overflow path
    only as the last resort.  For early (pre-overflow) dropping, wrap
    the link with :meth:`gate` as the source target.
    """

    def __init__(
        self,
        min_threshold: float = 5.0,
        max_threshold: float = 15.0,
        max_probability: float = 0.1,
        weight: float = 0.002,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.curve = _RedCurve(min_threshold, max_threshold,
                               max_probability, weight)
        self._rng = rng if rng is not None else np.random.default_rng()
        self.early_drops = 0
        self.forced_drops = 0
        self._queues: Optional[ClassQueueSet] = None

    # ------------------------------------------------------------------
    def on_arrival(self, class_id: int, now: float) -> None:
        if self._queues is not None:
            self.curve.update(self._queues.total_packets)

    def should_drop(self, queues: ClassQueueSet, packet: Packet) -> bool:
        """RED early-drop decision for an arriving packet."""
        self._queues = queues
        self.curve.update(queues.total_packets)
        if self._rng.random() < self.curve.drop_probability():
            self.early_drops += 1
            return True
        return False

    def choose_victim(
        self, queues: ClassQueueSet, arriving: Packet, now: float
    ) -> Optional[int]:
        # Hard-limit overflow: RED always sacrifices the arrival.
        self.forced_drops += 1
        return None


class RIODropper(REDDropper):
    """RED with In/Out: Out packets face an aggressive curve driven by
    the total queue; In packets a lenient curve driven by the In queue.
    """

    def __init__(
        self,
        out_classes: Sequence[int],
        in_curve: tuple[float, float, float] = (10.0, 30.0, 0.05),
        out_curve: tuple[float, float, float] = (3.0, 12.0, 0.3),
        weight: float = 0.002,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(*in_curve, weight=weight, rng=rng)
        self.out_classes = frozenset(int(c) for c in out_classes)
        if not self.out_classes:
            raise ConfigurationError("need at least one Out class")
        self.out_curve_instance = _RedCurve(*out_curve, weight=weight)
        self.in_drops = 0
        self.out_drops = 0

    def should_drop(self, queues: ClassQueueSet, packet: Packet) -> bool:
        self._queues = queues
        total = queues.total_packets
        in_packets = total - sum(
            queues.backlog_packets(c)
            for c in self.out_classes
            if c < queues.num_classes
        )
        self.curve.update(in_packets)
        self.out_curve_instance.update(total)
        if packet.class_id in self.out_classes:
            probability = self.out_curve_instance.drop_probability()
        else:
            probability = self.curve.drop_probability()
        if self._rng.random() < probability:
            self.early_drops += 1
            if packet.class_id in self.out_classes:
                self.out_drops += 1
            else:
                self.in_drops += 1
            return True
        return False


class REDGate:
    """Receiver wrapper applying RED's early-drop before a link.

    RED drops *arrivals* even when the buffer is not full; the plain
    Link only consults its policy on overflow.  The gate closes that
    gap: ``source -> REDGate(dropper, link) -> link``.
    """

    def __init__(self, dropper: REDDropper, link) -> None:
        self.dropper = dropper
        self.link = link
        self.admitted = 0
        self.dropped = 0

    def receive(self, packet: Packet) -> None:
        if self.dropper.should_drop(self.link.scheduler.queues, packet):
            self.dropped += 1
            return
        self.admitted += 1
        self.link.receive(packet)


__all__.append("REDGate")
