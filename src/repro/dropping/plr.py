"""Proportional Loss Rate (PLR) droppers -- the future-work extension.

The proportional differentiation model applied to the *loss* metric:
with Loss Differentiation Parameters sigma_1 > sigma_2 > ... > sigma_N
(class 1 loses most), the target is

    l_i / l_j = sigma_i / sigma_j

for the class loss fractions l_i.  When a drop is needed, the dropper
removes a packet from the backlogged class whose *normalized* loss
fraction (l_i / sigma_i) is currently smallest -- the class furthest
below its proportional share -- which steers the ratios toward the
target, the loss-domain mirror of WTP's delay feedback.

Two estimators of l_i, following the authors' follow-on work:

* PLR(inf): loss fraction measured over the whole run
  (drops_i / arrivals_i since t=0).
* PLR(M): loss fraction over a sliding window of the last M arrivals,
  adapting to class-load changes at the cost of noisier estimates.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..sim.packet import Packet
from ..sim.queues import ClassQueueSet
from .base import DropPolicy

__all__ = ["PLRDropper", "validate_ldps"]


def validate_ldps(ldps: Sequence[float]) -> tuple[float, ...]:
    """Validate loss differentiation parameters sigma_1 > ... > sigma_N > 0."""
    values = tuple(float(s) for s in ldps)
    if len(values) < 1:
        raise ConfigurationError("need at least one LDP")
    if any(s <= 0 for s in values):
        raise ConfigurationError(f"LDPs must be positive: {values}")
    if any(b >= a for a, b in zip(values, values[1:])):
        raise ConfigurationError(
            f"LDPs must be strictly decreasing (class 1 loses most): {values}"
        )
    return values


class PLRDropper(DropPolicy):
    """Drop from the class with the smallest normalized loss fraction.

    ``window`` selects the estimator: ``None`` gives PLR(inf); an
    integer M gives PLR(M) over the last M arrivals.
    """

    def __init__(self, ldps: Sequence[float], window: Optional[int] = None) -> None:
        self.ldps = validate_ldps(ldps)
        if window is not None and window < 1:
            raise ConfigurationError(f"window must be >= 1 when set: {window}")
        self.window = window
        num = len(self.ldps)
        self.arrivals = [0] * num
        self.drops = [0] * num
        # Sliding-window bookkeeping for PLR(M): (class_id, was_dropped).
        self._history: deque[list] = deque()
        self._win_arrivals = [0] * num
        self._win_drops = [0] * num

    # ------------------------------------------------------------------
    def on_arrival(self, class_id: int, now: float) -> None:
        self.arrivals[class_id] += 1
        if self.window is None:
            return
        record = [class_id, False]
        self._history.append(record)
        self._win_arrivals[class_id] += 1
        if len(self._history) > self.window:
            old_class, old_dropped = self._history.popleft()
            self._win_arrivals[old_class] -= 1
            if old_dropped:
                self._win_drops[old_class] -= 1

    def on_drop(self, class_id: int, now: float) -> None:
        self.drops[class_id] += 1
        if self.window is None:
            return
        # Attribute the drop to that class's most recent windowed arrival
        # not yet marked dropped (the victim is always a recent arrival).
        self._win_drops[class_id] += 1
        for record in reversed(self._history):
            if record[0] == class_id and not record[1]:
                record[1] = True
                break
        else:
            # Victim's arrival already slid out of the window; undo the
            # windowed count to keep it consistent.
            self._win_drops[class_id] -= 1

    # ------------------------------------------------------------------
    def loss_fraction(self, class_id: int) -> float:
        """Current loss-fraction estimate for a class (0 if no arrivals)."""
        if self.window is None:
            arrivals, drops = self.arrivals[class_id], self.drops[class_id]
        else:
            arrivals = self._win_arrivals[class_id]
            drops = self._win_drops[class_id]
        return drops / arrivals if arrivals else 0.0

    def choose_victim(
        self, queues: ClassQueueSet, arriving: Packet, now: float
    ) -> Optional[int]:
        best_class: Optional[int] = None
        best_metric = float("inf")
        for cid in queues.backlogged_classes():
            metric = self.loss_fraction(cid) / self.ldps[cid]
            if metric < best_metric:
                best_metric = metric
                best_class = cid
        # All queues empty (only possible if buffer limit < 1 packet of
        # backlog, i.e. never in practice): drop the arriving packet.
        return best_class

    def loss_ratios(self) -> list[float]:
        """l_i / l_{i+1} for successive classes (NaN when undefined)."""
        fractions = [
            self.drops[c] / self.arrivals[c] if self.arrivals[c] else float("nan")
            for c in range(len(self.ldps))
        ]
        out = []
        for a, b in zip(fractions, fractions[1:]):
            out.append(a / b if b else float("nan"))
        return out
