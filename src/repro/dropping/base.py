"""Drop-policy interface for lossy links (extension).

The paper's schedulers run lossless (Section 3's ECN-stable regime);
coupled delay *and loss* differentiation is explicitly left as future
work.  This subpackage builds that direction: a :class:`DropPolicy`
decides, when a bounded buffer overflows, which class loses a packet.

Contract with :class:`repro.sim.link.Link`:

* ``on_arrival(class_id, now)`` -- every arrival (kept or not), so the
  policy can maintain per-class loss *fractions*.
* ``choose_victim(queues, arriving, now)`` -- buffer is full; return the
  class to drop from (its queue tail is removed) or ``None`` to drop the
  arriving packet itself.
* ``on_drop(class_id, now)`` -- a packet of that class was dropped.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ..sim.packet import Packet
from ..sim.queues import ClassQueueSet

__all__ = ["DropPolicy"]


class DropPolicy(ABC):
    """Chooses loss victims when a bounded buffer overflows."""

    def on_arrival(self, class_id: int, now: float) -> None:
        """Hook: a packet of ``class_id`` arrived at the link."""

    @abstractmethod
    def choose_victim(
        self, queues: ClassQueueSet, arriving: Packet, now: float
    ) -> Optional[int]:
        """Class to drop from (must be backlogged), or ``None`` for the
        arriving packet."""

    def on_drop(self, class_id: int, now: float) -> None:
        """Hook: a packet of ``class_id`` was dropped."""
