"""Plain tail drop: the arriving packet is always the victim.

The undifferentiated baseline for the loss-differentiation extension
(equivalent to passing no policy at all, but explicit so experiments can
name it).
"""

from __future__ import annotations

from typing import Optional

from ..sim.packet import Packet
from ..sim.queues import ClassQueueSet
from .base import DropPolicy

__all__ = ["TailDropPolicy"]


class TailDropPolicy(DropPolicy):
    """Drop every packet that arrives to a full buffer."""

    def choose_victim(
        self, queues: ClassQueueSet, arriving: Packet, now: float
    ) -> Optional[int]:
        return None
