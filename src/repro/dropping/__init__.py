"""Loss differentiation (the paper's future-work direction)."""

from .base import DropPolicy
from .plr import PLRDropper, validate_ldps
from .red import REDDropper, REDGate, RIODropper
from .tail_drop import TailDropPolicy

__all__ = [
    "DropPolicy",
    "PLRDropper",
    "validate_ldps",
    "REDDropper",
    "REDGate",
    "RIODropper",
    "TailDropPolicy",
]
