"""Built-in self-check battery (``repro-pdd selfcheck``).

Runs the cross-validations that anchor this reproduction and reports
pass/fail with the measured numbers:

1. the event-driven FCFS link reproduces the Lindley recursion exactly;
2. simulated M/D/1 waits match Pollaczek-Khinchine;
3. the event-driven WTP scheduler matches Kleinrock's time-dependent-
   priority solution (Poisson traffic);
4. strict priority matches Cobham's formula;
5. the conservation law (Eq 5) holds on a Pareto run;
6. the paper's default operating point is Eq 7-feasible;
7. Proposition 1 (fluid BPR simultaneous clearing) and Proposition 2
   (WTP burst overtaking) hold constructively.

Each check is cheap (a few seconds total); the battery doubles as an
install verification and as a fixture for the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["CheckResult", "run_selfcheck", "format_selfcheck"]


@dataclass
class CheckResult:
    """Outcome of one self-check."""

    name: str
    passed: bool
    detail: str


def _check_fcfs_lindley() -> CheckResult:
    from .core.conservation import fcfs_waiting_times
    from .schedulers import FCFSScheduler
    from .sim import Link, PacketSink, Simulator
    from .sim.rng import RandomStreams
    from .traffic import FixedPacketSize, PoissonInterarrivals
    from .traffic.trace import TraceSource, build_class_trace

    streams = RandomStreams(101)
    trace = build_class_trace(
        0, PoissonInterarrivals(1.2, streams.generator()),
        FixedPacketSize(1.0), 2000.0,
    )
    sim = Simulator()
    sink = PacketSink(keep_packets=True)
    link = Link(sim, FCFSScheduler(1), capacity=1.0, target=sink)
    TraceSource(sim, link, trace).start()
    sim.run()
    expected = fcfs_waiting_times(trace.times, trace.sizes, 1.0)
    measured = np.array([p.queueing_delay for p in sink.packets])
    worst = float(np.abs(measured - expected).max()) if len(measured) else 0.0
    return CheckResult(
        "fcfs-vs-lindley", worst < 1e-9,
        f"max |sim - recursion| = {worst:.2e} over {len(measured)} packets",
    )


def _md1_check() -> CheckResult:
    from .schedulers import FCFSScheduler
    from .sim import DelayMonitor, Link, PacketSink, Simulator
    from .sim.rng import RandomStreams
    from .theory import ServiceDistribution, mg1_mean_wait
    from .traffic import FixedPacketSize, PacketIdAllocator, PoissonInterarrivals, TrafficSource

    sim = Simulator()
    streams = RandomStreams(102)
    link = Link(sim, FCFSScheduler(1), capacity=1.0, target=PacketSink())
    monitor = DelayMonitor(1, warmup=5e3)
    link.add_monitor(monitor)
    TrafficSource(
        sim, link, 0, PoissonInterarrivals(1.25, streams.generator()),
        FixedPacketSize(1.0), ids=PacketIdAllocator(),
    ).start()
    sim.run(until=2e5)
    expected = mg1_mean_wait(0.8, ServiceDistribution.deterministic(1.0))
    measured = monitor.mean_delay(0)
    error = abs(measured - expected) / expected
    return CheckResult(
        "md1-vs-pollaczek-khinchine", error < 0.05,
        f"measured {measured:.3f} vs P-K {expected:.3f} (rel err {error:.1%})",
    )


def _tdp_check() -> CheckResult:
    from .schedulers import WTPScheduler
    from .sim import DelayMonitor, Link, PacketSink, Simulator
    from .sim.rng import RandomStreams
    from .theory import ServiceDistribution, tdp_waits
    from .traffic import FixedPacketSize, PacketIdAllocator, PoissonInterarrivals, TrafficSource

    rates = [0.32, 0.24, 0.16, 0.08]
    sdps = (1.0, 2.0, 4.0, 8.0)
    sim = Simulator()
    streams = RandomStreams(103)
    link = Link(sim, WTPScheduler(sdps), capacity=1.0, target=PacketSink())
    monitor = DelayMonitor(4, warmup=5e3)
    link.add_monitor(monitor)
    ids = PacketIdAllocator()
    for cid, rate in enumerate(rates):
        TrafficSource(
            sim, link, cid, PoissonInterarrivals(1.0 / rate, streams.generator()),
            FixedPacketSize(1.0), ids=ids,
        ).start()
    sim.run(until=3e5)
    theory = tdp_waits(rates, sdps, ServiceDistribution.deterministic(1.0))
    measured = monitor.mean_delays()
    worst = max(abs(m - t) / t for m, t in zip(measured, theory))
    return CheckResult(
        "wtp-vs-kleinrock-tdp", worst < 0.10,
        f"worst per-class rel err {worst:.1%} "
        f"(measured {[round(m, 2) for m in measured]})",
    )


def _cobham_check() -> CheckResult:
    from .schedulers import StrictPriorityScheduler
    from .sim import DelayMonitor, Link, PacketSink, Simulator
    from .sim.rng import RandomStreams
    from .theory import ServiceDistribution, strict_priority_waits
    from .traffic import FixedPacketSize, PacketIdAllocator, PoissonInterarrivals, TrafficSource

    rates = [0.4, 0.3, 0.1]
    sim = Simulator()
    streams = RandomStreams(104)
    link = Link(sim, StrictPriorityScheduler(3), capacity=1.0, target=PacketSink())
    monitor = DelayMonitor(3, warmup=5e3)
    link.add_monitor(monitor)
    ids = PacketIdAllocator()
    for cid, rate in enumerate(rates):
        TrafficSource(
            sim, link, cid, PoissonInterarrivals(1.0 / rate, streams.generator()),
            FixedPacketSize(1.0), ids=ids,
        ).start()
    sim.run(until=3e5)
    theory = strict_priority_waits(rates, ServiceDistribution.deterministic(1.0))
    measured = monitor.mean_delays()
    worst = max(abs(m - t) / t for m, t in zip(measured, theory))
    return CheckResult(
        "strict-vs-cobham", worst < 0.10,
        f"worst per-class rel err {worst:.1%}",
    )


def _conservation_check() -> CheckResult:
    from .experiments import SingleHopConfig, run_single_hop

    result = run_single_hop(
        SingleHopConfig(utilization=0.9, horizon=1.5e5, warmup=7.5e3, seed=105)
    )
    residual = abs(result.conservation_residual())
    return CheckResult(
        "conservation-law-eq5", residual < 0.08,
        f"relative Eq 5 residual {residual:.2%} on a Pareto run",
    )


def _feasibility_check() -> CheckResult:
    from .experiments import SingleHopConfig, run_single_hop

    result = run_single_hop(
        SingleHopConfig(utilization=0.95, horizon=1.5e5, warmup=7.5e3, seed=106)
    )
    report = result.feasibility_report()
    return CheckResult(
        "feasibility-eq7", report.feasible,
        f"worst subset margin {report.worst_margin():.1f} over "
        f"{len(report.margins)} subsets",
    )


def _propositions_check() -> CheckResult:
    from .experiments.ablations import wtp_starvation_demo
    from .schedulers import fluid_backlogs, fluid_clearing_time

    q0 = [120.0, 60.0, 20.0]
    t_clear = fluid_clearing_time(q0, capacity=10.0)
    near_end = fluid_backlogs(q0, (1.0, 2.0, 4.0), 10.0, t_clear * (1 - 1e-9))
    prop1 = all(q > 0 for q in near_end)
    row = wtp_starvation_demo(burst_packets=150)
    prop2 = row.values["overtakers"] == 150.0 and row.values["condition_holds"]
    return CheckResult(
        "propositions-1-and-2", bool(prop1 and prop2),
        f"P1: all queues positive until t={t_clear:g}; "
        f"P2: {int(row.values['overtakers'])}/150 burst packets overtook",
    )


_CHECKS: tuple[Callable[[], CheckResult], ...] = (
    _check_fcfs_lindley,
    _md1_check,
    _tdp_check,
    _cobham_check,
    _conservation_check,
    _feasibility_check,
    _propositions_check,
)


def run_selfcheck() -> list[CheckResult]:
    """Run the whole battery; never raises, failures are reported."""
    results = []
    for check in _CHECKS:
        try:
            results.append(check())
        except Exception as exc:  # noqa: BLE001 - a crash IS the finding
            results.append(
                CheckResult(check.__name__.strip("_"), False, f"crashed: {exc!r}")
            )
    return results


def format_selfcheck(results: list[CheckResult]) -> str:
    """Human-readable battery report."""
    lines = ["Self-check battery (theory vs simulator cross-validation):"]
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        lines.append(f"  [{status}] {result.name}: {result.detail}")
    failed = sum(1 for r in results if not r.passed)
    lines.append(
        f"{len(results) - failed}/{len(results)} checks passed"
        + ("" if not failed else " -- INSTALLATION PROBLEM, see failures")
    )
    return "\n".join(lines)
