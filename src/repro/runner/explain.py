"""Why did each sweep cell hit or miss the cache?

The coarse answer a hit/miss counter gives ("14 of 28 missed") is
useless when deciding whether a cold sweep is *expected*: did the cells
miss because they are genuinely new work, or because a code change
invalidated them -- and if so, which modules?  This module turns the
:class:`~repro.runner.cache.ResultCache`'s by-task index into that
answer, cell by cell.

Statuses
--------
``hit``
    The blob for the cell's full key exists.
``new-task``
    No index entry: this (worker, task) pair was never computed here.
``code-changed``
    An index entry exists but was written under a different code
    version; ``changed_modules`` names the closure modules whose source
    hash differs (empty when the previous run recorded no manifest,
    e.g. a worker outside the package hashed with the global version).
``stale-entry``
    The index says this exact key was written before, but the blob is
    missing or unreadable (evicted, cleared, or corrupt).

Both runners collect explanations when constructed with
``explain=True``; the CLI surfaces them via ``--explain-cache``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from .cache import ResultCache
from .hashing import canonical_payload, fingerprint, worker_manifest

__all__ = ["CellExplanation", "ExplainReport", "explain_cells", "task_fingerprint"]


def task_fingerprint(worker: Callable, task: Any) -> str:
    """Code-version-independent identity of one (worker, task) cell."""
    return fingerprint(
        {
            "worker": f"{worker.__module__}.{worker.__qualname__}",
            "task": canonical_payload(task),
        }
    )


@dataclass(frozen=True)
class CellExplanation:
    """One cell's cache verdict."""

    index: int
    key: str
    status: str  # hit | new-task | code-changed | stale-entry
    changed_modules: tuple[str, ...] = ()

    @property
    def hit(self) -> bool:
        return self.status == "hit"


@dataclass
class ExplainReport:
    """All cell explanations of one sweep, plus aggregate rendering."""

    worker: str
    cells: list[CellExplanation]

    @property
    def hits(self) -> int:
        return sum(1 for cell in self.cells if cell.hit)

    @property
    def hit_rate(self) -> float:
        return self.hits / len(self.cells) if self.cells else 1.0

    def status_counts(self) -> dict[str, int]:
        return dict(Counter(cell.status for cell in self.cells))

    def changed_modules(self) -> list[str]:
        """Distinct invalidating modules across all cells (sorted)."""
        modules: set[str] = set()
        for cell in self.cells:
            modules.update(cell.changed_modules)
        return sorted(modules)

    def summary(self) -> str:
        """Multi-line human-readable report (printed by the CLI)."""
        total = len(self.cells)
        counts = self.status_counts()
        parts = [f"{counts.get('hit', 0)}/{total} hits ({self.hit_rate:.1%})"]
        for status in ("new-task", "code-changed", "stale-entry"):
            if counts.get(status):
                parts.append(f"{counts[status]} {status}")
        lines = [f"[explain-cache] {self.worker}: " + ", ".join(parts)]
        modules = self.changed_modules()
        if modules:
            shown = ", ".join(modules[:6])
            more = f" (+{len(modules) - 6} more)" if len(modules) > 6 else ""
            lines.append(f"[explain-cache]   invalidated by: {shown}{more}")
        return "\n".join(lines)


def explain_cells(
    cache: ResultCache,
    worker: Callable,
    tasks: Sequence[Any],
    keys: Sequence[str],
    task_fps: Optional[Sequence[str]] = None,
) -> ExplainReport:
    """Explain every cell of a sweep against the cache's current state.

    ``keys`` are the full cache keys (code version folded in);
    ``task_fps`` the code-independent fingerprints (computed here when
    omitted).  Reads only index entries and blob existence -- never
    result payloads -- so explaining a 10^5-cell grid stays cheap.
    """
    manifest = worker_manifest(worker)
    cells: list[CellExplanation] = []
    for index, (task, key) in enumerate(zip(tasks, keys)):
        if key in cache:
            cells.append(CellExplanation(index, key, "hit"))
            continue
        task_fp = (
            task_fps[index] if task_fps is not None
            else task_fingerprint(worker, task)
        )
        entry = cache.get_index(task_fp)
        if entry is None:
            cells.append(CellExplanation(index, key, "new-task"))
        elif entry.get("key") == key:
            cells.append(CellExplanation(index, key, "stale-entry"))
        else:
            old_modules = entry.get("modules") or {}
            changed = tuple(
                sorted(
                    name
                    for name in set(manifest) | set(old_modules)
                    if manifest.get(name) != old_modules.get(name)
                )
            )
            cells.append(CellExplanation(index, key, "code-changed", changed))
    return ExplainReport(worker=worker.__qualname__, cells=cells)
