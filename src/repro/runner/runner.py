"""Parallel sweep execution with deterministic ordering and caching.

The paper's evaluation is a grid of independent seeded simulations
(Figure 1 alone is 2 schedulers x 7 utilizations x 10 seeds), which is
embarrassingly parallel.  :class:`SweepRunner` fans a list of *tasks*
(small frozen dataclasses) out over a ``ProcessPoolExecutor`` and
returns the worker payloads **in task order**, so a parallel sweep is
bit-identical to a serial one -- workers communicate only JSON-able
summaries and every aggregation happens in the parent in a fixed order.

When a :class:`~repro.runner.cache.ResultCache` is attached, each task
is first looked up by its content hash (task fingerprint + *delta-aware*
code version + worker name); only misses are simulated.  The code
component hashes only the modules in the worker's static import closure
(:func:`~repro.runner.hashing.worker_code_version`), so editing a figure
script or the CLI no longer invalidates kernel-bound results.
Re-running a figure with one changed parameter therefore only simulates
the new points, and a warm re-run executes zero simulations.

The pool is created once and reused across ``map`` calls (forking
workers costs ~20 ms; a figure driver issues several grids back to
back), and tasks are shipped in ``chunksize`` batches to amortize the
~100 us/task pickle/dispatch overhead of tiny cells.  For city-scale
grids whose results must not accumulate in coordinator RAM, see the
sharded tier in :mod:`repro.runner.shard`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from .cache import ResultCache
from .hashing import (
    canonical_payload,
    fingerprint,
    worker_code_version,
    worker_manifest,
)

__all__ = ["SweepRunner", "SweepReport", "serial_runner", "cache_key"]


@dataclass
class SweepReport:
    """Hit/miss accounting for one ``SweepRunner.map`` call."""

    total: int
    cache_hits: int
    executed: int
    jobs: int
    elapsed: float
    worker: str

    def summary(self) -> str:
        """One-line human-readable report (printed by the CLI)."""
        return (
            f"{self.worker}: {self.total} runs, {self.cache_hits} cache hits, "
            f"{self.executed} executed (jobs={self.jobs}, {self.elapsed:.1f}s)"
        )


def cache_key(worker: Callable[[Any], Any], task: Any) -> str:
    """Content hash addressing one (worker, task) result.

    The code component is the worker's *closure* version: only edits to
    modules the worker (transitively, statically) imports change it.
    """
    return fingerprint(
        {
            "worker": f"{worker.__module__}.{worker.__qualname__}",
            "code": worker_code_version(worker),
            "task": canonical_payload(task),
        }
    )


@dataclass
class SweepRunner:
    """Fan independent sweep tasks out over processes, with caching.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` means ``os.cpu_count()``.  With
        ``jobs=1`` (or a single pending task) everything runs inline in
        the parent -- no pool, no pickling -- which is also the default
        the experiment drivers construct when no runner is passed.
    cache:
        Optional :class:`ResultCache`; ``None`` disables caching.
    chunksize:
        Tasks per pickle batch shipped to the pool.  ``0`` picks
        ``len(pending) // (jobs * 4)`` (clamped to >= 1): big enough to
        amortize dispatch, small enough to keep all workers fed.  The
        default of 1 preserves the historical per-task dispatch, which
        is right when single cells take seconds.
    explain:
        Collect an :class:`~repro.runner.explain.ExplainReport` per map
        call into ``self.explanations`` (requires a cache).
    """

    jobs: Optional[int] = 1
    cache: Optional[ResultCache] = None
    chunksize: int = 1
    explain: bool = False
    reports: list[SweepReport] = field(default_factory=list)
    explanations: list[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.jobs is None:
            self.jobs = os.cpu_count() or 1
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1: {self.jobs}")
        if self.chunksize < 0:
            raise ValueError(f"chunksize must be >= 0: {self.chunksize}")
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    @property
    def last_report(self) -> Optional[SweepReport]:
        return self.reports[-1] if self.reports else None

    def _warm_pool(self, workers: int) -> ProcessPoolExecutor:
        """The persistent pool, (re)created when more workers are needed.

        Reusing one pool across ``map`` calls saves a fork+import round
        trip per grid; a pool sized for an earlier, larger grid is kept
        (idle workers are cheap, respawning is not).
        """
        if self._pool is not None and self._pool_size < workers:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._pool_size = workers
        return self._pool

    def shutdown(self) -> None:
        """Release the persistent worker pool (idempotent)."""
        if getattr(self, "_pool", None) is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.shutdown()
        except Exception:
            pass

    def map(
        self, worker: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        """Run ``worker`` over every task; results come back in task order.

        ``worker`` must be a module-level function (picklable) taking one
        task and returning a JSON-serializable payload -- that is what
        makes cached and freshly computed results interchangeable.
        """
        started = time.perf_counter()
        results: list[Any] = [None] * len(tasks)
        pending: list[int] = []
        keys: list[Optional[str]] = [None] * len(tasks)

        if self.cache is not None:
            for index, task in enumerate(tasks):
                key = cache_key(worker, task)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is None:
                    pending.append(index)
                else:
                    results[index] = cached
        else:
            pending = list(range(len(tasks)))

        if self.explain and self.cache is not None:
            from .explain import explain_cells

            self.explanations.append(
                explain_cells(self.cache, worker, tasks, keys)
            )

        hits = len(tasks) - len(pending)
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                chunk = self.chunksize or max(1, len(pending) // (workers * 4))
                pool = self._warm_pool(workers)
                fresh = list(
                    pool.map(
                        worker,
                        [tasks[i] for i in pending],
                        chunksize=chunk,
                    )
                )
            else:
                fresh = [worker(tasks[i]) for i in pending]
            if self.cache is not None:
                from .explain import task_fingerprint

                manifest = worker_manifest(worker)
                code = worker_code_version(worker)
            for index, payload in zip(pending, fresh):
                results[index] = payload
                if self.cache is not None:
                    self.cache.put(keys[index], payload)
                    self.cache.put_index(
                        task_fingerprint(worker, tasks[index]),
                        {
                            "key": keys[index],
                            "code": code,
                            "modules": manifest,
                        },
                    )

        self.reports.append(
            SweepReport(
                total=len(tasks),
                cache_hits=hits,
                executed=len(pending),
                jobs=self.jobs,
                elapsed=time.perf_counter() - started,
                worker=worker.__qualname__,
            )
        )
        return results


def serial_runner() -> SweepRunner:
    """The default runner: inline execution, no cache, no processes."""
    return SweepRunner(jobs=1, cache=None)
