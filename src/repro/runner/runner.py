"""Parallel sweep execution with deterministic ordering and caching.

The paper's evaluation is a grid of independent seeded simulations
(Figure 1 alone is 2 schedulers x 7 utilizations x 10 seeds), which is
embarrassingly parallel.  :class:`SweepRunner` fans a list of *tasks*
(small frozen dataclasses) out over a ``ProcessPoolExecutor`` and
returns the worker payloads **in task order**, so a parallel sweep is
bit-identical to a serial one -- workers communicate only JSON-able
summaries and every aggregation happens in the parent in a fixed order.

When a :class:`~repro.runner.cache.ResultCache` is attached, each task
is first looked up by its content hash (task fingerprint + repro code
version + worker name); only misses are simulated.  Re-running a figure
with one changed parameter therefore only simulates the new points, and
a warm re-run executes zero simulations.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from .cache import ResultCache
from .hashing import canonical_payload, code_version, fingerprint

__all__ = ["SweepRunner", "SweepReport", "serial_runner"]


@dataclass
class SweepReport:
    """Hit/miss accounting for one ``SweepRunner.map`` call."""

    total: int
    cache_hits: int
    executed: int
    jobs: int
    elapsed: float
    worker: str

    def summary(self) -> str:
        """One-line human-readable report (printed by the CLI)."""
        return (
            f"{self.worker}: {self.total} runs, {self.cache_hits} cache hits, "
            f"{self.executed} executed (jobs={self.jobs}, {self.elapsed:.1f}s)"
        )


def cache_key(worker: Callable[[Any], Any], task: Any) -> str:
    """Content hash addressing one (worker, task) result."""
    return fingerprint(
        {
            "worker": f"{worker.__module__}.{worker.__qualname__}",
            "code": code_version(),
            "task": canonical_payload(task),
        }
    )


@dataclass
class SweepRunner:
    """Fan independent sweep tasks out over processes, with caching.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` means ``os.cpu_count()``.  With
        ``jobs=1`` (or a single pending task) everything runs inline in
        the parent -- no pool, no pickling -- which is also the default
        the experiment drivers construct when no runner is passed.
    cache:
        Optional :class:`ResultCache`; ``None`` disables caching.
    """

    jobs: Optional[int] = 1
    cache: Optional[ResultCache] = None
    reports: list[SweepReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.jobs is None:
            self.jobs = os.cpu_count() or 1
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1: {self.jobs}")

    # ------------------------------------------------------------------
    @property
    def last_report(self) -> Optional[SweepReport]:
        return self.reports[-1] if self.reports else None

    def map(
        self, worker: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> list[Any]:
        """Run ``worker`` over every task; results come back in task order.

        ``worker`` must be a module-level function (picklable) taking one
        task and returning a JSON-serializable payload -- that is what
        makes cached and freshly computed results interchangeable.
        """
        started = time.perf_counter()
        results: list[Any] = [None] * len(tasks)
        pending: list[int] = []
        keys: list[Optional[str]] = [None] * len(tasks)

        if self.cache is not None:
            for index, task in enumerate(tasks):
                key = cache_key(worker, task)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is None:
                    pending.append(index)
                else:
                    results[index] = cached
        else:
            pending = list(range(len(tasks)))

        hits = len(tasks) - len(pending)
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    fresh = list(
                        pool.map(worker, [tasks[i] for i in pending])
                    )
            else:
                fresh = [worker(tasks[i]) for i in pending]
            for index, payload in zip(pending, fresh):
                results[index] = payload
                if self.cache is not None:
                    self.cache.put(keys[index], payload)

        self.reports.append(
            SweepReport(
                total=len(tasks),
                cache_hits=hits,
                executed=len(pending),
                jobs=self.jobs,
                elapsed=time.perf_counter() - started,
                worker=worker.__qualname__,
            )
        )
        return results


def serial_runner() -> SweepRunner:
    """The default runner: inline execution, no cache, no processes."""
    return SweepRunner(jobs=1, cache=None)
