"""Stable content hashes for sweep configs and for the code itself.

Two ingredients feed every cache key:

* :func:`fingerprint` -- a canonical-JSON SHA-256 of an arbitrary
  (frozen-dataclass-shaped) task description.  Dataclasses are encoded
  with their qualified type name plus field dict, tuples as lists, so
  the hash is stable across processes and Python hash randomization.
* :func:`task_code_version` -- a SHA-256 over the *per-module* source
  hashes of exactly the ``repro`` modules a worker's module (statically,
  transitively) imports.  Editing a figure script or the CLI therefore
  no longer invalidates kernel-bound cells: only the modules in the
  worker's dependency closure enter its cache keys.

The import closure is computed from the AST -- every ``import`` /
``from .. import`` statement anywhere in a module's source, including
function-local lazy imports, resolved against the package's module
table.  Package ``__init__`` files enter the closure only when an
import statement targets the package itself (``from ..invariants import
InvariantChecker``): they are re-export shims, and the defining modules
they re-export from are reached through their own import statements.
This is deliberately conservative in one direction only -- a module the
closure includes but the task never executes costs a spurious
invalidation, never a stale hit.  The one rule authors must uphold is
that dynamic imports built from strings (``importlib.import_module(f"
...")``) are invisible to the AST walk; the package has none.

:func:`code_version` (a single hash over every module) is kept for
whole-package consumers and as the fallback for workers defined outside
the ``repro`` package (tests, notebooks), where no manifest exists.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "fingerprint",
    "canonical_payload",
    "code_version",
    "package_modules",
    "module_hash",
    "module_imports",
    "dependency_closure",
    "code_manifest",
    "task_code_version",
    "worker_code_version",
    "worker_manifest",
    "invalidate_code_caches",
]

#: Test seam: ``{module_name: source_bytes}`` overrides consulted before
#: the on-disk source, so tests can simulate edits without touching the
#: tree.  Call :func:`invalidate_code_caches` after mutating it.
_SOURCE_OVERRIDES: dict[str, bytes] = {}


def canonical_payload(obj: Any) -> Any:
    """Recursively convert ``obj`` into canonical JSON-able structure.

    Supported: dataclass instances (frozen configs), dicts with string
    keys, tuples/lists, and JSON scalars.  Numpy scalars are accepted
    via their ``item()`` method.  Anything else raises ``TypeError`` so
    un-hashable state never silently degrades cache correctness.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                field.name: canonical_payload(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(item) for item in obj]
    if isinstance(obj, dict):
        if not all(isinstance(k, str) for k in obj):
            raise TypeError(f"non-string dict keys are not fingerprintable: {obj!r}")
        return {k: canonical_payload(obj[k]) for k in sorted(obj)}
    item = getattr(obj, "item", None)  # numpy scalar
    if callable(item):
        return canonical_payload(item())
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}: {obj!r}")


def fingerprint(obj: Any) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``obj``."""
    payload = json.dumps(
        canonical_payload(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Per-module hashing and the static import closure
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def package_modules() -> dict[str, Path]:
    """``{dotted_module_name: source_path}`` for the installed package.

    Packages map their ``__init__.py`` under the package's own dotted
    name (``repro.sim`` -> ``repro/sim/__init__.py``).
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    modules: dict[str, Path] = {}
    for path in sorted(root.rglob("*.py")):
        parts = list(path.relative_to(root).parts)
        parts[-1] = parts[-1][:-3]  # strip .py
        if parts[-1] == "__init__":
            parts.pop()
        modules[".".join(["repro", *parts])] = path
    return modules


def _module_source(name: str) -> bytes:
    override = _SOURCE_OVERRIDES.get(name)
    if override is not None:
        return override
    return package_modules()[name].read_bytes()


@lru_cache(maxsize=None)
def module_hash(name: str) -> str:
    """Hex SHA-256 of one module's source text."""
    return hashlib.sha256(_module_source(name)).hexdigest()


@lru_cache(maxsize=None)
def module_imports(name: str) -> tuple[str, ...]:
    """Direct ``repro``-internal imports of one module (sorted).

    Walks the full AST, so function-local lazy imports (the workers'
    idiom) and ``TYPE_CHECKING`` imports are included.
    """
    modules = package_modules()
    tree = ast.parse(_module_source(name))
    # The package a relative import is resolved against: the module's
    # own name when it *is* a package, else its parent.
    package = name if modules[name].name == "__init__.py" else name.rsplit(".", 1)[0]
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in modules:
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base_parts = (node.module or "").split(".")
            else:
                parent_parts = package.split(".")
                if node.level - 1 >= len(parent_parts):
                    continue  # relative import escaping the package
                base_parts = parent_parts[: len(parent_parts) - (node.level - 1)]
                if node.module:
                    base_parts = base_parts + node.module.split(".")
            base = ".".join(p for p in base_parts if p)
            if base in modules:
                found.add(base)
            for alias in node.names:
                candidate = f"{base}.{alias.name}" if base else alias.name
                if candidate in modules:
                    found.add(candidate)
    found.discard(name)
    return tuple(sorted(found))


@lru_cache(maxsize=None)
def dependency_closure(name: str) -> tuple[str, ...]:
    """Transitive import closure of a module, itself included (sorted)."""
    if name not in package_modules():
        raise KeyError(f"not a repro module: {name}")
    seen = {name}
    frontier = [name]
    while frontier:
        for imported in module_imports(frontier.pop()):
            if imported not in seen:
                seen.add(imported)
                frontier.append(imported)
    return tuple(sorted(seen))


def code_manifest(name: str) -> dict[str, str]:
    """``{module: source_hash}`` over a module's dependency closure."""
    return {module: module_hash(module) for module in dependency_closure(name)}


@lru_cache(maxsize=None)
def task_code_version(name: str) -> str:
    """Hex digest of the per-module manifest of one module's closure."""
    return fingerprint(code_manifest(name))


def worker_code_version(worker: Callable) -> str:
    """Code-version component of a worker's cache keys.

    Workers defined inside the ``repro`` package get the delta-aware
    per-closure hash; anything else (test-local functions) falls back to
    the conservative whole-package :func:`code_version`.
    """
    module = getattr(worker, "__module__", None)
    if module in package_modules():
        return task_code_version(module)
    return code_version()


def worker_manifest(worker: Callable) -> dict[str, str]:
    """Per-module manifest behind :func:`worker_code_version` (empty for
    workers outside the package, whose version is the global hash)."""
    module = getattr(worker, "__module__", None)
    if module in package_modules():
        return code_manifest(module)
    return {}


def invalidate_code_caches() -> None:
    """Drop every memoized hash/closure (after ``_SOURCE_OVERRIDES``
    edits in tests; production code never mutates sources in-process)."""
    package_modules.cache_clear()
    module_hash.cache_clear()
    module_imports.cache_clear()
    dependency_closure.cache_clear()
    task_code_version.cache_clear()
    code_version.cache_clear()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hex SHA-256 over every ``.py`` source file of the repro package."""
    digest = hashlib.sha256()
    for name, path in package_modules().items():
        digest.update(str(path).encode("utf-8"))
        digest.update(b"\0")
        digest.update(_module_source(name))
        digest.update(b"\0")
    return digest.hexdigest()
