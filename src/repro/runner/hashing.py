"""Stable content hashes for sweep configs and for the code itself.

Two ingredients feed every cache key:

* :func:`fingerprint` -- a canonical-JSON SHA-256 of an arbitrary
  (frozen-dataclass-shaped) task description.  Dataclasses are encoded
  with their qualified type name plus field dict, tuples as lists, so
  the hash is stable across processes and Python hash randomization.
* :func:`code_version` -- a SHA-256 over the source text of every
  module in the installed ``repro`` package.  Any code change anywhere
  in the package invalidates previously cached results, which is the
  conservative (always-correct) invalidation rule for a simulator whose
  output can depend on any module.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any

__all__ = ["fingerprint", "canonical_payload", "code_version"]


def canonical_payload(obj: Any) -> Any:
    """Recursively convert ``obj`` into canonical JSON-able structure.

    Supported: dataclass instances (frozen configs), dicts with string
    keys, tuples/lists, and JSON scalars.  Numpy scalars are accepted
    via their ``item()`` method.  Anything else raises ``TypeError`` so
    un-hashable state never silently degrades cache correctness.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                field.name: canonical_payload(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(item) for item in obj]
    if isinstance(obj, dict):
        if not all(isinstance(k, str) for k in obj):
            raise TypeError(f"non-string dict keys are not fingerprintable: {obj!r}")
        return {k: canonical_payload(obj[k]) for k in sorted(obj)}
    item = getattr(obj, "item", None)  # numpy scalar
    if callable(item):
        return canonical_payload(item())
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}: {obj!r}")


def fingerprint(obj: Any) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``obj``."""
    payload = json.dumps(
        canonical_payload(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hex SHA-256 over every ``.py`` source file of the repro package."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()
