"""Sweep task descriptions and their module-level workers.

A *task* is a small frozen dataclass describing one independent
simulation; a *worker* is a module-level function (picklable, so it can
cross a ``ProcessPoolExecutor`` boundary) that executes the task and
returns a JSON-able summary dict.  Workers return summaries rather than
full :class:`~repro.experiments.common.SingleHopResult` objects for two
reasons: inter-process transfer stays cheap, and the summary is exactly
what the content-addressed cache stores -- a cached payload and a fresh
one are indistinguishable (Python floats round-trip JSON exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "SingleHopTask",
    "MicroscopicTask",
    "MultiHopTask",
    "single_hop_summary",
    "microscopic_summary",
    "multihop_summary",
]


@dataclass(frozen=True)
class SingleHopTask:
    """One single-hop run, optionally with a scheduler override.

    ``scheduler``/``sdps`` default to the config's own; an override lets
    ablations replay the *same* trace (same config seed) through a
    different discipline or SDP vector.  ``epoch`` selects the
    quantized-WTP scheduler with that aging epoch instead of a registry
    name.  ``compute_feasibility`` additionally runs the Eq 7 audit.

    ``check_invariants`` runs the simulation under the runtime invariant
    checker (:mod:`repro.invariants`) and records the verification
    report in the summary.  The flag is part of the task, hence part of
    its cache fingerprint: a cached result remembers whether it was
    produced by a validated run, and checked/unchecked sweeps never
    serve each other's entries.

    ``compiled_arrivals`` selects the block-drawn trace compilation
    (default) or the scalar per-packet path.  The two are bit-identical,
    but the flag still enters the cache fingerprint so an A/B sweep can
    prove that empirically instead of assuming it.
    """

    config: "SingleHopConfig"  # noqa: F821 - imported lazily below
    scheduler: Optional[str] = None
    sdps: Optional[tuple[float, ...]] = None
    epoch: Optional[float] = None
    compute_feasibility: bool = False
    check_invariants: bool = False
    compiled_arrivals: bool = True


@dataclass(frozen=True)
class MicroscopicTask:
    """One Figure 4/5 run: windowed interval means plus packet taps."""

    config: "SingleHopConfig"  # noqa: F821
    scheduler: str
    view1_tau: float
    view1_start: float
    view1_end: float
    check_invariants: bool = False
    compiled_arrivals: bool = True


@dataclass(frozen=True)
class MultiHopTask:
    """One Table 1 cell (a full multi-hop user-experiment run)."""

    config: "MultiHopConfig"  # noqa: F821
    check_invariants: bool = False
    compiled_arrivals: bool = True


# ----------------------------------------------------------------------
# Workers (module-level so ProcessPoolExecutor can pickle them)
# ----------------------------------------------------------------------
def single_hop_summary(task: SingleHopTask) -> dict:
    """Execute one single-hop run and summarize it (JSON-able)."""
    from ..core.metrics import summarize_rd
    from ..experiments.common import generate_trace, replay_through_scheduler
    from ..schedulers.quantized_wtp import QuantizedWTPScheduler
    from ..schedulers.registry import make_scheduler

    config = task.config
    sdps = task.sdps if task.sdps is not None else config.sdps
    if task.epoch is not None:
        scheduler = QuantizedWTPScheduler(sdps, epoch=task.epoch)
    else:
        name = task.scheduler if task.scheduler is not None else config.scheduler
        scheduler = make_scheduler(name, sdps)
    trace = generate_trace(config, compiled=task.compiled_arrivals)
    result = replay_through_scheduler(
        trace, scheduler, config, check_invariants=task.check_invariants
    )

    summary: dict = {
        "mean_delays": result.mean_delays,
        "ratios": result.successive_ratios,
        "target_ratios": result.target_ratios(),
        "link_utilization": result.link_utilization,
    }
    if result.invariants is not None:
        summary["invariants"] = result.invariants.to_dict()
    if task.compute_feasibility:
        summary["feasible"] = bool(result.feasibility_report().feasible)
    if config.interval_taus:
        interval_rd = []
        for tau in config.interval_taus:
            box = summarize_rd(result.interval_monitors[tau].interval_means())
            interval_rd.append(
                [
                    tau,
                    {
                        "p5": box.p5,
                        "p25": box.p25,
                        "median": box.median,
                        "p75": box.p75,
                        "p95": box.p95,
                        "count": box.count,
                    },
                ]
            )
        summary["interval_rd"] = interval_rd
    return summary


def microscopic_summary(task: MicroscopicTask) -> dict:
    """Execute one Figure 4/5 replay; return windowed views (JSON-able)."""
    from ..experiments.common import generate_trace, replay_through_scheduler
    from ..schedulers.registry import make_scheduler

    config = task.config
    trace = generate_trace(config, compiled=task.compiled_arrivals)
    result = replay_through_scheduler(
        trace,
        make_scheduler(task.scheduler, config.sdps),
        config,
        check_invariants=task.check_invariants,
    )
    interval_monitor = result.interval_monitors[task.view1_tau]
    means = interval_monitor.interval_means()
    indices = interval_monitor.interval_indices()
    if len(indices):
        mask = (indices * task.view1_tau >= task.view1_start) & (
            indices * task.view1_tau < task.view1_end
        )
        window_means = means[mask]
    else:
        window_means = means
    tap = result.taps[0]
    # NaNs (inactive class in an interval) survive JSON via Python's
    # permissive encoder; keep them -- the views expect NaN markers.
    summary = {
        "interval_means": window_means.tolist(),
        "packet_samples": [
            tap.samples_array(class_id).tolist()
            for class_id in range(tap.num_classes)
        ],
    }
    if result.invariants is not None:
        summary["invariants"] = result.invariants.to_dict()
    return summary


def multihop_summary(task: MultiHopTask) -> dict:
    """Execute one Table 1 cell; return its per-experiment comparisons."""
    from ..network.multihop import run_multihop

    result = run_multihop(
        task.config,
        check_invariants=task.check_invariants,
        compiled_arrivals=task.compiled_arrivals,
    )
    # NaN rd values survive JSON round-trips (Python's encoder emits
    # bare NaN tokens and the decoder restores them), so the cached and
    # fresh payloads stay bit-identical.
    summary = {
        "comparisons": [
            {
                "percentile_matrix": [list(row) for row in c.percentile_matrix],
                "inconsistencies": c.inconsistencies,
                "rd": c.rd,
            }
            for c in result.comparisons
        ],
    }
    if result.invariants is not None:
        summary["invariants"] = [report.to_dict() for report in result.invariants]
    return summary
