"""Sharded sweep tier: disk-backed results, shm traces, shard dispatch.

:class:`~repro.runner.runner.SweepRunner` is the right tool up to a few
hundred cells: every result returns through the pool's pipe and lives in
a coordinator list.  At city scale (10^4+ cells x multi-KB summaries,
plus multi-MB arrival traces pickled to every worker) that design costs
O(grid) coordinator RAM and O(trace x workers) copying.  This module is
the tier above it:

* **Shards, not cells.**  The pending grid is cut into contiguous
  shards; one pool task runs a whole shard and *writes each result to
  its own shard file* (:mod:`repro.runner.store`), returning only a
  count.  Dispatch overhead is paid per shard (~100 us) instead of per
  cell, and the coordinator's transient memory is O(shard), not
  O(grid).
* **Zero-copy traces.**  Large arrival traces are published once into
  shared memory (:func:`repro.traffic.io.publish_trace`); workers
  attach by 110-byte handle and read the arrays in place
  (:func:`shared_trace`).  Hosts without shm fall back to pickled
  inline handles -- same results, just copies.
* **Resume for free.**  Shard files survive a crash; re-running the
  same grid salvages every complete record and executes only the
  missing cells.
* **Deterministic merge.**  Results are re-assembled in task order from
  the cache (hits) and a k-way merge over shard files (fresh), so a
  sharded parallel sweep is bit-identical to a serial one -- the same
  guarantee ``SweepRunner`` makes, kept at three orders of magnitude
  more cells.

Pass ``consume=`` to stream ``(index, result)`` pairs through an
aggregator instead of materializing the result list -- with it, peak
coordinator memory is bounded by the shard size regardless of grid
size (``ShardReport.coordinator_peak_rss_mb`` records the observed
peak so benchmarks can gate on it).
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from ..traffic.io import attach_trace, publish_trace
from .cache import ResultCache
from .hashing import canonical_payload, fingerprint, worker_code_version, worker_manifest
from .store import ResultStore, ShardWriter

__all__ = ["ShardRunner", "ShardReport", "shared_trace"]


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
#: Per-process registry of attached shared traces: name -> (trace,
#: block-or-None, shm-name-or-None).  The block reference keeps the
#: mapping alive for as long as the zero-copy views are used.
_PROCESS_TRACES: dict[str, tuple] = {}


def shared_trace(name: str):
    """The trace published under ``name`` for this sweep, or ``None``.

    Scenario workers call this first and fall back to compiling the
    trace locally when it returns ``None`` (serial runs, plain
    ``SweepRunner``, or a coordinator that published nothing) -- the
    fallback is bit-identical by construction, only slower.
    """
    entry = _PROCESS_TRACES.get(name)
    return entry[0] if entry is not None else None


def _register_traces(handles: dict) -> None:
    """Attach every handle not already attached in this process.

    Attach-once: a handle for an shm block this process already mapped
    (same block name) is skipped, so the N-shards-per-worker case pays
    one ``mmap`` per trace, not one per shard.
    """
    for name, handle in handles.items():
        token = getattr(handle, "shm_name", None)
        current = _PROCESS_TRACES.get(name)
        if current is not None and token is not None and current[2] == token:
            continue
        if current is not None and current[1] is not None:
            current[1].close()
        trace, block = attach_trace(handle)
        _PROCESS_TRACES[name] = (trace, block, token)


def _run_shard(
    worker: Callable[[Any], Any],
    store_path: str,
    cells: Sequence[tuple[int, Any]],
    handles: dict,
) -> int:
    """Pool task: run one shard, stream results to its shard file.

    Returns only the record count -- payloads stay on disk, which is
    what keeps the coordinator's pipe traffic and RAM O(1) per shard.
    """
    _register_traces(handles)
    with ShardWriter(store_path) as out:
        for index, task in cells:
            out.write(index, worker(task))
    return out.written


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
def _rss_mb() -> float:
    """This process's current resident set size in MB (0.0 off-Linux)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    return 0.0


@dataclass
class ShardReport:
    """Accounting for one ``ShardRunner.map`` call."""

    total: int
    cache_hits: int
    resumed: int
    executed: int
    shards: int
    shard_size: int
    jobs: int
    elapsed: float
    worker: str
    coordinator_peak_rss_mb: float

    def summary(self) -> str:
        """One-line human-readable report (printed by the CLI)."""
        resumed = f", {self.resumed} resumed" if self.resumed else ""
        return (
            f"{self.worker}: {self.total} runs, {self.cache_hits} cache hits"
            f"{resumed}, {self.executed} executed in {self.shards} shards of "
            f"{self.shard_size} (jobs={self.jobs}, {self.elapsed:.1f}s, "
            f"peak rss {self.coordinator_peak_rss_mb:.0f} MB)"
        )


@dataclass
class ShardRunner:
    """City-scale sweep runner: sharded dispatch over a results store.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` means ``os.cpu_count()``.
    shard_size:
        Cells per shard.  ``0`` (default) picks
        ``ceil(pending / (jobs * 4))`` clamped to ``[1, 512]`` -- four
        waves per worker for load balance, capped so a shard file stays
        small enough to salvage/merge cheaply.
    cache:
        Optional :class:`ResultCache` shared with ``SweepRunner`` -- the
        keys are identical, so the two tiers hit each other's entries.
    store_dir:
        Directory for shard files.  ``None`` uses a fresh temporary
        directory per ``map`` call (deleted afterwards -- no resume);
        pass a real path to make sweeps crash-resumable.
    use_shm:
        Publish ``shared_traces`` via POSIX shared memory when the host
        supports it; ``False`` forces the pickled inline fallback.
    explain:
        Collect an :class:`~repro.runner.explain.ExplainReport` per map
        call into ``self.explanations`` (requires a cache).
    """

    jobs: Optional[int] = None
    shard_size: int = 0
    cache: Optional[ResultCache] = None
    store_dir: Optional[str | Path] = None
    use_shm: bool = True
    explain: bool = False
    reports: list[ShardReport] = field(default_factory=list)
    explanations: list[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.jobs is None:
            self.jobs = os.cpu_count() or 1
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1: {self.jobs}")
        if self.shard_size < 0:
            raise ValueError(f"shard_size must be >= 0: {self.shard_size}")
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_size = 0

    # ------------------------------------------------------------------
    @property
    def last_report(self) -> Optional[ShardReport]:
        return self.reports[-1] if self.reports else None

    def _warm_pool(self, workers: int) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_size < workers:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=workers)
            self._pool_size = workers
        return self._pool

    def shutdown(self) -> None:
        """Release the persistent worker pool (idempotent)."""
        if getattr(self, "_pool", None) is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.shutdown()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def map(
        self,
        worker: Callable[[Any], Any],
        tasks: Sequence[Any],
        shared_traces: Optional[dict] = None,
        consume: Optional[Callable[[int, Any], None]] = None,
    ) -> Optional[list[Any]]:
        """Run ``worker`` over every task, sharded, results in task order.

        ``shared_traces`` maps names to :class:`ArrivalTrace` objects to
        publish for :func:`shared_trace` lookup in the workers.  With
        ``consume``, each ``(index, result)`` is streamed through the
        callback in ascending index order and ``None`` is returned --
        the bounded-memory path; without it, the full result list comes
        back (convenient for modest grids and differential tests).
        """
        started = time.perf_counter()
        peak_rss = _rss_mb()
        worker_id = f"{worker.__module__}.{worker.__qualname__}"
        payloads = [canonical_payload(task) for task in tasks]
        code = worker_code_version(worker)
        keys = [
            fingerprint({"worker": worker_id, "code": code, "task": payload})
            for payload in payloads
        ]
        grid_fp = fingerprint(
            {"worker": worker_id, "code": code, "tasks": payloads}
        )

        hit = [False] * len(tasks)
        if self.cache is not None:
            for index, key in enumerate(keys):
                hit[index] = key in self.cache
        hits = sum(hit)

        if self.explain and self.cache is not None:
            from .explain import explain_cells

            self.explanations.append(
                explain_cells(self.cache, worker, tasks, keys)
            )

        ephemeral = self.store_dir is None
        directory = (
            Path(tempfile.mkdtemp(prefix="repro-shard-"))
            if ephemeral
            else Path(self.store_dir)
        )
        store = ResultStore(directory)
        on_disk = store.open_grid(grid_fp, worker_id, len(tasks))

        pending = [
            i for i in range(len(tasks)) if not hit[i] and i not in on_disk
        ]
        resumed = sum(
            1 for i in range(len(tasks)) if not hit[i] and i in on_disk
        )

        blocks = []
        try:
            handles: dict = {}
            if shared_traces:
                for name, trace in shared_traces.items():
                    handle, block = publish_trace(trace, use_shm=self.use_shm)
                    handles[name] = handle
                    if block is not None:
                        blocks.append(block)

            shard_size = self.shard_size or max(
                1, min(512, math.ceil(len(pending) / (self.jobs * 4)))
            )
            shards = [
                pending[lo : lo + shard_size]
                for lo in range(0, len(pending), shard_size)
            ]
            if shards:
                if self.jobs > 1 and len(shards) > 1:
                    pool = self._warm_pool(min(self.jobs, len(shards)))
                    futures = set()
                    for seq, shard in enumerate(shards):
                        futures.add(
                            pool.submit(
                                _run_shard,
                                worker,
                                str(store.shard_path(seq)),
                                [(i, tasks[i]) for i in shard],
                                handles,
                            )
                        )
                        # Backpressure: keep at most 2 waves in flight so
                        # pickled-task memory stays bounded on huge grids.
                        if len(futures) >= self.jobs * 2:
                            done, futures = wait(
                                futures, return_when=FIRST_COMPLETED
                            )
                            for future in done:
                                future.result()
                            peak_rss = max(peak_rss, _rss_mb())
                    for future in futures:
                        future.result()
                        peak_rss = max(peak_rss, _rss_mb())
                else:
                    for seq, shard in enumerate(shards):
                        _run_shard(
                            worker,
                            str(store.shard_path(seq)),
                            [(i, tasks[i]) for i in shard],
                            handles,
                        )
                        peak_rss = max(peak_rss, _rss_mb())

            results = self._merge(
                worker, tasks, keys, hit, store, consume
            )
            peak_rss = max(peak_rss, _rss_mb())
        finally:
            for block in blocks:
                try:
                    block.close()
                    block.unlink()
                except OSError:  # pragma: no cover - double unlink
                    pass
            if ephemeral:
                shutil.rmtree(directory, ignore_errors=True)

        self.reports.append(
            ShardReport(
                total=len(tasks),
                cache_hits=hits,
                resumed=resumed,
                executed=sum(len(s) for s in shards),
                shards=len(shards),
                shard_size=shard_size,
                jobs=self.jobs,
                elapsed=time.perf_counter() - started,
                worker=worker.__qualname__,
                coordinator_peak_rss_mb=peak_rss,
            )
        )
        return results

    # ------------------------------------------------------------------
    def _merge(
        self,
        worker: Callable[[Any], Any],
        tasks: Sequence[Any],
        keys: Sequence[str],
        hit: Sequence[bool],
        store: ResultStore,
        consume: Optional[Callable[[int, Any], None]],
    ) -> Optional[list[Any]]:
        """Reassemble results in task order; cache fresh ones.

        Cache-hit payloads are fetched lazily *during* the merge and
        handed straight to ``consume`` (or appended), so they never pile
        up ahead of time; store records stream through the k-way merge
        one at a time.
        """
        if self.cache is not None:
            from .explain import task_fingerprint

            manifest = worker_manifest(worker)
            code = worker_code_version(worker)
        results: Optional[list[Any]] = None if consume else []
        records = store.iter_results()
        record = next(records, None)
        for index in range(len(tasks)):
            if hit[index]:
                payload = self.cache.get(keys[index])
                if payload is None:  # blob vanished between stat and get
                    payload = worker(tasks[index])
                    self.cache.put(keys[index], payload)
            else:
                while record is not None and record[0] < index:
                    record = next(records, None)
                if record is None or record[0] != index:
                    raise RuntimeError(
                        f"sharded sweep lost cell {index}: no store record "
                        f"and no cache hit (store: {store.directory})"
                    )
                payload = record[1]
                record = next(records, None)
                if self.cache is not None:
                    self.cache.put(keys[index], payload)
                    self.cache.put_index(
                        task_fingerprint(worker, tasks[index]),
                        {
                            "key": keys[index],
                            "code": code,
                            "modules": manifest,
                        },
                    )
            if consume is not None:
                consume(index, payload)
            else:
                results.append(payload)
        return results
