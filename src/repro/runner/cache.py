"""Content-addressed on-disk result cache for sweep runs.

Layout: one JSON blob per result under ``<cache_dir>/<key[:2]>/<key>.json``
where ``key`` is the SHA-256 cache key of (worker, code version, task).
Writes are atomic (temp file + rename) so a killed sweep never leaves a
truncated entry, and a corrupt/unreadable entry reads as a miss rather
than an error.  Invalidation is implicit: a changed config hashes to a
new key, and a change to any module in the *worker's dependency
closure* changes the code-version component of that worker's keys (see
:mod:`repro.runner.hashing` -- modules outside the closure no longer
invalidate anything).

Alongside the result blobs, the runners maintain a small *by-task
index* under ``<cache_dir>/by-task/``: one JSON per (worker, task)
fingerprint recording the cache key last written for that cell plus the
per-module manifest behind it.  The index never serves results -- it
exists so ``--explain-cache`` (:mod:`repro.runner.explain`) can say
*why* a cell missed: never computed, or computed under code whose
changed modules it can name.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Get/put JSON payloads addressed by content hash."""

    def __init__(self, directory: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where the blob for ``key`` lives (two-level fan-out)."""
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """Cached payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as blob:
                entry = json.load(blob)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if entry.get("key") != key:  # paranoia: moved/renamed blob
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, key: str, result: Any, meta: Optional[dict] = None) -> Path:
        """Atomically store ``result`` (a JSON-able payload) under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "result": result}
        if meta:
            entry["meta"] = meta
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as blob:
                json.dump(entry, blob, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # By-task index (explain-cache support)
    # ------------------------------------------------------------------
    def index_path_for(self, task_fp: str) -> Path:
        """Where the by-task index entry for ``task_fp`` lives."""
        return self.directory / "by-task" / task_fp[:2] / f"{task_fp}.json"

    def put_index(self, task_fp: str, entry: dict) -> Path:
        """Atomically record the latest cache key written for a cell.

        ``entry`` carries ``{"key", "code", "modules"}`` -- the cache
        key, its code-version component, and the per-module manifest it
        was computed from.
        """
        path = self.index_path_for(task_fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as blob:
                json.dump({"task": task_fp, **entry}, blob, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def get_index(self, task_fp: str) -> Optional[dict]:
        """Last index entry for a cell, or ``None`` (corrupt == absent)."""
        try:
            with self.index_path_for(task_fp).open("r", encoding="utf-8") as blob:
                entry = json.load(blob)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("task") != task_fp:
            return None
        return entry

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached blob (and the by-task index); returns how
        many result blobs were removed."""
        removed = 0
        if self.directory.is_dir():
            for blob in self.directory.glob("*/*.json"):
                blob.unlink(missing_ok=True)
                removed += 1
            for blob in self.directory.glob("by-task/*/*.json"):
                blob.unlink(missing_ok=True)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
