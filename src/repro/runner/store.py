"""Bounded on-disk results store for sharded sweeps.

A 10^5-cell grid must not hold 10^5 result payloads in the
coordinator's RAM (the failure mode of ``SweepRunner``'s
results-come-back-through-the-pipe design at city scale).  Instead,
shard workers append each finished cell to a *shard file* -- one JSON
record per line, ``{"i": <cell index>, "r": <payload>}`` -- and the
coordinator merges the files back into global cell order *streaming*,
holding one record at a time.

Layout::

    <store_dir>/
      MANIFEST.json          # grid fingerprint + worker + total cells
      shard-<run>-<k>.jsonl  # records in ascending cell-index order

Durability contract
-------------------
* Lines are flushed as written, so a crashed worker leaves a prefix of
  complete lines plus at most one truncated line.  :meth:`scan`
  tolerates (and reports) the truncated tail: every parseable record
  survives, so a resumed sweep reruns **only the missing cells**.
* The manifest binds the store to one grid: ``open_grid`` with a
  different fingerprint resets the store (stale records from another
  grid can never leak into this one's results).
* Workers never share a file.  Each shard file is written by exactly
  one worker invocation, in ascending index order, which makes the
  merge a k-way heap merge over sorted runs -- O(open files) memory.
* Cell payloads are deterministic, so a cell recorded twice (a crashed
  run's partial shard plus its rerun) is recorded *identically*; the
  merge deduplicates by index and the parallel == serial bit-identical
  guarantee is unaffected.
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

__all__ = ["ResultStore", "ShardWriter"]

_MANIFEST = "MANIFEST.json"


class ShardWriter:
    """Append records to one shard file, flushing every line.

    Used inside worker processes; the coordinator only ever hands out
    the path (so file naming stays centralized in the store).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None
        self._last_index: Optional[int] = None
        self.written = 0

    def __enter__(self) -> "ShardWriter":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        return self

    def write(self, index: int, result: Any) -> None:
        if self._last_index is not None and index <= self._last_index:
            raise ValueError(
                f"shard records must be written in ascending cell order: "
                f"{index} after {self._last_index}"
            )
        self._last_index = index
        self._handle.write(
            json.dumps({"i": index, "r": result}, separators=(",", ":"))
            + "\n"
        )
        self._handle.flush()
        self.written += 1

    def __exit__(self, *exc) -> None:
        self._handle.close()
        self._handle = None


class ResultStore:
    """Coordinator-side view of a sharded sweep's on-disk results."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        #: Incremented by :meth:`open_grid`; part of new shard filenames
        #: so a resumed run never appends to a previous run's files.
        self.run = 0
        #: Cells with a parseable record on disk (filled by scan).
        self.done: set[int] = set()
        #: Shard files that ended in a truncated line (crash evidence).
        self.partial_files: list[Path] = []

    # ------------------------------------------------------------------
    def open_grid(self, grid_fp: str, worker: str, total: int) -> set[int]:
        """Bind the store to one grid; returns indices already on disk.

        A manifest mismatch (different grid/worker/total) resets the
        store -- old shard files are deleted, nothing is salvaged.  A
        match scans existing shard files and salvages every complete
        record, so the caller can rerun only missing cells.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / _MANIFEST
        manifest = {"grid": grid_fp, "worker": worker, "total": total}
        previous = None
        try:
            previous = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            pass
        if previous is not None and {
            k: previous.get(k) for k in manifest
        } == manifest:
            self.run = int(previous.get("run", 0)) + 1
            self.done = self.scan()
        else:
            for stale in self.directory.glob("shard-*.jsonl"):
                stale.unlink(missing_ok=True)
            self.run = 0
            self.done = set()
        fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".tmp-")
        with os.fdopen(fd, "w", encoding="utf-8") as blob:
            json.dump({**manifest, "run": self.run}, blob)
        os.replace(tmp, manifest_path)
        return set(self.done)

    def shard_path(self, shard: int) -> Path:
        """Filename for shard ``shard`` of the current run."""
        return self.directory / f"shard-{self.run:04d}-{shard:05d}.jsonl"

    def shard_files(self) -> list[Path]:
        return sorted(self.directory.glob("shard-*.jsonl"))

    # ------------------------------------------------------------------
    def scan(self) -> set[int]:
        """Indices of every complete record on disk (salvage pass).

        A truncated final line (killed worker mid-write) parses as
        garbage and is skipped; the file is remembered in
        ``partial_files`` so callers can report the crash evidence.
        """
        self.partial_files = []
        done: set[int] = set()
        for path in self.shard_files():
            saw_garbage = False
            for record in self._iter_file(path, on_garbage=lambda: None):
                if record is None:
                    saw_garbage = True
                    continue
                done.add(record[0])
            if saw_garbage:
                self.partial_files.append(path)
        return done

    @staticmethod
    def _iter_file(path: Path, on_garbage=None) -> Iterator:
        """Yield ``(index, result)`` per parseable line; ``None`` for a
        truncated/corrupt line (always the crash-cut tail in practice,
        but every line is guarded)."""
        try:
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                        yield int(record["i"]), record["r"]
                    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                        yield None
        except OSError:
            return

    def iter_results(self) -> Iterator[tuple[int, Any]]:
        """All records in ascending cell order, deduplicated, streamed.

        A k-way ``heapq.merge`` over the per-file sorted runs: memory
        is O(open files), not O(grid).  Records for the same index
        (partial shard + rerun) are identical by determinism; the first
        wins.
        """
        def sorted_run(path: Path) -> Iterator[tuple[int, Any]]:
            last = None
            pending: list[tuple[int, Any]] = []
            for record in self._iter_file(path):
                if record is None:
                    continue
                if last is not None and record[0] <= last:
                    # Defensive: a hand-edited/merged file with
                    # out-of-order records falls back to sorting it.
                    pending.append(record)
                    continue
                last = record[0]
                yield record
            # NOTE: out-of-order stragglers (never produced by
            # ShardWriter) are sorted and yielded last; heapq.merge
            # requires sorted inputs, so splice them via a nested merge.
            if pending:
                yield from sorted(pending)

        runs = []
        for path in self.shard_files():
            run: Iterator[tuple[int, Any]] = sorted_run(path)
            runs.append(run)
        last_index = None
        for index, result in heapq.merge(*runs, key=lambda rec: rec[0]):
            if index == last_index:
                continue
            last_index = index
            yield index, result

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Delete every shard file and the manifest."""
        if self.directory.is_dir():
            for path in self.shard_files():
                path.unlink(missing_ok=True)
            (self.directory / _MANIFEST).unlink(missing_ok=True)
        self.done = set()
        self.partial_files = []
