"""Parallel sweep runner with a content-addressed result cache.

The training-sweep-shaped orchestrator behind every figure/table
driver: fan independent seeded runs out over processes
(:class:`SweepRunner`), memoize their summaries on disk keyed by config
hash + code version (:class:`ResultCache`), and keep parallel output
bit-identical to serial by aggregating in deterministic task order.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .hashing import canonical_payload, code_version, fingerprint
from .runner import SweepReport, SweepRunner, cache_key, serial_runner
from .tasks import (
    MicroscopicTask,
    MultiHopTask,
    SingleHopTask,
    microscopic_summary,
    multihop_summary,
    single_hop_summary,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "canonical_payload",
    "code_version",
    "fingerprint",
    "SweepReport",
    "SweepRunner",
    "cache_key",
    "serial_runner",
    "SingleHopTask",
    "MicroscopicTask",
    "MultiHopTask",
    "single_hop_summary",
    "microscopic_summary",
    "multihop_summary",
]
