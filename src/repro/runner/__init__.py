"""Parallel sweep runners with a content-addressed result cache.

The training-sweep-shaped orchestrators behind every figure/table
driver.  Two tiers, one contract (parallel == serial, bit-identical):

* :class:`SweepRunner` -- fan independent seeded runs out over
  processes, memoize their summaries on disk keyed by config hash +
  delta-aware code version (:class:`ResultCache`), aggregate in
  deterministic task order.  Right up to a few hundred cells.
* :class:`ShardRunner` -- the city-scale tier: contiguous shards
  stream results to an on-disk :class:`ResultStore` (O(shard), not
  O(grid), coordinator RAM), arrival traces cross process boundaries
  zero-copy through shared memory, and crashed sweeps resume from the
  salvaged shard files.

``--explain-cache`` support lives in :mod:`repro.runner.explain`: the
by-task index lets a cold sweep say *which modules'* edits invalidated
it rather than just counting misses.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .explain import CellExplanation, ExplainReport, explain_cells, task_fingerprint
from .hashing import (
    canonical_payload,
    code_version,
    dependency_closure,
    fingerprint,
    module_imports,
    task_code_version,
    worker_code_version,
    worker_manifest,
)
from .runner import SweepReport, SweepRunner, cache_key, serial_runner
from .shard import ShardReport, ShardRunner, shared_trace
from .store import ResultStore, ShardWriter
from .tasks import (
    MicroscopicTask,
    MultiHopTask,
    SingleHopTask,
    microscopic_summary,
    multihop_summary,
    single_hop_summary,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "canonical_payload",
    "code_version",
    "dependency_closure",
    "module_imports",
    "task_code_version",
    "worker_code_version",
    "worker_manifest",
    "fingerprint",
    "SweepReport",
    "SweepRunner",
    "ShardReport",
    "ShardRunner",
    "shared_trace",
    "ResultStore",
    "ShardWriter",
    "CellExplanation",
    "ExplainReport",
    "explain_cells",
    "task_fingerprint",
    "cache_key",
    "serial_runner",
    "SingleHopTask",
    "MicroscopicTask",
    "MultiHopTask",
    "single_hop_summary",
    "microscopic_summary",
    "multihop_summary",
]
