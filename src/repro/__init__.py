"""Proportional Differentiated Services -- SIGCOMM 1999 reproduction.

A from-scratch Python implementation of Dovrolis, Stiliadis &
Ramanathan's proportional delay differentiation model, its two packet
schedulers (WTP and BPR), the baseline disciplines it is compared
against, and the discrete-event simulation substrate that regenerates
every figure and table of the paper's evaluation.

Quickstart
----------
>>> from repro import SingleHopConfig, run_single_hop
>>> result = run_single_hop(SingleHopConfig(scheduler="wtp",
...                                         utilization=0.95,
...                                         horizon=2e5, warmup=1e4))
>>> [round(r, 1) for r in result.successive_ratios]  # doctest: +SKIP
[2.0, 2.0, 2.0]

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from .core import (
    DelayDifferentiationParameters,
    ProportionalDelayModel,
    check_feasibility,
    check_proportional_feasibility,
    compare_flow_percentiles,
    conservation_residual,
    ddps_from_sdps,
    fcfs_mean_delay,
    sdps_from_ddps,
    summarize_rd,
)
from .errors import (
    ConfigurationError,
    FeasibilityError,
    ReproError,
    SchedulingError,
    SimulationError,
    TopologyError,
)
from .experiments import (
    SingleHopConfig,
    SingleHopResult,
    run_single_hop,
)
from .network import MultiHopConfig, MultiHopResult, RoutedNetwork, run_multihop
from .runner import ResultCache, SweepRunner, serial_runner
from .schedulers import (
    AdaptiveWTPScheduler,
    BPRScheduler,
    DRRScheduler,
    FCFSScheduler,
    HPDScheduler,
    PADScheduler,
    SCFQScheduler,
    StrictPriorityScheduler,
    WTPScheduler,
    make_scheduler,
)
from .sim import DelayMonitor, Link, Packet, Simulator
from .traffic import (
    ClassLoadDistribution,
    ParetoInterarrivals,
    PoissonInterarrivals,
    TrafficSource,
    paper_trimodal_sizes,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DelayDifferentiationParameters",
    "ProportionalDelayModel",
    "check_feasibility",
    "check_proportional_feasibility",
    "compare_flow_percentiles",
    "conservation_residual",
    "ddps_from_sdps",
    "fcfs_mean_delay",
    "sdps_from_ddps",
    "summarize_rd",
    # errors
    "ConfigurationError",
    "FeasibilityError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "TopologyError",
    # experiments
    "SingleHopConfig",
    "SingleHopResult",
    "run_single_hop",
    # network
    "MultiHopConfig",
    "MultiHopResult",
    "RoutedNetwork",
    "run_multihop",
    # runner
    "ResultCache",
    "SweepRunner",
    "serial_runner",
    # schedulers
    "AdaptiveWTPScheduler",
    "BPRScheduler",
    "DRRScheduler",
    "FCFSScheduler",
    "HPDScheduler",
    "PADScheduler",
    "SCFQScheduler",
    "StrictPriorityScheduler",
    "WTPScheduler",
    "make_scheduler",
    # sim
    "DelayMonitor",
    "Link",
    "Packet",
    "Simulator",
    # traffic
    "ClassLoadDistribution",
    "ParetoInterarrivals",
    "PoissonInterarrivals",
    "TrafficSource",
    "paper_trimodal_sizes",
]
