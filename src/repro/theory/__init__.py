"""Closed-form queueing results used to validate the simulator."""

from .kleinrock import proportional_delays_mg1, tdp_heavy_load_ratio, tdp_waits
from .mg1 import (
    ServiceDistribution,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_wait,
    residual_work,
)
from .priority import (
    aggregate_residual,
    per_class_services,
    strict_priority_waits,
)

__all__ = [
    "proportional_delays_mg1",
    "tdp_heavy_load_ratio",
    "tdp_waits",
    "ServiceDistribution",
    "md1_mean_wait",
    "mg1_mean_wait",
    "mm1_mean_wait",
    "residual_work",
    "strict_priority_waits",
    "aggregate_residual",
    "per_class_services",
]
