"""Kleinrock's time-dependent priorities under Poisson arrivals.

WTP (Section 4.2) is Kleinrock's 1964 Time-Dependent-Priorities
discipline: head-of-line priority b_p * (waiting time), with rate
parameters b_1 < b_2 < ... < b_N (the paper's SDPs).  For M/G/1 inputs
the mean class waits satisfy a linear system whose two limits are
textbook results:

* all b equal  ->  FCFS:            W_p = W_0 / (1 - rho)
* b_N >> ... >> b_1 -> strict:      Cobham's formula

The system solved here is

    W_p * [1 - sum_{i>p} rho_i (1 - b_p/b_i)]
        = W_0 + sum_{i<p} rho_i W_i (b_i/b_p) + sum_{i>=p} rho_i W_i

which interpolates exactly between those limits and reproduces the
paper's heavy-load result W_i / W_j -> b_j / b_i (Eq 13): the numerator
terms say a tagged class-p arrival waits behind the residual service,
behind queued lower classes only in proportion b_i/b_p (it overtakes the
rest), and behind all queued same-or-higher-class work; the denominator
discounts for later higher-class arrivals that overtake it, a fraction
(1 - b_p/b_i) of them.  The test suite validates this solution against
the event-driven WTP simulator with Poisson traffic and against both
closed-form limits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .mg1 import ServiceDistribution
from .priority import aggregate_residual, per_class_services

__all__ = ["tdp_waits", "tdp_heavy_load_ratio", "proportional_delays_mg1"]


def tdp_waits(
    arrival_rates: Sequence[float],
    sdps: Sequence[float],
    service: "ServiceDistribution | Sequence[ServiceDistribution]",
) -> list[float]:
    """Mean waits per class under time-dependent priorities.

    Index 0 is paper class 1 (smallest b).  ``service`` is either one
    distribution shared by all classes (the paper's assumption) or one
    per class (the general conservation-law setting of [16]); the
    interpolation argument in the module docstring goes through
    unchanged, and the per-class form is validated against simulation
    in the test suite.
    """
    rates = [float(r) for r in arrival_rates]
    b = [float(s) for s in sdps]
    if len(rates) != len(b):
        raise ConfigurationError("rates and SDPs must align")
    if any(r < 0 for r in rates):
        raise ConfigurationError(f"rates must be non-negative: {rates}")
    if any(s <= 0 for s in b):
        raise ConfigurationError(f"SDPs must be positive: {b}")
    services = per_class_services(service, len(rates))
    rhos = [r * s.mean for r, s in zip(rates, services)]
    rho = sum(rhos)
    if rho >= 1.0:
        raise ConfigurationError(f"unstable system: rho={rho:.4f} >= 1")
    n = len(rates)
    w0 = aggregate_residual(rates, services)

    matrix = np.zeros((n, n))
    rhs = np.full(n, w0)
    for p in range(n):
        overtake_discount = sum(
            rhos[i] * (1.0 - b[p] / b[i]) for i in range(p + 1, n)
        )
        matrix[p, p] = 1.0 - overtake_discount - rhos[p]
        for i in range(n):
            if i == p:
                continue
            if i < p:
                matrix[p, i] = -rhos[i] * (b[i] / b[p])
            else:
                matrix[p, i] = -rhos[i]
    solution = np.linalg.solve(matrix, rhs)
    if np.any(solution < 0):
        raise ConfigurationError(
            "negative waits: parameters outside the model's stable range"
        )
    return [float(w) for w in solution]


def proportional_delays_mg1(
    arrival_rates: Sequence[float],
    sdps: Sequence[float],
    service: ServiceDistribution,
) -> list[float]:
    """Eq 6 evaluated in closed form for Poisson inputs.

    Composes the model dynamics (d_i = delta_i lambda d(lambda) /
    sum delta_j lambda_j, with delta_i = 1/s_i per Eq 13) with the
    Pollaczek-Khinchine d(lambda).  This is the delay vector an *ideal*
    proportional scheduler would produce -- the yardstick the paper
    measures WTP and BPR against.  Compare with :func:`tdp_waits` to see
    how far WTP's actual M/G/1 behaviour is from the ideal at a given
    load (they coincide as rho -> 1).
    """
    from .mg1 import mg1_mean_wait

    rates = [float(r) for r in arrival_rates]
    b = [float(s) for s in sdps]
    if len(rates) != len(b):
        raise ConfigurationError("rates and SDPs must align")
    if any(s <= 0 for s in b):
        raise ConfigurationError(f"SDPs must be positive: {b}")
    total_rate = sum(rates)
    if total_rate <= 0:
        raise ConfigurationError("aggregate rate must be positive")
    aggregate_delay = mg1_mean_wait(total_rate, service)
    deltas = [1.0 / s for s in b]
    weight = sum(d * r for d, r in zip(deltas, rates))
    scale = total_rate * aggregate_delay / weight
    return [d * scale for d in deltas]


def tdp_heavy_load_ratio(sdps: Sequence[float], i: int, j: int) -> float:
    """Heavy-load wait ratio W_i / W_j -> s_j / s_i (paper Eq 13)."""
    b = [float(s) for s in sdps]
    if any(s <= 0 for s in b):
        raise ConfigurationError(f"SDPs must be positive: {b}")
    return b[j] / b[i]
