"""M/G/1 queueing formulas (Pollaczek-Khinchine and friends).

Used to cross-check the simulator: with Poisson arrivals the FCFS mean
waiting time is exactly

    W = W_0 / (1 - rho),   W_0 = lambda * E[S^2] / 2,

where S is the service time, and Eq 6 / Eq 7 can be evaluated in closed
form (d(lambda) = W).  These results also ground the feasibility tests
without needing measured subset delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError

__all__ = ["ServiceDistribution", "mg1_mean_wait", "mm1_mean_wait", "md1_mean_wait",
           "residual_work"]


@dataclass(frozen=True)
class ServiceDistribution:
    """First two moments of the service-time distribution."""

    mean: float
    second_moment: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"mean service time must be positive: {self.mean}")
        if self.second_moment < self.mean**2:
            raise ConfigurationError(
                "second moment below mean^2 is impossible: "
                f"E[S]={self.mean}, E[S^2]={self.second_moment}"
            )

    @classmethod
    def from_packet_mix(
        cls,
        sizes: Sequence[float],
        probabilities: Sequence[float],
        capacity: float,
    ) -> "ServiceDistribution":
        """Service moments of a discrete packet-size mix on a link."""
        if len(sizes) != len(probabilities):
            raise ConfigurationError("sizes and probabilities must align")
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive: {capacity}")
        mean = sum(p * s / capacity for p, s in zip(probabilities, sizes))
        second = sum(p * (s / capacity) ** 2 for p, s in zip(probabilities, sizes))
        return cls(mean, second)

    @classmethod
    def deterministic(cls, service_time: float) -> "ServiceDistribution":
        return cls(service_time, service_time**2)

    @classmethod
    def exponential(cls, mean_service: float) -> "ServiceDistribution":
        return cls(mean_service, 2.0 * mean_service**2)


def residual_work(arrival_rate: float, service: ServiceDistribution) -> float:
    """W_0 = lambda E[S^2] / 2: mean residual service seen at arrival."""
    if arrival_rate < 0:
        raise ConfigurationError(f"arrival rate must be >= 0: {arrival_rate}")
    return arrival_rate * service.second_moment / 2.0


def mg1_mean_wait(arrival_rate: float, service: ServiceDistribution) -> float:
    """Pollaczek-Khinchine mean waiting time (queueing delay only)."""
    rho = arrival_rate * service.mean
    if rho >= 1.0:
        raise ConfigurationError(f"unstable system: rho={rho:.4f} >= 1")
    return residual_work(arrival_rate, service) / (1.0 - rho)


def mm1_mean_wait(arrival_rate: float, mean_service: float) -> float:
    """M/M/1 mean wait: rho * E[S] / (1 - rho)."""
    return mg1_mean_wait(
        arrival_rate, ServiceDistribution.exponential(mean_service)
    )


def md1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """M/D/1 mean wait: rho * E[S] / (2 (1 - rho))."""
    return mg1_mean_wait(
        arrival_rate, ServiceDistribution.deterministic(service_time)
    )
