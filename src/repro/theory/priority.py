"""Cobham's formula: M/G/1 with non-preemptive *strict* priorities.

Strict priority is both a baseline scheduler (Section 2.1) and the
b_N >> ... >> b_1 limit of Kleinrock's time-dependent priorities, so
these closed forms anchor two cross-checks: the strict-priority
simulator and the limiting behaviour of :mod:`repro.theory.kleinrock`.

With class N the *highest* priority (this library's convention) and
sigma_p = sum_{i >= p} rho_i:

    W_p = W_0 / ((1 - sigma_{p+1}) (1 - sigma_p)),   sigma_{N+1} = 0.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..errors import ConfigurationError
from .mg1 import ServiceDistribution

__all__ = ["strict_priority_waits", "per_class_services", "aggregate_residual"]

ServiceSpec = Union[ServiceDistribution, Sequence[ServiceDistribution]]


def per_class_services(
    service: ServiceSpec, num_classes: int
) -> list[ServiceDistribution]:
    """Normalize a service spec to one distribution per class.

    The paper's single-link study uses one packet-length distribution
    for all classes; the theory (Cobham, Kleinrock) holds class-by-class
    too, so both forms are accepted everywhere.
    """
    if isinstance(service, ServiceDistribution):
        return [service] * num_classes
    services = list(service)
    if len(services) != num_classes:
        raise ConfigurationError(
            f"got {len(services)} service distributions for "
            f"{num_classes} classes"
        )
    return services


def aggregate_residual(
    rates: Sequence[float], services: Sequence[ServiceDistribution]
) -> float:
    """W_0 = sum_i lambda_i E[S_i^2] / 2 over heterogeneous classes."""
    return sum(r * s.second_moment for r, s in zip(rates, services)) / 2.0


def strict_priority_waits(
    arrival_rates: Sequence[float],
    service: ServiceSpec,
) -> list[float]:
    """Cobham's mean waits per class (index 0 = lowest priority).

    ``service`` is either one distribution shared by all classes (the
    paper's assumption) or one per class.
    """
    rates = [float(r) for r in arrival_rates]
    if any(r < 0 for r in rates):
        raise ConfigurationError(f"rates must be non-negative: {rates}")
    services = per_class_services(service, len(rates))
    rhos = [r * s.mean for r, s in zip(rates, services)]
    if sum(rhos) >= 1.0:
        raise ConfigurationError(f"unstable system: rho={sum(rhos):.4f} >= 1")
    w0 = aggregate_residual(rates, services)
    n = len(rates)
    waits = []
    for p in range(n):
        sigma_p = sum(rhos[p:])
        sigma_above = sum(rhos[p + 1 :])
        waits.append(w0 / ((1.0 - sigma_above) * (1.0 - sigma_p)))
    return waits
