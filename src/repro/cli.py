"""Command-line interface: regenerate any paper figure/table.

Examples
--------
Full-scale reproduction of Figure 1a (ten seeds, 10^6-unit runs):

    repro-pdd figure1

Quick versions (scaled-down horizons/seeds) of everything, using all
cores and the on-disk result cache:

    repro-pdd all --scale 0.05 --jobs 0

``--jobs 0`` (the default) means "one worker per CPU"; ``--jobs 1``
forces serial execution.  Re-running an identical sweep is served from
the content-addressed cache under ``--cache-dir`` (default
``.repro-cache/``); pass ``--no-cache`` to disable it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Callable, Optional

from .experiments.ablations import (
    absolute_vs_relative,
    adaptive_wtp_correction,
    additive_convergence,
    plr_demo,
    quantization_sweep,
    scheduler_comparison,
    sdp_ratio_sweep,
    wtp_starvation_demo,
)
from .experiments.figure1 import (
    SDP_RATIO_2,
    SDP_RATIO_4,
    FigureOneConfig,
    format_figure1,
    run_figure1,
)
from .experiments.figure2 import FigureTwoConfig, format_figure2, run_figure2
from .experiments.figure3 import FigureThreeConfig, format_figure3, run_figure3
from .experiments.figure45 import MicroscopicConfig, format_figure45, run_figure45
from .experiments.export import (
    figure1_to_csv,
    figure2_to_csv,
    figure3_to_csv,
    figure45_to_json,
    table1_to_csv,
)
from .experiments.figures_svg import (
    figure1_svg,
    figure2_svg,
    figure3_svg,
    figure45_svg,
    save_figures,
    table1_svg,
)
from .experiments.reporting import format_ablation_rows
from .experiments.table1 import TableOneConfig, format_table1, run_table1
from .runner import DEFAULT_CACHE_DIR, ResultCache, ShardRunner, SweepRunner

__all__ = ["main"]


def _figure1(
    scale: float,
    export_dir: Optional[Path],
    runner: SweepRunner,
    checked: bool,
    compiled: bool,
    drain: bool,
) -> str:
    parts = []
    for sdps, label in ((SDP_RATIO_2, "1a"), (SDP_RATIO_4, "1b")):
        config = FigureOneConfig(
            sdps=sdps, check_invariants=checked, compiled_arrivals=compiled,
            drain=drain,
        ).scaled(scale)
        points = run_figure1(config, runner=runner)
        parts.append(f"--- Figure {label} ---")
        parts.append(format_figure1(points))
        if export_dir is not None:
            figure1_to_csv(points, export_dir / f"figure{label}.csv")
            save_figures({f"figure{label}": figure1_svg(points)}, export_dir)
    return "\n".join(parts)


def _figure2(
    scale: float,
    export_dir: Optional[Path],
    runner: SweepRunner,
    checked: bool,
    compiled: bool,
    drain: bool,
) -> str:
    parts = []
    for sdps, label in ((SDP_RATIO_2, "2a"), (SDP_RATIO_4, "2b")):
        config = FigureTwoConfig(
            sdps=sdps, check_invariants=checked, compiled_arrivals=compiled,
            drain=drain,
        ).scaled(scale)
        points = run_figure2(config, runner=runner)
        parts.append(f"--- Figure {label} ---")
        parts.append(format_figure2(points))
        if export_dir is not None:
            figure2_to_csv(points, export_dir / f"figure{label}.csv")
            save_figures({f"figure{label}": figure2_svg(points)}, export_dir)
    return "\n".join(parts)


def _figure3(
    scale: float,
    export_dir: Optional[Path],
    runner: SweepRunner,
    checked: bool,
    compiled: bool,
    drain: bool,
) -> str:
    config = FigureThreeConfig(
        check_invariants=checked, compiled_arrivals=compiled, drain=drain
    ).scaled(scale)
    boxes = run_figure3(config, runner=runner)
    if export_dir is not None:
        figure3_to_csv(boxes, export_dir / "figure3.csv")
        save_figures({"figure3": figure3_svg(boxes)}, export_dir)
    return format_figure3(boxes)


def _figure45(
    scale: float,
    export_dir: Optional[Path],
    runner: SweepRunner,
    checked: bool,
    compiled: bool,
    drain: bool,
) -> str:
    config = MicroscopicConfig(
        check_invariants=checked, compiled_arrivals=compiled, drain=drain
    ).scaled(scale)
    views = run_figure45(config, runner=runner)
    if export_dir is not None:
        figure45_to_json(views, export_dir / "figure45.json")
        charts = figure45_svg(views)
        save_figures(
            {("figure4" if k == "bpr" else "figure5"): v
             for k, v in charts.items()},
            export_dir,
        )
    return format_figure45(views)


def _table1(
    scale: float,
    export_dir: Optional[Path],
    runner: SweepRunner,
    checked: bool,
    compiled: bool,
    drain: bool,
) -> str:
    config = TableOneConfig(
        check_invariants=checked, compiled_arrivals=compiled,
        drain_kernel=drain,
    ).scaled(scale)
    cells = run_table1(config, runner=runner)
    if export_dir is not None:
        table1_to_csv(cells, export_dir / "table1.csv")
        save_figures({"table1": table1_svg(cells)}, export_dir)
    return format_table1(cells)


def _selfcheck(
    scale: float,
    export_dir: Optional[Path],
    runner: SweepRunner,
    checked: bool,
    compiled: bool,
    drain: bool,
) -> str:
    del scale, export_dir, runner, checked, compiled, drain
    from .validation import format_selfcheck, run_selfcheck

    return format_selfcheck(run_selfcheck())


def _ablations(
    scale: float,
    export_dir: Optional[Path],
    runner: SweepRunner,
    checked: bool,
    compiled: bool,
    drain: bool,
) -> str:
    del export_dir  # nothing tabular worth exporting
    del scale, checked, compiled, drain  # ablations are already laptop-sized
    parts = [
        format_ablation_rows(
            sdp_ratio_sweep(runner=runner), "SDP-ratio sweep (worst rel. error)"
        ),
        format_ablation_rows(
            scheduler_comparison(runner=runner), "Scheduler comparison"
        ),
        format_ablation_rows(additive_convergence(), "Additive model convergence"),
        format_ablation_rows(
            adaptive_wtp_correction(runner=runner),
            "Adaptive WTP vs WTP (mean |ratio error| vs target)",
        ),
        format_ablation_rows(
            quantization_sweep(runner=runner),
            "Quantized WTP (worst ratio error vs aging-epoch size)",
        ),
        format_ablation_rows([wtp_starvation_demo()], "WTP starvation (Prop 2)"),
        format_ablation_rows([plr_demo()], "PLR loss differentiation"),
        format_ablation_rows(
            absolute_vs_relative(),
            "Absolute (Premium, policed) vs relative (WTP) under surges",
        ),
    ]
    return "\n\n".join(parts)


def _city(
    scale: float,
    export_dir: Optional[Path],
    runner: SweepRunner,
    checked: bool,
    compiled: bool,
    drain: bool,
    hybrid=None,
    fidelity_curve_epsilon: Optional[float] = None,
) -> str:
    del compiled  # city traces are always block-compiled
    import dataclasses

    from .scenarios import CityGridConfig, city_to_csv, format_city, run_city

    if fidelity_curve_epsilon is not None:
        from .scenarios import (
            fidelity_curve,
            fidelity_curve_base,
            fidelity_curve_svg,
            fidelity_curve_to_csv,
            format_fidelity_curve,
        )

        base = dataclasses.replace(
            fidelity_curve_base(scale), drain=drain
        )
        rows = fidelity_curve(
            base=base, epsilon=fidelity_curve_epsilon, runner=runner
        )
        if export_dir is not None:
            fidelity_curve_to_csv(rows, export_dir / "fidelity_curve.csv")
            fidelity_curve_svg(rows, export_dir / "fidelity_curve.svg")
        return format_fidelity_curve(rows)

    grid = CityGridConfig()
    grid = dataclasses.replace(
        grid,
        base=dataclasses.replace(
            grid.base, check_invariants=checked, drain=drain, hybrid=hybrid
        ),
    ).scaled(scale)
    points = run_city(grid, runner=runner)
    if export_dir is not None:
        city_to_csv(points, export_dir / "city.csv")
    return format_city(points)


_COMMANDS: dict[str, Callable[..., str]] = {
    "figure1": _figure1,
    "figure2": _figure2,
    "figure3": _figure3,
    "figure45": _figure45,
    "table1": _table1,
    "ablations": _ablations,
    "selfcheck": _selfcheck,
    "city": _city,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (installed as ``repro-pdd``)."""
    parser = argparse.ArgumentParser(
        prog="repro-pdd",
        description=(
            "Reproduce the evaluation of 'Proportional Differentiated "
            "Services: Delay Differentiation and Packet Scheduling' "
            "(SIGCOMM 1999)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*_COMMANDS, "all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scale factor for run length / seed count (1.0 = paper scale)",
    )
    parser.add_argument(
        "--export-dir",
        type=Path,
        default=None,
        help=(
            "also write the result series (CSV/JSON) and rendered SVG "
            "charts into this directory"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help=(
            "worker processes for independent simulation runs "
            "(0 = one per CPU, 1 = serial; default: 0)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(DEFAULT_CACHE_DIR),
        help=(
            "directory of the content-addressed result cache "
            f"(default: {DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache entirely",
    )
    parser.add_argument(
        "--scalar-arrivals",
        action="store_true",
        help=(
            "generate arrivals with the scalar per-packet path instead "
            "of the block-drawn compiled path (bit-identical results; "
            "only useful for A/B verification and benchmarking)"
        ),
    )
    parser.add_argument(
        "--no-drain",
        action="store_true",
        help=(
            "disable the link's busy-period drain kernel and run every "
            "service completion through the event calendar "
            "(bit-identical results; only useful for A/B verification "
            "and benchmarking; cached separately via the config "
            "fingerprint)"
        ),
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "run every simulation under the runtime invariant checker "
            "(per-class FIFO, causality, work conservation, "
            "losslessness, scheduler dispatch oracles, Eq 5); checked "
            "results are cached separately from unchecked ones"
        ),
    )
    parser.add_argument(
        "--hybrid",
        action="store_true",
        help=(
            "city only: run each cell through the hybrid fluid/packet "
            "engine -- fluid fast-forward between transients, packet "
            "simulation around them (cached separately via the config "
            "fingerprint)"
        ),
    )
    parser.add_argument(
        "--hybrid-epsilon",
        type=float,
        default=0.05,
        help=(
            "error-bound knob for --hybrid: a stretch runs in fluid "
            "mode only when its predicted error stays within this "
            "bound; 0 forces pure packet mode (default: 0.05)"
        ),
    )
    parser.add_argument(
        "--fidelity-curve",
        action="store_true",
        help=(
            "city only: instead of the scheduler grid, sweep hub "
            "utilization finely on one multihop topology and report the "
            "hybrid engine's DDP fidelity error against the pure packet "
            "run at each load (--hybrid-epsilon sets the knob; with "
            "--export-dir also writes fidelity_curve.csv and .svg)"
        ),
    )
    parser.add_argument(
        "--shard",
        action="store_true",
        help=(
            "use the sharded sweep tier (disk-backed results, "
            "shared-memory traces, crash resume); bit-identical to the "
            "default runner, built for city-scale grids"
        ),
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=0,
        help="cells per shard with --shard (0 = auto; default: 0)",
    )
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        help=(
            "shard-file directory with --shard; a killed sweep pointed "
            "back at the same directory resumes from the complete "
            "records (default: fresh temp dir, no resume)"
        ),
    )
    parser.add_argument(
        "--explain-cache",
        action="store_true",
        help=(
            "after each sweep, report why each cell hit or missed the "
            "cache -- new task, or code change, naming the modules "
            "whose edits invalidated it"
        ),
    )
    args = parser.parse_args(argv)
    if not 0 < args.scale <= 1.0:
        parser.error("--scale must be in (0, 1]")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.shard_size < 0:
        parser.error("--shard-size must be >= 0")
    if args.hybrid_epsilon < 0:
        parser.error("--hybrid-epsilon must be >= 0")
    hybrid_config = None
    if args.hybrid:
        if args.experiment != "city":
            parser.error("--hybrid applies to the city experiment only")
        if args.check_invariants:
            parser.error(
                "--hybrid and --check-invariants are mutually exclusive "
                "(invariant checking needs the pure packet path)"
            )
        from .sim.hybrid import HybridConfig

        hybrid_config = HybridConfig(epsilon=args.hybrid_epsilon)
    fidelity_curve_epsilon = None
    if args.fidelity_curve:
        if args.experiment != "city":
            parser.error("--fidelity-curve applies to the city experiment only")
        if args.check_invariants:
            parser.error(
                "--fidelity-curve and --check-invariants are mutually "
                "exclusive (the curve's hybrid cells need the pure "
                "packet path)"
            )
        if args.hybrid_epsilon <= 0:
            parser.error("--fidelity-curve needs --hybrid-epsilon > 0")
        fidelity_curve_epsilon = args.hybrid_epsilon

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.shard:
        runner: SweepRunner | ShardRunner = ShardRunner(
            jobs=jobs,
            shard_size=args.shard_size,
            cache=cache,
            store_dir=args.store_dir,
            explain=args.explain_cache,
        )
    else:
        runner = SweepRunner(jobs=jobs, cache=cache, explain=args.explain_cache)

    # "all" reproduces the paper's figures/tables; the city-scale grid
    # is opt-in (it is this library's extension, not a paper artifact).
    names = (
        [name for name in _COMMANDS if name != "city"]
        if args.experiment == "all"
        else [args.experiment]
    )
    try:
        for name in names:
            start = time.perf_counter()
            first_report = len(runner.reports)
            first_explanation = len(runner.explanations)
            output = _COMMANDS[name](
                args.scale,
                args.export_dir,
                runner,
                args.check_invariants,
                not args.scalar_arrivals,
                not args.no_drain,
                **(
                    {
                        "hybrid": hybrid_config,
                        "fidelity_curve_epsilon": fidelity_curve_epsilon,
                    }
                    if name == "city"
                    else {}
                ),
            )
            elapsed = time.perf_counter() - start
            print(output)
            for report in runner.reports[first_report:]:
                print(f"[sweep] {report.summary()}")
            for explanation in runner.explanations[first_explanation:]:
                print(explanation.summary())
            print(f"[{name} finished in {elapsed:.1f}s]\n")
    finally:
        runner.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
