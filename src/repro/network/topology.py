"""Chain topology plumbing for the Section 6 study (Figure 6).

The simulated path is a chain of K congested hops.  After each hop a
:class:`FlowDemux` separates traffic: user-flow packets (``flow_id``
set) continue to the next hop, cross-traffic packets (``flow_id`` is
``None``) exit to a per-hop sink -- exactly the paper's configuration
where cross-traffic enters at each node and leaves after one hop.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..sim.link import PacketSink, Receiver
from ..sim.packet import Packet

__all__ = ["FlowDemux"]


class FlowDemux:
    """Route user flows downstream, cross-traffic to a local sink.

    Implements the drain-demux protocol (:mod:`repro.sim.link`): a
    chain-fused drain resolves each departure's receiver through
    :meth:`drain_resolve` instead of calling :meth:`receive`, walks the
    possible receivers via :meth:`drain_successors` when discovering
    the chain, and revalidates its cached chain against
    :meth:`drain_guard`.
    """

    def __init__(self, downstream: Receiver, cross_sink: Receiver | None = None) -> None:
        if downstream is None:
            raise TopologyError("demux needs a downstream receiver")
        self.downstream = downstream
        self.cross_sink: Receiver = (
            cross_sink if cross_sink is not None else PacketSink()
        )
        self.user_packets = 0
        self.cross_packets = 0

    def receive(self, packet: Packet) -> None:
        if packet.flow_id is None:
            self.cross_packets += 1
            self.cross_sink.receive(packet)
        else:
            self.user_packets += 1
            self.downstream.receive(packet)

    # -- drain-demux protocol ------------------------------------------
    def drain_resolve(self, packet: Packet) -> Receiver:
        """Classify and count like :meth:`receive`, but *return* the
        receiver instead of dispatching, so a chain drain can hand the
        packet to a coupled link inline."""
        if packet.flow_id is None:
            self.cross_packets += 1
            return self.cross_sink
        self.user_packets += 1
        return self.downstream

    def drain_successors(self) -> list[Receiver]:
        """Every receiver :meth:`drain_resolve` can return."""
        return [self.downstream, self.cross_sink]

    def drain_flow_split(self) -> tuple[Receiver, Receiver]:
        """``(flow_receiver, cross_receiver)`` for inline resolution.

        Declares that this demux routes purely on ``packet.flow_id``
        (``None`` -> cross, else flow), so a chain-fused drain may skip
        :meth:`drain_resolve` and branch directly -- it then maintains
        ``user_packets`` / ``cross_packets`` itself, keeping the
        counters identical to the evented path.  Guarded by
        :meth:`drain_guard`: a rebind invalidates the cached split.
        """
        return self.downstream, self.cross_sink

    def drain_guard(self):
        """Closure that is True while the cached resolution holds."""
        downstream = self.downstream
        cross_sink = self.cross_sink
        return (
            lambda: self.downstream is downstream
            and self.cross_sink is cross_sink
        )
