"""Chain topology plumbing for the Section 6 study (Figure 6).

The simulated path is a chain of K congested hops.  After each hop a
:class:`FlowDemux` separates traffic: user-flow packets (``flow_id``
set) continue to the next hop, cross-traffic packets (``flow_id`` is
``None``) exit to a per-hop sink -- exactly the paper's configuration
where cross-traffic enters at each node and leaves after one hop.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..sim.link import PacketSink, Receiver
from ..sim.packet import Packet

__all__ = ["FlowDemux"]


class FlowDemux:
    """Route user flows downstream, cross-traffic to a local sink."""

    def __init__(self, downstream: Receiver, cross_sink: Receiver | None = None) -> None:
        if downstream is None:
            raise TopologyError("demux needs a downstream receiver")
        self.downstream = downstream
        self.cross_sink: Receiver = (
            cross_sink if cross_sink is not None else PacketSink()
        )
        self.user_packets = 0
        self.cross_packets = 0

    def receive(self, packet: Packet) -> None:
        if packet.flow_id is None:
            self.cross_packets += 1
            self.cross_sink.receive(packet)
        else:
            self.user_packets += 1
            self.downstream.receive(packet)
