"""User flows and end-to-end delay recording (Section 6).

A :class:`UserFlow` is the paper's probe: F packets of a fixed size sent
periodically (the period realizes the flow's average rate R_u; the
paper's 1.5 Mbps access-link detail only serves to synchronize flows and
is irrelevant once transmission delays are excluded).  One flow per
class is launched per "user experiment", and the end-to-end *queueing*
delay of every packet -- the sum of its per-hop waiting times -- is
recorded at the terminal :class:`FlowRecorder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.link import Receiver
from ..sim.packet import Packet

__all__ = ["UserFlow", "FlowRecorder"]


class UserFlow:
    """Periodic F-packet flow of one class, injected at the first hop.

    Emissions are real calendar events (not fused feeders): a flow may
    launch or emit at any instant, including while a chain-fused drain
    is mid-busy-period, and the drain parks on the pending emission --
    its heap key precedes the drain's next virtual event -- so the
    arrival interleaves exactly as in an evented run
    (``tests/test_multihop_drain_equivalence.py`` pins this).
    """

    def __init__(
        self,
        sim: Simulator,
        target: Receiver,
        flow_id: int,
        class_id: int,
        num_packets: int,
        packet_size: float,
        period: float,
        first_packet_id: int = 0,
    ) -> None:
        if num_packets < 1:
            raise ConfigurationError("num_packets must be >= 1")
        if packet_size <= 0 or period <= 0:
            raise ConfigurationError("packet_size and period must be positive")
        self.sim = sim
        self.target = target
        self.flow_id = flow_id
        self.class_id = class_id
        self.num_packets = num_packets
        self.packet_size = packet_size
        self.period = period
        self.first_packet_id = first_packet_id
        self.emitted = 0

    def launch(self, start_time: float) -> None:
        """Schedule the first packet; the rest follow periodically."""
        self.sim.schedule(start_time, self._emit)

    def _emit(self) -> None:
        packet = Packet(
            packet_id=self.first_packet_id + self.emitted,
            class_id=self.class_id,
            size=self.packet_size,
            created_at=self.sim.now,
            flow_id=self.flow_id,
        )
        self.emitted += 1
        self.target.receive(packet)
        if self.emitted < self.num_packets:
            self.sim.schedule(self.sim.now + self.period, self._emit)

    @property
    def finished(self) -> bool:
        return self.emitted >= self.num_packets


@dataclass
class FlowRecorder:
    """Terminal sink collecting end-to-end queueing delays per flow."""

    delays: dict[int, list[float]] = field(default_factory=dict)
    hops_seen: dict[int, int] = field(default_factory=dict)
    #: Total packets delivered here, cross-traffic strays included.
    received: int = 0

    def receive(self, packet: Packet) -> None:
        self.received += 1
        if packet.flow_id is None:
            return  # cross-traffic strays are ignored, not an error
        self.delays.setdefault(packet.flow_id, []).append(
            packet.total_queueing_delay
        )
        self.hops_seen[packet.flow_id] = len(packet.hop_delays)

    def flow_delays(self, flow_id: int) -> list[float]:
        """Recorded end-to-end queueing delays of one flow."""
        return self.delays.get(flow_id, [])

    def packet_count(self, flow_id: int) -> int:
        return len(self.delays.get(flow_id, []))
