"""Multi-hop network substrate for the Section 6 user-perspective study."""

from .crosstraffic import MixedClassSource
from .flows import FlowRecorder, UserFlow
from .multihop import (
    LINK_CAPACITY_BYTES_PER_MS,
    MultiHopConfig,
    MultiHopResult,
    run_multihop,
)
from .routed import RoutedNetwork, RouteDemux
from .topology import FlowDemux

__all__ = [
    "MixedClassSource",
    "FlowRecorder",
    "UserFlow",
    "MultiHopConfig",
    "MultiHopResult",
    "run_multihop",
    "LINK_CAPACITY_BYTES_PER_MS",
    "FlowDemux",
    "RoutedNetwork",
    "RouteDemux",
]
