"""The multi-hop user-perspective simulation (Section 6 / Table 1).

Builds Figure 6's configuration on the event kernel:

* K hops, each a 25 Mbps link running a WTP scheduler (the paper uses
  WTP everywhere here "since it performs better than BPR"; the
  scheduler is pluggable for ablations).
* Per hop, C cross-traffic sources (Pareto interarrivals, fixed 500-B
  packets, classes drawn 40/30/20/10), sized so each link runs at the
  requested utilization once the user flows are added.  Cross-traffic
  exits after its hop via a :class:`FlowDemux`.
* Every ``experiment_period`` an experiment launches N identical user
  flows, one per class (F packets of 500 B at average rate R_u), whose
  end-to-end queueing delays are recorded at the terminal sink.

Time unit: milliseconds.  Only queueing delays are measured; propagation
and transmission delays are excluded as in the paper.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

from ..core.metrics import EndToEndComparison, compare_flow_percentiles
from ..errors import ConfigurationError
from ..invariants import InvariantChecker, InvariantReport
from ..sim.engine import Simulator
from ..sim.link import Link, PacketSink
from ..sim.rng import RandomStreams
from ..schedulers.registry import make_scheduler
from ..traffic.compile import ArrivalCursor, CompiledMixedSource
from ..traffic.pareto import ParetoInterarrivals
from ..traffic.source import PacketIdAllocator
from .crosstraffic import MixedClassSource
from .flows import FlowRecorder, UserFlow
from .topology import FlowDemux

__all__ = ["MultiHopConfig", "MultiHopResult", "run_multihop"]

#: 25 Mbps expressed in bytes per millisecond.
LINK_CAPACITY_BYTES_PER_MS = 25e6 / 8.0 / 1000.0  # 3125.0


@dataclass(frozen=True)
class MultiHopConfig:
    """Parameters of one Table 1 cell (paper defaults pre-filled)."""

    hops: int = 4                       # K
    utilization: float = 0.85           # rho per link
    flow_packets: int = 10              # F
    flow_rate_kbps: float = 50.0        # R_u
    num_classes: int = 4
    sdps: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)
    scheduler: str = "wtp"
    cross_sources_per_hop: int = 8      # C
    class_mix: tuple[float, ...] = (0.4, 0.3, 0.2, 0.1)
    packet_size: float = 500.0          # bytes
    pareto_shape: float = 1.9
    capacity: float = LINK_CAPACITY_BYTES_PER_MS
    experiments: int = 100              # M
    experiment_period: float = 1000.0   # ms between experiment launches
    warmup: float = 100_000.0           # ms (paper: 100 s)
    drain: float = 2000.0               # ms to let the last flows finish
    seed: int = 1
    #: Busy-period drain *kernel* A/B switch for every hop's link
    #: (bit-identical results; see :mod:`repro.sim.link`).  Distinct
    #: from ``drain``, the end-of-run settle window above.
    drain_kernel: bool = True
    #: Optional per-hop utilizations (length == hops); overrides
    #: ``utilization`` so heterogeneous paths (e.g. one bottleneck hop)
    #: can be studied.  ``None`` = every hop at ``utilization``.
    hop_utilizations: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ConfigurationError("need at least one hop")
        if not 0 < self.utilization < 1:
            raise ConfigurationError("utilization must be in (0, 1)")
        if len(self.sdps) != self.num_classes:
            raise ConfigurationError("one SDP per class required")
        if len(self.class_mix) != self.num_classes:
            raise ConfigurationError("one mix share per class required")
        if self.flow_rate_kbps <= 0 or self.flow_packets < 1:
            raise ConfigurationError("invalid user-flow parameters")
        if self.hop_utilizations is not None:
            if len(self.hop_utilizations) != self.hops:
                raise ConfigurationError(
                    "hop_utilizations must have one entry per hop"
                )
            if any(not 0 < rho < 1 for rho in self.hop_utilizations):
                raise ConfigurationError(
                    "every hop utilization must be in (0, 1)"
                )

    def utilization_of_hop(self, hop: int) -> float:
        """Target utilization of a specific hop (0-based)."""
        if self.hop_utilizations is not None:
            return self.hop_utilizations[hop]
        return self.utilization

    @property
    def flow_period(self) -> float:
        """Inter-packet period (ms) realizing R_u kbps with 500-B packets."""
        bytes_per_ms = self.flow_rate_kbps * 1000.0 / 8.0 / 1000.0
        return self.packet_size / bytes_per_ms

    @property
    def user_byte_rate(self) -> float:
        """Steady-state user-flow load on every link (bytes/ms)."""
        per_experiment = self.num_classes * self.flow_packets * self.packet_size
        return per_experiment / self.experiment_period

    @property
    def cross_byte_rate_per_source(self) -> float:
        """Cross-traffic load per source per hop (bytes/ms), at the
        default (homogeneous) utilization."""
        return self.cross_byte_rate_per_source_at(self.utilization)

    def cross_byte_rate_per_source_at(self, utilization: float) -> float:
        """Cross-traffic load per source for a hop at ``utilization``."""
        total = utilization * self.capacity - self.user_byte_rate
        if total <= 0:
            raise ConfigurationError(
                "user flows alone exceed the target utilization"
            )
        return total / self.cross_sources_per_hop


@dataclass
class MultiHopResult:
    """All user experiments of one run plus the Table 1 aggregates."""

    config: MultiHopConfig
    comparisons: list[EndToEndComparison] = field(default_factory=list)
    #: One report per hop when the run executed under the invariant
    #: checker (``None`` for an unchecked run).
    invariants: list[InvariantReport] | None = None
    #: Experiments excluded from ``comparisons`` because at least one
    #: of their flows had fewer than ``flow_packets`` recorded delays
    #: at the horizon -- i.e. the ``drain`` settle window was too short.
    truncated_experiments: int = 0
    #: Final departure count per hop (diagnostics / benchmarking).
    hop_departures: list[int] = field(default_factory=list)

    @property
    def rd(self) -> float:
        """The Table 1 metric: mean normalized end-to-end delay ratio."""
        values = [c.rd for c in self.comparisons]
        return sum(values) / len(values) if values else float("nan")

    @property
    def inconsistent_experiments(self) -> int:
        """Experiments with >= 1 inconsistent (pair, percentile) cell."""
        return sum(1 for c in self.comparisons if not c.consistent)

    @property
    def inconsistent_cells(self) -> int:
        """Total inconsistent cells across all experiments."""
        return sum(c.inconsistencies for c in self.comparisons)


def run_multihop(
    config: MultiHopConfig,
    check_invariants: bool = False,
    compiled_arrivals: bool = True,
    hybrid=None,
) -> MultiHopResult:
    """Simulate one Table 1 cell and return its user-experiment results.

    With ``check_invariants`` every hop's link carries its own
    :class:`~repro.invariants.InvariantChecker` (per-class FIFO,
    causality, work conservation, losslessness, and the WTP dispatch
    oracle at each hop) and the kernel runs through
    :meth:`~repro.sim.engine.Simulator.run_checked`.

    ``compiled_arrivals`` (default) drives all cross-traffic through one
    block-drawing :class:`~repro.traffic.compile.ArrivalCursor` -- the
    same gap/class draws as the scalar sources, but a single pending
    calendar entry for all K*C sources instead of one each.  A single
    cursor spans every hop so the shared packet-id allocator hands out
    ids in the same global arrival order as the scalar path.
    ``compiled_arrivals=False`` keeps per-source scalar emission.

    With ``hybrid`` (a :class:`~repro.sim.hybrid.HybridConfig` with
    ``epsilon > 0``) the cross-traffic streams are *fast-forwarded*
    over the measurement-free warm-up: every compiled source consumes
    its random draws identically but emits nothing until
    ``warmup - spinup``, so the calendar never sees the warm-up's
    events.  The queues then re-warm packet-by-packet over the
    ``spinup`` guard before the first user experiment launches at
    ``warmup`` -- a regeneration-style cold handoff, no backlog
    seeding.  Requires ``compiled_arrivals``; per-experiment delays are
    statistically, not bit-, identical to the full run (skipped
    arrivals keep their random draws but not their packet ids).  When
    ``epsilon > 0`` but the warm-up gap is blocked (shorter than the
    spinup guard, or below ``min_fluid`` after it) a
    :class:`RuntimeWarning` reports why each candidate gap was
    rejected instead of silently running fully packet-mode.
    """
    if hybrid is not None and hybrid.epsilon > 0 and not compiled_arrivals:
        raise ConfigurationError(
            "hybrid fast-forward rides the compiled arrival path; "
            "enable compiled_arrivals"
        )
    sim = Simulator()
    streams = RandomStreams(config.seed)
    ids = PacketIdAllocator()
    recorder = FlowRecorder()

    # Build the chain back to front so each link knows its downstream.
    links: list[Link] = []
    downstream = recorder
    for hop in range(config.hops - 1, -1, -1):
        scheduler = make_scheduler(config.scheduler, config.sdps)
        demux = FlowDemux(downstream, PacketSink())
        link = Link(
            sim,
            scheduler,
            capacity=config.capacity,
            target=demux,
            name=f"hop{hop}",
            drain=config.drain_kernel,
        )
        links.append(link)
        downstream = link
    links.reverse()
    first_hop = links[0]

    # Cross-traffic: C sources per hop, each with Pareto gaps; rates
    # sized per hop so each link hits its own target utilization.
    cursor = ArrivalCursor(sim) if compiled_arrivals else None
    cross_streams = []
    for hop, link in enumerate(links):
        gap = config.packet_size / config.cross_byte_rate_per_source_at(
            config.utilization_of_hop(hop)
        )
        for _ in range(config.cross_sources_per_hop):
            if cursor is not None:
                stream = CompiledMixedSource(
                    link,
                    ParetoInterarrivals(
                        gap, config.pareto_shape, streams.generator()
                    ),
                    config.class_mix,
                    config.packet_size,
                    streams.generator(),
                    ids=ids,
                )
                cursor.add(stream)
                cross_streams.append(stream)
            else:
                source = MixedClassSource(
                    sim,
                    link,
                    ParetoInterarrivals(
                        gap, config.pareto_shape, streams.generator()
                    ),
                    config.class_mix,
                    config.packet_size,
                    streams.generator(),
                    ids=ids,
                )
                source.start()
    if hybrid is not None and hybrid.epsilon > 0:
        # The only fluid-eligible gap here is the measurement-free
        # warm-up: [0, warmup - spinup).  Vet it by the same rules the
        # network controller applies to its candidate gaps, and *say
        # so* when nothing qualifies -- a silently ignored hybrid knob
        # reads as a speedup that never happened.
        blocked: list[str] = []
        skip_until = max(0.0, config.warmup - hybrid.spinup)
        if skip_until <= 0.0:
            blocked.append(
                f"gap [0, {config.warmup}) is fully consumed by the "
                f"spinup guard ({hybrid.spinup} ms); nothing remains "
                f"to fast-forward"
            )
        elif skip_until < hybrid.min_fluid:
            blocked.append(
                f"gap [0, {skip_until}) spans {skip_until} ms "
                f"< min_fluid {hybrid.min_fluid} ms after the spinup "
                f"guard ({hybrid.spinup} ms)"
            )
        if blocked:
            warnings.warn(
                "hybrid fast-forward requested (epsilon="
                f"{hybrid.epsilon}) but no fluid segment was taken: "
                + "; ".join(blocked)
                + "; the run proceeds fully packet-mode (increase "
                "warmup or lower HybridConfig.spinup/min_fluid)",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            for stream in cross_streams:
                stream.fast_forward(skip_until)
    if cursor is not None:
        cursor.start()

    # User experiments: every experiment_period after warm-up, one flow
    # per class enters at the first hop simultaneously.
    flow_counter = 0
    experiment_flows: list[tuple[int, ...]] = []
    for experiment in range(config.experiments):
        start = config.warmup + experiment * config.experiment_period
        flow_ids = [0] * config.num_classes
        # Launch the higher class first: the flows' packets arrive at
        # identical instants, and same-instant events fire in insertion
        # order, so whoever is first grabs an idle server.  Every
        # scheduler here resolves same-waiting-time ties in favour of
        # the higher class; the launch order must not invert that.
        for class_id in range(config.num_classes - 1, -1, -1):
            flow = UserFlow(
                sim,
                first_hop,
                flow_id=flow_counter,
                class_id=class_id,
                num_packets=config.flow_packets,
                packet_size=config.packet_size,
                period=config.flow_period,
                first_packet_id=10_000_000 + flow_counter * 100_000,
            )
            flow.launch(start)
            flow_ids[class_id] = flow_counter
            flow_counter += 1
        experiment_flows.append(tuple(flow_ids))

    flow_duration = config.flow_packets * config.flow_period
    horizon = (
        config.warmup
        + config.experiments * config.experiment_period
        + flow_duration
        + config.drain
    )
    checkers = (
        [InvariantChecker(link).attach() for link in links]
        if check_invariants
        else None
    )
    if checkers is not None:
        sim.run_checked(until=horizon)
    else:
        sim.run(until=horizon)

    result = MultiHopResult(config=config)
    result.hop_departures = [link.departures for link in links]
    if checkers is not None:
        result.invariants = [checker.finalize() for checker in checkers]
    for flow_ids in experiment_flows:
        delays = [recorder.flow_delays(fid) for fid in flow_ids]
        if any(len(d) < config.flow_packets for d in delays):
            # The drain window was too short for this experiment; skip it
            # rather than comparing truncated flows.
            result.truncated_experiments += 1
            continue
        result.comparisons.append(compare_flow_percentiles(delays))
    if result.truncated_experiments:
        warnings.warn(
            f"{result.truncated_experiments} of {config.experiments} user "
            f"experiments were truncated by the drain settle window "
            f"(drain={config.drain} ms) and excluded from the comparisons; "
            f"increase MultiHopConfig.drain to keep them",
            RuntimeWarning,
            stacklevel=2,
        )
    return result
