"""General routed topologies -- beyond the paper's chain.

The Section 6 study uses a single chain (Figure 6); a downstream user
will want arbitrary topologies.  :class:`RoutedNetwork` provides them
on the same substrate: named nodes, one scheduler-equipped output link
per directed edge, and explicit per-flow routes (source routing -- the
paper's setting assumes no dynamic routing anyway).

Packets carry no route themselves; each link's demultiplexer looks up
the packet's ``flow_id`` and forwards it along the flow's remaining
path, so two flows can share links while following different routes.
Cross-traffic is attached per edge, exactly as in the chain study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..errors import TopologyError
from ..sim.engine import Simulator
from ..sim.link import Link, PacketSink, Receiver
from ..sim.packet import Packet
from ..schedulers.base import Scheduler

__all__ = ["RoutedNetwork", "RouteDemux"]


class RouteDemux:
    """Per-link output: forwards each flow to its next hop.

    Routes are static per flow (source routing), so the next receiver
    is memoized per ``flow_id`` -- both the evented path and the
    chain-fused drain then resolve a hop in one dict hit instead of
    re-scanning the route's edge list per packet.  The cache is
    cleared whenever the network's route table changes
    (:attr:`RoutedNetwork._route_version`).

    Packets without a flow (cross-traffic), or at the end of their
    route, go to the local sink.  Implements the drain-demux protocol
    (:mod:`repro.sim.link`) so chains of drain-enabled links fuse
    across shared edges.
    """

    def __init__(self, network: "RoutedNetwork", edge: tuple[str, str]) -> None:
        self.network = network
        self.edge = edge
        self.local_sink = PacketSink()
        self._cache: dict = {}

    def receive(self, packet: Packet) -> None:
        self.drain_resolve(packet).receive(packet)

    # -- drain-demux protocol ------------------------------------------
    def drain_resolve(self, packet: Packet) -> Receiver:
        """Next receiver for ``packet``, memoized per flow_id."""
        fid = packet.flow_id
        try:
            return self._cache[fid]
        except KeyError:
            target = self.network._next_hop(packet, self.edge)
            receiver = self.local_sink if target is None else target
            self._cache[fid] = receiver
            return receiver

    def drain_successors(self) -> list[Receiver]:
        """Every receiver reachable from this edge under current routes."""
        successors: list[Receiver] = []
        network = self.network
        for route in network._routes.values():
            edges = route.edges
            for index, edge in enumerate(edges):
                if edge == self.edge:
                    if index + 1 < len(edges):
                        successors.append(network.links[edges[index + 1]])
                    else:
                        successors.append(route.terminal)
        successors.append(self.local_sink)
        return successors

    def drain_guard(self):
        """Closure that is True while the route table is unchanged."""
        network = self.network
        version = network._route_version
        return lambda: network._route_version == version


@dataclass
class _FlowRoute:
    edges: tuple[tuple[str, str], ...]
    terminal: Receiver


class RoutedNetwork:
    """Nodes, scheduler-equipped directed edges, and per-flow routes."""

    def __init__(self, sim: Simulator, drain: bool = True) -> None:
        self.sim = sim
        self.nodes: set[str] = set()
        self.links: dict[tuple[str, str], Link] = {}
        self._routes: dict[int, _FlowRoute] = {}
        #: Default for :meth:`add_link`'s ``drain`` flag -- the routed
        #: path's equivalent of ``MultiHopConfig.drain_kernel`` /
        #: the CLI's ``--no-drain`` A/B switch.
        self.drain = drain
        #: Bumped on every route-table change; RouteDemux resolution
        #: caches and cached drain chains revalidate against it.
        self._route_version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> None:
        """Declare a node.  Idempotent."""
        self.nodes.add(name)

    def add_link(
        self,
        src: str,
        dst: str,
        scheduler: Scheduler,
        capacity: float,
        drain: Optional[bool] = None,
    ) -> Link:
        """Create the directed edge src -> dst with its output link.

        ``drain`` overrides the network-level default for this link's
        busy-period drain kernel (``None`` inherits it); with the
        kernel enabled, consecutive drain-enabled links along static
        routes additionally fuse into chain drains.
        """
        if src not in self.nodes or dst not in self.nodes:
            raise TopologyError(f"unknown node in edge {src!r} -> {dst!r}")
        edge = (src, dst)
        if edge in self.links:
            raise TopologyError(f"duplicate edge {src!r} -> {dst!r}")
        link = Link(
            self.sim,
            scheduler,
            capacity,
            target=RouteDemux(self, edge),
            name=f"{src}->{dst}",
            drain=self.drain if drain is None else drain,
        )
        self.links[edge] = link
        return link

    def shortest_path(
        self,
        src: str,
        dst: str,
        weight: Optional[Callable[[str, str, Link], float]] = None,
    ) -> list[str]:
        """Shortest src -> dst node path over the existing edges.

        ``weight`` maps (src, dst, link) to an edge cost; the default is
        hop count.  Uses networkx's Dijkstra under the hood.
        """
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for (edge_src, edge_dst), link in self.links.items():
            cost = weight(edge_src, edge_dst, link) if weight else 1.0
            graph.add_edge(edge_src, edge_dst, weight=cost)
        try:
            return list(
                nx.shortest_path(graph, src, dst, weight="weight")
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise TopologyError(f"no path {src!r} -> {dst!r}: {exc}") from None

    def add_auto_route(
        self,
        flow_id: int,
        src: str,
        dst: str,
        terminal: Optional[Receiver] = None,
        weight: Optional[Callable[[str, str, Link], float]] = None,
    ) -> list[str]:
        """Route a flow along the shortest path; returns the chosen path."""
        path = self.shortest_path(src, dst, weight)
        self.add_route(flow_id, path, terminal)
        return path

    def add_route(
        self,
        flow_id: int,
        path: Sequence[str],
        terminal: Optional[Receiver] = None,
    ) -> None:
        """Register a flow's path (a node sequence); every consecutive
        node pair must be an existing edge.  Packets of ``flow_id``
        injected via :meth:`ingress` traverse the path and end at
        ``terminal`` (default: a fresh sink)."""
        if flow_id in self._routes:
            raise TopologyError(f"flow {flow_id} already routed")
        if len(path) < 2:
            raise TopologyError("a route needs at least two nodes")
        edges = tuple(zip(path, path[1:]))
        for edge in edges:
            if edge not in self.links:
                raise TopologyError(f"route uses missing edge {edge}")
        self._routes[flow_id] = _FlowRoute(
            edges=edges,
            terminal=terminal if terminal is not None else PacketSink(),
        )
        # New routes change next-hop resolution: invalidate the per-demux
        # memos (an unrouted flow may have been cached to a local sink)
        # and any drain chains guarding on the route version.
        self._route_version += 1
        # A rewired route is a topology edit: links whose cached chains
        # merely *contain* an affected edge (fan-in members upstream of
        # it) revalidate through the simulator-wide version stamp.
        self.sim._topo_version += 1
        for link in self.links.values():
            target = link.target
            if type(target) is RouteDemux:
                target._cache.clear()
            # A new route can create couplings (or sources) a cached
            # non-fusing decision never re-checks; force a rebuild.
            link._chain_cache = None

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def ingress(self, flow_id: int) -> Receiver:
        """The receiver where packets of ``flow_id`` enter the network."""
        route = self._route_for(flow_id)
        return self.links[route.edges[0]]

    def edge_link(self, src: str, dst: str) -> Link:
        """The link of an edge (for attaching cross-traffic/monitors)."""
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no edge {src!r} -> {dst!r}") from None

    def terminal(self, flow_id: int) -> Receiver:
        """The flow's terminal receiver (e.g. a FlowRecorder)."""
        return self._route_for(flow_id).terminal

    # ------------------------------------------------------------------
    def _route_for(self, flow_id: int) -> _FlowRoute:
        try:
            return self._routes[flow_id]
        except KeyError:
            raise TopologyError(f"flow {flow_id} has no route") from None

    def _next_hop(
        self, packet: Packet, edge: tuple[str, str]
    ) -> Optional[Receiver]:
        """Where a packet leaving ``edge`` goes next (None = local sink)."""
        if packet.flow_id is None:
            return None
        route = self._routes.get(packet.flow_id)
        if route is None:
            return None
        try:
            index = route.edges.index(edge)
        except ValueError:
            return None  # stray packet; swallow at the local sink
        if index + 1 < len(route.edges):
            return self.links[route.edges[index + 1]]
        return route.terminal
