"""Cross-traffic sources for the multi-hop study (Section 6).

Each hop carries C (= 8 in the paper) sources with Pareto-distributed
interarrivals (alpha = 1.9), fixed 500-byte packets, and a per-packet
class drawn from the 40/30/20/10 distribution.  Cross-traffic enters at
one node and exits right after that node's link (Figure 6), so every
link sees fresh, independent cross load.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.link import Receiver
from ..sim.packet import Packet
from ..traffic.base import InterarrivalProcess
from ..traffic.source import PacketIdAllocator

__all__ = ["MixedClassSource"]


class MixedClassSource:
    """Open-loop source whose packets draw a class per emission."""

    def __init__(
        self,
        sim: Simulator,
        target: Receiver,
        interarrivals: InterarrivalProcess,
        class_probabilities: Sequence[float],
        packet_size: float,
        rng: np.random.Generator,
        ids: Optional[PacketIdAllocator] = None,
    ) -> None:
        probs = np.asarray(class_probabilities, dtype=float)
        if probs.ndim != 1 or not len(probs):
            raise ConfigurationError("class_probabilities must be a 1-D sequence")
        if np.any(probs < 0) or abs(float(probs.sum()) - 1.0) > 1e-9:
            raise ConfigurationError(
                f"class probabilities must be non-negative and sum to 1: {probs}"
            )
        if packet_size <= 0:
            raise ConfigurationError(f"packet_size must be positive: {packet_size}")
        self.sim = sim
        self.target = target
        self.interarrivals = interarrivals
        self._cum = np.cumsum(probs)
        self.packet_size = float(packet_size)
        self._rng = rng
        self.ids = ids if ids is not None else PacketIdAllocator()
        self.packets_emitted = 0
        self._started = False

    def start(self) -> None:
        """Schedule the first arrival.  Idempotent."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.interarrivals.next_gap(), self._emit)

    def _emit(self) -> None:
        u = self._rng.random()
        class_id = int(np.searchsorted(self._cum, u, side="right"))
        if class_id >= len(self._cum):
            class_id = len(self._cum) - 1
        packet = Packet(
            packet_id=self.ids.next_id(),
            class_id=class_id,
            size=self.packet_size,
            created_at=self.sim.now,
            flow_id=None,
        )
        self.packets_emitted += 1
        self.target.receive(packet)
        self.sim.schedule(self.sim.now + self.interarrivals.next_gap(), self._emit)
