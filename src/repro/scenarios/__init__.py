"""City-scale scenario corpus for the sharded sweep tier.

The paper's own grids top out at a few hundred cells of single-link or
4-hop-chain traffic.  This package generates the workloads the sharded
runner (:mod:`repro.runner.shard`) exists for: metro-aggregation
topologies (a star of branch chains converging on a hub, or a
three-layer fat-tree-lite), thousands of Pareto flows with heavy-tailed
packet-size mixes, swept over scheduler x SDP x utilization x seed
grids -- and, per cell, the paper's core question at that scale: how
close do the measured per-class delay ratios stay to the SDP targets
(DDP fidelity)?

The expensive part of a city cell is compiling its arrival traces, and
the traces depend only on the traffic geometry -- not on the scheduler
or the SDP vector.  Every cell that shares a traffic configuration
shares one *trace group*, compiled once in the coordinator and
published to the workers zero-copy through shared memory.
"""

from .generators import (
    CITY_SIZES,
    CITY_SIZE_PROBS,
    TOPOLOGIES,
    branch_flow_counts,
    build_city_topology,
    flow_classes,
    heavy_tail_sizes,
)
from .city import (
    CityGridConfig,
    CityScenarioConfig,
    CityTask,
    city_summary,
    city_tasks,
    city_to_csv,
    compile_city_traces,
    fidelity_curve,
    fidelity_curve_base,
    fidelity_curve_svg,
    fidelity_curve_to_csv,
    format_city,
    format_fidelity_curve,
    run_city,
    trace_group_key,
)

__all__ = [
    "CITY_SIZES",
    "CITY_SIZE_PROBS",
    "TOPOLOGIES",
    "branch_flow_counts",
    "build_city_topology",
    "flow_classes",
    "heavy_tail_sizes",
    "CityGridConfig",
    "CityScenarioConfig",
    "CityTask",
    "city_summary",
    "city_tasks",
    "city_to_csv",
    "compile_city_traces",
    "fidelity_curve",
    "fidelity_curve_base",
    "fidelity_curve_svg",
    "fidelity_curve_to_csv",
    "format_city",
    "format_fidelity_curve",
    "run_city",
    "trace_group_key",
]
