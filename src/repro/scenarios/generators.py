"""Traffic and topology generators for the city scenarios.

Three deterministic building blocks:

* **Flow population.**  ``flows`` Pareto on/off-like flows are
  apportioned to the service classes by largest-remainder on the class
  mix (so a 1000-flow 40/30/20/10 mix gets exactly 400/300/200/100
  flows) and dealt round-robin to the branches.  Both assignments are
  pure functions of the config -- a worker and the coordinator always
  agree on which flow lives where.
* **Packet sizes.**  A heavier-than-the-paper mix spanning 40 B ACKs to
  9000 B jumbo frames; the tail probabilities are small but carry a
  third of the bytes, which is what makes city links bursty at every
  timescale.
* **Topology.**  ``star_of_chains`` -- per-branch chains of congested
  hops converging (fan-in) on one hub link, the PR 7 fused-drain shape
  at scale; ``fat_tree_lite`` -- edge links into an aggregation layer
  into one core link, the classic three-tier metro shape.  Capacities
  are derived from the offered load so the hub runs at the configured
  utilization and every edge at ``edge_utilization``, independent of
  flow count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..schedulers.registry import make_scheduler
from ..sim.link import Link, PacketSink
from ..traffic.sizes import DiscretePacketSizes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Simulator
    from .city import CityScenarioConfig

__all__ = [
    "CITY_SIZES",
    "CITY_SIZE_PROBS",
    "TOPOLOGIES",
    "heavy_tail_sizes",
    "city_size_mean",
    "flow_classes",
    "branch_flow_counts",
    "branch_byte_rate",
    "total_byte_rate",
    "build_city_topology",
]

#: Packet-size mix (bytes): ACKs, default-MTU data, full Ethernet
#: frames, and a jumbo tail.  Mean ~= 1038.6 B.
CITY_SIZES = (40.0, 576.0, 1500.0, 4380.0, 9000.0)
CITY_SIZE_PROBS = (0.45, 0.25, 0.2, 0.07, 0.03)

TOPOLOGIES = ("star_of_chains", "fat_tree_lite")


def heavy_tail_sizes(rng: np.random.Generator | None = None) -> DiscretePacketSizes:
    """The city packet-size sampler (one per flow, own stream)."""
    return DiscretePacketSizes(CITY_SIZES, CITY_SIZE_PROBS, rng=rng)


def city_size_mean() -> float:
    """Mean packet size of the city mix (for capacity sizing)."""
    return float(np.dot(CITY_SIZES, CITY_SIZE_PROBS))


# ----------------------------------------------------------------------
# Flow population
# ----------------------------------------------------------------------
def flow_classes(flows: int, class_mix: Sequence[float]) -> list[int]:
    """Per-flow class ids: largest-remainder apportionment of the mix.

    Flow ``i``'s class is ``flow_classes(...)[i]``; combined with the
    round-robin branch deal (``i % branches``) every class lands on
    every branch once ``flows`` is a few times ``branches``.
    """
    if flows < 1:
        raise ConfigurationError(f"flows must be >= 1: {flows}")
    quotas = [flows * share for share in class_mix]
    counts = [int(q) for q in quotas]
    shortfall = flows - sum(counts)
    # Largest fractional remainders get the leftover flows; ties break
    # toward the lower class id (deterministic).
    order = sorted(
        range(len(quotas)), key=lambda c: (counts[c] - quotas[c], c)
    )
    for c in order[:shortfall]:
        counts[c] += 1
    classes: list[int] = []
    for class_id, count in enumerate(counts):
        classes.extend([class_id] * count)
    return classes


def branch_flow_counts(flows: int, branches: int) -> list[int]:
    """Flows per branch under the round-robin deal (``i % branches``)."""
    base, extra = divmod(flows, branches)
    return [base + (1 if b < extra else 0) for b in range(branches)]


def branch_byte_rate(config: "CityScenarioConfig", branch: int) -> float:
    """Mean offered bytes/ms entering one branch."""
    count = branch_flow_counts(config.flows, config.branches)[branch]
    return count * city_size_mean() / config.flow_gap


def total_byte_rate(config: "CityScenarioConfig") -> float:
    """Mean offered bytes/ms crossing the hub (all flows)."""
    return config.flows * city_size_mean() / config.flow_gap


# ----------------------------------------------------------------------
# Topology builders
# ----------------------------------------------------------------------
def build_city_topology(
    sim: "Simulator", config: "CityScenarioConfig"
) -> tuple[list[Link], list[Link], Link]:
    """Build the configured topology; ``(entries, all_links, hub)``.

    ``entries[b]`` is where branch ``b``'s trace is replayed into;
    ``hub`` is the converged link whose :class:`DelayMonitor` measures
    the DDP fidelity; ``all_links`` (hub last) is for invariant
    checkers.  Links are created back to front so every link knows its
    downstream at construction, which is what lets the drain kernel
    fuse the chains (star) or the whole tree path (fat tree).
    """
    if config.topology == "star_of_chains":
        return _star_of_chains(sim, config)
    if config.topology == "fat_tree_lite":
        return _fat_tree_lite(sim, config)
    raise ConfigurationError(
        f"unknown topology {config.topology!r}; choose from {TOPOLOGIES}"
    )


def _make_link(sim, config, capacity: float, target, name: str) -> Link:
    return Link(
        sim,
        make_scheduler(config.scheduler, config.sdps),
        capacity=capacity,
        target=target,
        name=name,
        drain=config.drain,
    )


def _star_of_chains(sim, config):
    hub = _make_link(
        sim,
        config,
        total_byte_rate(config) / config.utilization,
        PacketSink(),
        "hub",
    )
    links = []
    entries = []
    for b in range(config.branches):
        capacity = branch_byte_rate(config, b) / config.edge_utilization
        downstream = hub
        for hop in range(config.hops_per_branch - 1, -1, -1):
            link = _make_link(
                sim, config, capacity, downstream, f"b{b}h{hop}"
            )
            links.append(link)
            downstream = link
        entries.append(downstream)
    links.append(hub)
    return entries, links, hub


def _fat_tree_lite(sim, config):
    core = _make_link(
        sim,
        config,
        total_byte_rate(config) / config.utilization,
        PacketSink(),
        "core",
    )
    # Aggregation layer: edge b homes to aggregation b % aggregation.
    agg_links = []
    for a in range(config.aggregation):
        rate = sum(
            branch_byte_rate(config, b)
            for b in range(config.branches)
            if b % config.aggregation == a
        )
        agg_links.append(
            _make_link(
                sim,
                config,
                # An idle aggregation link (more aggs than branches)
                # still needs a positive capacity to construct.
                max(rate, 1e-9) / config.utilization,
                core,
                f"agg{a}",
            )
        )
    links = []
    entries = []
    for b in range(config.branches):
        edge = _make_link(
            sim,
            config,
            branch_byte_rate(config, b) / config.edge_utilization,
            agg_links[b % config.aggregation],
            f"edge{b}",
        )
        links.append(edge)
        entries.append(edge)
    links.extend(agg_links)
    links.append(core)
    return entries, links, core
