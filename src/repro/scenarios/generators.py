"""Traffic and topology generators for the city scenarios.

Three deterministic building blocks:

* **Flow population.**  ``flows`` Pareto on/off-like flows are
  apportioned to the service classes by largest-remainder on the class
  mix (so a 1000-flow 40/30/20/10 mix gets exactly 400/300/200/100
  flows) and dealt round-robin to the branches.  Both assignments are
  pure functions of the config -- a worker and the coordinator always
  agree on which flow lives where.
* **Packet sizes.**  A heavier-than-the-paper mix spanning 40 B ACKs to
  9000 B jumbo frames; the tail probabilities are small but carry a
  third of the bytes, which is what makes city links bursty at every
  timescale.
* **Topology.**  ``star_of_chains`` -- per-branch chains of congested
  hops converging (fan-in) on one hub link, the PR 7 fused-drain shape
  at scale; ``fat_tree_lite`` -- edge links into an aggregation layer
  into one core link, the classic three-tier metro shape.  Capacities
  are derived from the offered load so the hub runs at the configured
  utilization and every edge at ``edge_utilization``, independent of
  flow count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..schedulers.registry import make_scheduler
from ..sim.link import Link, PacketSink
from ..traffic.sizes import DiscretePacketSizes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Simulator
    from .city import CityScenarioConfig

__all__ = [
    "CITY_SIZES",
    "CITY_SIZE_PROBS",
    "TOPOLOGIES",
    "LOAD_SHAPES",
    "LoadShape",
    "FluidLinkSpec",
    "heavy_tail_sizes",
    "city_size_mean",
    "flow_classes",
    "branch_flow_counts",
    "branch_byte_rate",
    "total_byte_rate",
    "build_city_topology",
    "city_link_graph",
]

#: Packet-size mix (bytes): ACKs, default-MTU data, full Ethernet
#: frames, and a jumbo tail.  Mean ~= 1038.6 B.
CITY_SIZES = (40.0, 576.0, 1500.0, 4380.0, 9000.0)
CITY_SIZE_PROBS = (0.45, 0.25, 0.2, 0.07, 0.03)

TOPOLOGIES = ("star_of_chains", "fat_tree_lite")

LOAD_SHAPES = ("flat", "diurnal", "flash_crowd")


@dataclass(frozen=True)
class LoadShape:
    """Deterministic long-horizon load modulator ``m(t)``.

    Modulates the stationary Pareto flow population by *time-warping*
    arrival timestamps: a base trace generated on the "internal"
    timeline ``u`` (stationary unit-multiplier rate) maps to the
    modulated timeline through ``t = Lambda^{-1}(u)`` where
    ``Lambda(t) = integral_0^t m(s) ds`` -- the classic inhomogeneous
    thinning-free time change.  Warping is monotone, so per-flow and
    merged traces stay time-sorted, and the same seeded base draws
    produce the modulated workload bit-deterministically.

    Kinds:

    * ``flat`` -- ``m(t) = 1`` (identity; the default, and the only
      shape that leaves traces untouched).
    * ``diurnal`` -- ``m(t) = 1 + amplitude * sin(2*pi*t/period)``,
      the sinusoidal day/night swing (``0 <= amplitude < 1`` keeps the
      rate positive and ``Lambda`` invertible).
    * ``flash_crowd`` -- ``m(t) = factor`` on ``[start, start +
      duration)`` and 1 elsewhere: a step overload whose onset and
      offset are exactly the transients the hybrid engine must bracket
      in packet mode (:meth:`transient_edges`).
    """

    kind: str = "flat"
    #: Diurnal swing: relative amplitude and period (time units).
    amplitude: float = 0.5
    period: float = 20_000.0
    #: Flash crowd: onset, length, and rate multiplier of the step.
    start: float = 0.0
    duration: float = 0.0
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in LOAD_SHAPES:
            raise ConfigurationError(
                f"unknown load shape {self.kind!r}; choose from {LOAD_SHAPES}"
            )
        if self.kind == "diurnal":
            if not 0 <= self.amplitude < 1:
                raise ConfigurationError(
                    f"diurnal amplitude must be in [0, 1): {self.amplitude}"
                )
            if self.period <= 0:
                raise ConfigurationError(
                    f"diurnal period must be positive: {self.period}"
                )
        if self.kind == "flash_crowd":
            if self.start < 0 or self.duration < 0:
                raise ConfigurationError(
                    "flash crowd start and duration must be non-negative"
                )
            if self.factor <= 0:
                raise ConfigurationError(
                    f"flash crowd factor must be positive: {self.factor}"
                )

    @property
    def flat(self) -> bool:
        """True when the shape is the identity (no warping needed)."""
        return self.kind == "flat" or (
            self.kind == "diurnal" and self.amplitude == 0.0
        ) or (
            self.kind == "flash_crowd"
            and (self.duration == 0.0 or self.factor == 1.0)
        )

    def multiplier(self, t):
        """``m(t)`` -- the instantaneous rate multiplier (vectorized)."""
        t = np.asarray(t, dtype=np.float64)
        if self.kind == "diurnal":
            return 1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period)
        if self.kind == "flash_crowd":
            inside = (t >= self.start) & (t < self.start + self.duration)
            return np.where(inside, self.factor, 1.0)
        return np.ones_like(t)

    def cumulative(self, t):
        """``Lambda(t) = integral_0^t m(s) ds`` in closed form."""
        t = np.asarray(t, dtype=np.float64)
        if self.kind == "diurnal":
            w = 2.0 * np.pi / self.period
            return t + self.amplitude / w * (1.0 - np.cos(w * t))
        if self.kind == "flash_crowd":
            burst = np.clip(t - self.start, 0.0, self.duration)
            return t + (self.factor - 1.0) * burst
        return t

    def internal_horizon(self, horizon: float) -> float:
        """Length of base (internal-time) trace needed to cover
        ``[0, horizon)`` after warping."""
        return float(self.cumulative(horizon))

    def warp_times(self, internal_times: np.ndarray) -> np.ndarray:
        """Map internal-timeline arrivals ``u`` to ``Lambda^{-1}(u)``."""
        u = np.asarray(internal_times, dtype=np.float64)
        if self.flat:
            return u
        if self.kind == "flash_crowd":
            s, d, f = self.start, self.duration, self.factor
            knots_t = np.array([0.0, s, s + d])
            knots_u = self.cumulative(knots_t)
            t = np.interp(u, knots_u, knots_t)
            tail = u > knots_u[-1]
            if np.any(tail):
                t = np.where(tail, knots_t[-1] + (u - knots_u[-1]), t)
            return t
        # Diurnal: Lambda is smooth with slope m(t) >= 1 - amplitude > 0;
        # Newton from t = u converges in a handful of iterations and is
        # fully deterministic (fixed iteration count + tolerance).
        t = u.copy()
        for _ in range(12):
            residual = self.cumulative(t) - u
            if float(np.abs(residual).max(initial=0.0)) < 1e-10:
                break
            t -= residual / self.multiplier(t)
        return t

    def transient_edges(self, horizon: float) -> tuple[float, ...]:
        """Times where ``m`` is discontinuous -- hybrid packet anchors."""
        if self.kind != "flash_crowd" or self.flat:
            return ()
        return tuple(
            t for t in (self.start, self.start + self.duration) if 0.0 < t < horizon
        )


def heavy_tail_sizes(rng: np.random.Generator | None = None) -> DiscretePacketSizes:
    """The city packet-size sampler (one per flow, own stream)."""
    return DiscretePacketSizes(CITY_SIZES, CITY_SIZE_PROBS, rng=rng)


def city_size_mean() -> float:
    """Mean packet size of the city mix (for capacity sizing)."""
    return float(np.dot(CITY_SIZES, CITY_SIZE_PROBS))


# ----------------------------------------------------------------------
# Flow population
# ----------------------------------------------------------------------
def flow_classes(flows: int, class_mix: Sequence[float]) -> list[int]:
    """Per-flow class ids: largest-remainder apportionment of the mix.

    Flow ``i``'s class is ``flow_classes(...)[i]``; combined with the
    round-robin branch deal (``i % branches``) every class lands on
    every branch once ``flows`` is a few times ``branches``.
    """
    if flows < 1:
        raise ConfigurationError(f"flows must be >= 1: {flows}")
    quotas = [flows * share for share in class_mix]
    counts = [int(q) for q in quotas]
    shortfall = flows - sum(counts)
    # Largest fractional remainders get the leftover flows; ties break
    # toward the lower class id (deterministic).
    order = sorted(
        range(len(quotas)), key=lambda c: (counts[c] - quotas[c], c)
    )
    for c in order[:shortfall]:
        counts[c] += 1
    classes: list[int] = []
    for class_id, count in enumerate(counts):
        classes.extend([class_id] * count)
    return classes


def branch_flow_counts(flows: int, branches: int) -> list[int]:
    """Flows per branch under the round-robin deal (``i % branches``)."""
    base, extra = divmod(flows, branches)
    return [base + (1 if b < extra else 0) for b in range(branches)]


def branch_byte_rate(config: "CityScenarioConfig", branch: int) -> float:
    """Mean offered bytes/ms entering one branch."""
    count = branch_flow_counts(config.flows, config.branches)[branch]
    return count * city_size_mean() / config.flow_gap


def total_byte_rate(config: "CityScenarioConfig") -> float:
    """Mean offered bytes/ms crossing the hub (all flows)."""
    return config.flows * city_size_mean() / config.flow_gap


# ----------------------------------------------------------------------
# Topology builders
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FluidLinkSpec:
    """Pure-data description of one link for the hybrid fluid engine.

    :func:`city_link_graph` mirrors :func:`build_city_topology` --
    same names, same capacity formulas, same wiring -- but as plain
    data the fluid controller can walk without building a simulator.
    ``downstream`` indexes into the spec list (``None`` for the sink
    side of the monitored link); ``branches`` lists which external
    branch traces enter at this link.
    """

    name: str
    capacity: float
    downstream: int | None
    branches: tuple[int, ...] = ()


def city_link_graph(config: "CityScenarioConfig") -> list[FluidLinkSpec]:
    """The cell's link graph in topological order (hub/core last).

    Every spec's ``downstream`` index points *later* in the list, so a
    single forward pass propagates each link's fluid departure process
    into its downstream arrival process.  Kept in lockstep with
    :func:`build_city_topology` (asserted in tests): packet segments
    look links up by ``name`` to seed per-link carried backlogs.
    """
    if config.topology == "star_of_chains":
        hops = config.hops_per_branch
        specs: list[FluidLinkSpec] = []
        hub_index = config.branches * hops
        for b in range(config.branches):
            capacity = branch_byte_rate(config, b) / config.edge_utilization
            base = b * hops
            for hop in range(hops):
                specs.append(
                    FluidLinkSpec(
                        name=f"b{b}h{hop}",
                        capacity=capacity,
                        downstream=base + hop + 1 if hop + 1 < hops else hub_index,
                        branches=(b,) if hop == 0 else (),
                    )
                )
        specs.append(
            FluidLinkSpec(
                name="hub",
                capacity=total_byte_rate(config) / config.utilization,
                downstream=None,
                branches=tuple(range(config.branches)) if hops == 0 else (),
            )
        )
        return specs
    if config.topology == "fat_tree_lite":
        specs = []
        core_index = config.branches + config.aggregation
        for b in range(config.branches):
            specs.append(
                FluidLinkSpec(
                    name=f"edge{b}",
                    capacity=(
                        branch_byte_rate(config, b) / config.edge_utilization
                    ),
                    downstream=config.branches + (b % config.aggregation),
                    branches=(b,),
                )
            )
        for a in range(config.aggregation):
            rate = sum(
                branch_byte_rate(config, b)
                for b in range(config.branches)
                if b % config.aggregation == a
            )
            specs.append(
                FluidLinkSpec(
                    name=f"agg{a}",
                    capacity=max(rate, 1e-9) / config.utilization,
                    downstream=core_index,
                )
            )
        specs.append(
            FluidLinkSpec(
                name="core",
                capacity=total_byte_rate(config) / config.utilization,
                downstream=None,
            )
        )
        return specs
    raise ConfigurationError(
        f"unknown topology {config.topology!r}; choose from {TOPOLOGIES}"
    )


def build_city_topology(
    sim: "Simulator", config: "CityScenarioConfig"
) -> tuple[list[Link], list[Link], Link]:
    """Build the configured topology; ``(entries, all_links, hub)``.

    ``entries[b]`` is where branch ``b``'s trace is replayed into;
    ``hub`` is the converged link whose :class:`DelayMonitor` measures
    the DDP fidelity; ``all_links`` (hub last) is for invariant
    checkers.  Links are created back to front so every link knows its
    downstream at construction, which is what lets the drain kernel
    fuse the chains (star) or the whole tree path (fat tree).
    """
    if config.topology == "star_of_chains":
        return _star_of_chains(sim, config)
    if config.topology == "fat_tree_lite":
        return _fat_tree_lite(sim, config)
    raise ConfigurationError(
        f"unknown topology {config.topology!r}; choose from {TOPOLOGIES}"
    )


def _make_link(sim, config, capacity: float, target, name: str) -> Link:
    return Link(
        sim,
        make_scheduler(config.scheduler, config.sdps),
        capacity=capacity,
        target=target,
        name=name,
        drain=config.drain,
    )


def _star_of_chains(sim, config):
    hub = _make_link(
        sim,
        config,
        total_byte_rate(config) / config.utilization,
        PacketSink(),
        "hub",
    )
    links = []
    entries = []
    for b in range(config.branches):
        capacity = branch_byte_rate(config, b) / config.edge_utilization
        downstream = hub
        for hop in range(config.hops_per_branch - 1, -1, -1):
            link = _make_link(
                sim, config, capacity, downstream, f"b{b}h{hop}"
            )
            links.append(link)
            downstream = link
        entries.append(downstream)
    links.append(hub)
    return entries, links, hub


def _fat_tree_lite(sim, config):
    core = _make_link(
        sim,
        config,
        total_byte_rate(config) / config.utilization,
        PacketSink(),
        "core",
    )
    # Aggregation layer: edge b homes to aggregation b % aggregation.
    agg_links = []
    for a in range(config.aggregation):
        rate = sum(
            branch_byte_rate(config, b)
            for b in range(config.branches)
            if b % config.aggregation == a
        )
        agg_links.append(
            _make_link(
                sim,
                config,
                # An idle aggregation link (more aggs than branches)
                # still needs a positive capacity to construct.
                max(rate, 1e-9) / config.utilization,
                core,
                f"agg{a}",
            )
        )
    links = []
    entries = []
    for b in range(config.branches):
        edge = _make_link(
            sim,
            config,
            branch_byte_rate(config, b) / config.edge_utilization,
            agg_links[b % config.aggregation],
            f"edge{b}",
        )
        links.append(edge)
        entries.append(edge)
    links.extend(agg_links)
    links.append(core)
    return entries, links, core
