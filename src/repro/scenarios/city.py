"""City-scale scenario cells, grids, and their sweep driver.

One *cell* (:class:`CityTask`) replays a fixed many-flow arrival
workload through a metro topology and measures, at the converged hub
link, how faithfully the scheduler holds the paper's proportional
delay model at scale: the successive per-class delay ratios
``d_i / d_{i+1}`` against the SDP targets ``s_{i+1} / s_i`` (Eq 13),
summarized as a mean relative *fidelity error*.

A *grid* (:class:`CityGridConfig`) sweeps scheduler x SDP vector x
utilization x seed.  The expensive part of a cell -- compiling
thousands of per-flow Pareto arrival streams into per-branch traces --
depends only on the traffic side of the config, so every cell sharing
a :func:`trace_group_key` reuses one compiled trace set.  Under the
sharded runner the coordinator compiles each group once and publishes
it zero-copy through shared memory (:func:`run_city`); workers fall
back to compiling locally when nothing was published (plain
``SweepRunner``, serial runs), bit-identically by construction --
the compile path is the same seeded code either way.
"""

from __future__ import annotations

import csv
import dataclasses
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..runner.hashing import fingerprint
from ..sim.engine import Simulator
from ..sim.monitor import DelayMonitor
from ..sim.rng import RandomStreams
from ..traffic.pareto import ParetoInterarrivals
from ..traffic.trace import ArrivalTrace, TraceSource, build_class_trace, merge_traces
from ..sim.hybrid import HybridConfig
from .generators import (
    TOPOLOGIES,
    LoadShape,
    build_city_topology,
    flow_classes,
    heavy_tail_sizes,
)

__all__ = [
    "CityScenarioConfig",
    "CityGridConfig",
    "CityTask",
    "trace_group_key",
    "compile_city_traces",
    "city_tasks",
    "city_summary",
    "run_city",
    "format_city",
    "city_to_csv",
    "FIDELITY_CURVE_RHOS",
    "fidelity_curve",
    "fidelity_curve_base",
    "format_fidelity_curve",
    "fidelity_curve_to_csv",
    "fidelity_curve_svg",
]


@dataclass(frozen=True)
class CityScenarioConfig:
    """One city cell.  Time unit: milliseconds; sizes in bytes."""

    topology: str = "star_of_chains"
    branches: int = 8
    hops_per_branch: int = 1
    #: Aggregation links (fat_tree_lite only; ignored by the star).
    aggregation: int = 2
    #: Total long-lived flows across all branches.
    flows: int = 1200
    #: Mean per-flow Pareto interarrival gap (ms).
    flow_gap: float = 60.0
    scheduler: str = "wtp"
    sdps: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)
    class_mix: tuple[float, ...] = (0.4, 0.3, 0.2, 0.1)
    #: Hub (and aggregation/core) target utilization.
    utilization: float = 0.9
    #: Per-branch edge/chain-hop target utilization.
    edge_utilization: float = 0.5
    horizon: float = 4e4
    warmup: float = 2e3
    seed: int = 1
    pareto_shape: float = 1.9
    check_invariants: bool = False
    #: Busy-period drain kernel A/B switch for every link.
    drain: bool = True
    #: Long-timescale load modulation applied to every flow's arrival
    #: process (diurnal swing, flash crowd).  Part of the trace
    #: identity: cells with different shapes never share traces.
    load_shape: LoadShape = LoadShape()
    #: Hybrid fluid/packet engine knobs; ``None`` (and ``epsilon=0``)
    #: run the ordinary pure-packet path.  Flows into the runner cache
    #: fingerprint like every other config field, so hybrid and pure
    #: results never collide in the cache.
    hybrid: Optional[HybridConfig] = None

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {self.topology!r}; choose from {TOPOLOGIES}"
            )
        if self.branches < 1 or self.hops_per_branch < 1 or self.aggregation < 1:
            raise ConfigurationError("topology dimensions must be >= 1")
        if self.flows < 1:
            raise ConfigurationError(f"flows must be >= 1: {self.flows}")
        if self.flow_gap <= 0:
            raise ConfigurationError(f"flow_gap must be positive: {self.flow_gap}")
        if len(self.sdps) != len(self.class_mix):
            raise ConfigurationError("one SDP per class-mix share required")
        if abs(sum(self.class_mix) - 1.0) > 1e-9:
            raise ConfigurationError("class_mix must sum to 1")
        for rho in (self.utilization, self.edge_utilization):
            if not 0 < rho < 1:
                raise ConfigurationError(f"utilizations must be in (0, 1): {rho}")
        if not 0 <= self.warmup < self.horizon:
            raise ConfigurationError("need 0 <= warmup < horizon")
        if self.hybrid is not None and self.check_invariants:
            raise ConfigurationError(
                "invariant checking requires the pure packet path; "
                "drop hybrid= or check_invariants"
            )

    @property
    def num_classes(self) -> int:
        return len(self.class_mix)

    def target_ratios(self) -> list[float]:
        """Ideal successive ratios s_{i+1} / s_i (Eq 13)."""
        return [
            self.sdps[i + 1] / self.sdps[i] for i in range(len(self.sdps) - 1)
        ]


@dataclass(frozen=True)
class CityTask:
    """Sweep-task wrapper: what a worker receives for one cell."""

    config: CityScenarioConfig


#: Config fields the compiled traces depend on.  Scheduler, SDPs and
#: utilizations are deliberately absent: they shape *capacities and
#: service order*, never the arrival streams, so every cell of an
#: S x D x U sweep at one seed shares a single compiled trace set.
_TRACE_FIELDS = (
    "branches",
    "flows",
    "flow_gap",
    "class_mix",
    "horizon",
    "seed",
    "pareto_shape",
    "load_shape",
)


def trace_group_key(config: CityScenarioConfig) -> str:
    """Identity of a cell's compiled arrival traces (short digest)."""
    return fingerprint(
        {name: getattr(config, name) for name in _TRACE_FIELDS}
    )[:16]


def compile_city_traces(config: CityScenarioConfig) -> list[ArrivalTrace]:
    """Per-branch merged arrival traces, deterministically seeded.

    One gap generator and one size generator per flow, spawned in
    global flow order from ``RandomStreams(seed)`` -- the spawn order
    is the determinism contract, so coordinator and workers compile
    bit-identical traces from the same config.
    """
    streams = RandomStreams(config.seed)
    classes = flow_classes(config.flows, config.class_mix)
    shape = config.load_shape
    # Load-shape modulation is a time warp: generate each flow as a
    # *stationary* process over the internal horizon Lambda(horizon),
    # then map arrival instants through Lambda^{-1}.  Instantaneous
    # rate scales by the multiplier m(t) while per-flow burst structure
    # (Pareto gaps, size marks) is preserved, and a flat shape is the
    # identity -- bit-identical to the unmodulated compile.
    build_horizon = shape.internal_horizon(config.horizon)
    per_branch: list[list[ArrivalTrace]] = [[] for _ in range(config.branches)]
    for index, class_id in enumerate(classes):
        gap_rng = streams.generator()
        size_rng = streams.generator()
        trace = build_class_trace(
            class_id,
            ParetoInterarrivals(config.flow_gap, config.pareto_shape, gap_rng),
            heavy_tail_sizes(size_rng),
            build_horizon,
        )
        if not shape.flat and len(trace):
            warped = shape.warp_times(trace.times)
            keep = int(np.searchsorted(warped, config.horizon, side="left"))
            trace = ArrivalTrace(
                warped[:keep], trace.class_ids[:keep], trace.sizes[:keep]
            )
        per_branch[index % config.branches].append(trace)
    empty = np.empty(0, dtype=np.float64)
    return [
        merge_traces(traces)
        if any(len(t) for t in traces)
        else ArrivalTrace(empty, np.empty(0, dtype=np.int64), empty.copy())
        for traces in per_branch
    ]


def city_summary(task: CityTask) -> dict:
    """Worker: simulate one city cell; JSON-able summary.

    Traces come from the sharded runner's shared-memory registry when
    the coordinator published this cell's trace group
    (:func:`~repro.runner.shard.shared_trace`), else they are compiled
    locally -- same seeded code, bit-identical arrays.
    """
    from ..runner.shard import shared_trace

    config = task.config
    group = trace_group_key(config)
    traces: Optional[list] = [
        shared_trace(f"{group}:b{b}") for b in range(config.branches)
    ]
    if any(trace is None for trace in traces):
        traces = compile_city_traces(config)

    hybrid_summary: Optional[dict] = None
    if config.hybrid is not None and config.hybrid.epsilon > 0:
        from ..sim.hybrid import run_hybrid_city

        controller = run_hybrid_city(config, traces)
        monitor = controller.monitor
        hub_departures = controller.packet_departures
        hybrid_summary = controller.summary()
    else:
        sim = Simulator()
        entries, links, hub = build_city_topology(sim, config)
        monitor = DelayMonitor(config.num_classes, warmup=config.warmup)
        hub.add_monitor(monitor)
        for branch, trace in enumerate(traces):
            if len(trace):
                TraceSource(
                    sim, entries[branch], trace,
                    first_packet_id=branch * 10_000_000,
                ).start()

        if config.check_invariants:
            from ..invariants import InvariantChecker

            checkers = [InvariantChecker(link).attach() for link in links]
            sim.run_checked(until=config.horizon)
            for checker in checkers:
                checker.finalize()
        else:
            sim.run(until=config.horizon)
        hub_departures = hub.departures

    means = monitor.mean_delays()
    ratios = monitor.successive_ratios()
    targets = config.target_ratios()
    errors = [
        abs(ratio - target) / target
        for ratio, target in zip(ratios, targets)
        if math.isfinite(ratio)
    ]
    return {
        "topology": config.topology,
        "scheduler": config.scheduler,
        "sdps": list(config.sdps),
        "utilization": config.utilization,
        "seed": config.seed,
        "packets": int(sum(len(trace) for trace in traces)),
        "mean_delays": means,
        "ratios": ratios,
        "target_ratios": targets,
        "fidelity_error": (
            sum(errors) / len(errors) if errors else float("nan")
        ),
        "hub_departures": hub_departures,
        "class_counts": monitor.counts(),
        "checked": config.check_invariants,
        "hybrid": hybrid_summary,
    }


# ----------------------------------------------------------------------
# Grids
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CityGridConfig:
    """A scheduler x SDP x utilization x seed sweep over one base cell."""

    base: CityScenarioConfig = CityScenarioConfig()
    schedulers: tuple[str, ...] = ("wtp", "bpr")
    sdp_grid: tuple[tuple[float, ...], ...] = (
        (1.0, 2.0, 4.0, 8.0),
        (1.0, 4.0, 16.0, 64.0),
    )
    utilizations: tuple[float, ...] = (0.8, 0.9)
    seeds: tuple[int, ...] = (1, 2)

    def cells(self) -> list[CityScenarioConfig]:
        """All cell configs, in deterministic sweep order.

        Seed is the *outer* loop so consecutive cells share a trace
        group: every scheduler/SDP/utilization variant of one seed is
        adjacent, which keeps the shared-trace working set at one group
        no matter how wide the grid is.
        """
        return [
            dataclasses.replace(
                self.base,
                scheduler=scheduler,
                sdps=sdps,
                utilization=utilization,
                seed=seed,
            )
            for seed in self.seeds
            for scheduler in self.schedulers
            for sdps in self.sdp_grid
            for utilization in self.utilizations
        ]

    def scaled(self, factor: float) -> "CityGridConfig":
        """Smoke-test version: fewer flows, shorter horizon, one seed
        per ``factor`` step (mirrors the figure configs' ``scaled``)."""
        if not 0 < factor <= 1.0:
            raise ConfigurationError(f"factor must be in (0, 1]: {factor}")
        keep = max(1, round(len(self.seeds) * factor))
        base = dataclasses.replace(
            self.base,
            flows=max(self.base.branches, int(self.base.flows * factor)),
            horizon=max(2_000.0, self.base.horizon * factor),
            warmup=max(100.0, self.base.warmup * factor),
        )
        return dataclasses.replace(self, base=base, seeds=self.seeds[:keep])


def city_tasks(grid: CityGridConfig) -> list[CityTask]:
    """The grid's tasks, in deterministic sweep order."""
    return [CityTask(config=config) for config in grid.cells()]


def run_city(grid: CityGridConfig, runner=None) -> list[dict]:
    """Run a city grid; per-cell summaries in sweep order.

    With a :class:`~repro.runner.shard.ShardRunner`, each distinct
    trace group in the grid is compiled once here and published to the
    workers through shared memory, and summaries stream back through
    the consume callback (coordinator RAM stays O(shard) plus the
    points list).  Any other runner gets a plain ``map``; workers then
    compile their own traces from the config.
    """
    from ..runner.shard import ShardRunner

    tasks = city_tasks(grid)
    points: list[dict] = []
    if runner is None:
        from ..runner import serial_runner

        runner = serial_runner()
    if isinstance(runner, ShardRunner):
        shared: dict[str, ArrivalTrace] = {}
        for task in tasks:
            group = trace_group_key(task.config)
            if not any(key.startswith(f"{group}:") for key in shared):
                for branch, trace in enumerate(
                    compile_city_traces(task.config)
                ):
                    shared[f"{group}:b{branch}"] = trace
        runner.map(
            city_summary,
            tasks,
            shared_traces=shared,
            consume=lambda index, payload: points.append(payload),
        )
        return points
    return list(runner.map(city_summary, tasks))


def format_city(points: Sequence[dict]) -> str:
    """Plain-text DDP fidelity table, one row per cell."""
    lines = [
        f"{'topology':<14} {'sched':<6} {'sdps':<20} {'rho':>4} "
        f"{'seed':>4} {'packets':>9} {'fidelity err':>12}"
    ]
    for p in points:
        sdps = "x".join(f"{s:g}" for s in p["sdps"])
        lines.append(
            f"{p['topology']:<14} {p['scheduler']:<6} {sdps:<20} "
            f"{p['utilization']:>4.2f} {p['seed']:>4} {p['packets']:>9} "
            f"{p['fidelity_error']:>12.4f}"
        )
    return "\n".join(lines)


def city_to_csv(points: Sequence[dict], path: str | Path) -> Path:
    """Write the fidelity curve data (CSV, one row per cell)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            (
                "topology", "scheduler", "sdps", "utilization", "seed",
                "packets", "fidelity_error", "mean_delays", "ratios",
            )
        )
        for p in points:
            writer.writerow(
                (
                    p["topology"],
                    p["scheduler"],
                    "x".join(f"{s:g}" for s in p["sdps"]),
                    p["utilization"],
                    p["seed"],
                    p["packets"],
                    repr(p["fidelity_error"]),
                    " ".join(repr(d) for d in p["mean_delays"]),
                    " ".join(repr(r) for r in p["ratios"]),
                )
            )
    return path


# ----------------------------------------------------------------------
# Hybrid fidelity-vs-load curve (one multihop topology, fine rho grid)
# ----------------------------------------------------------------------
#: Default load grid: coarse at light load, finer toward saturation
#: where fluid windows get scarcer and the error model is stressed.
FIDELITY_CURVE_RHOS: tuple[float, ...] = (
    0.60, 0.70, 0.75, 0.80, 0.84, 0.88, 0.90, 0.92, 0.94,
)


def fidelity_curve_base(scale: float = 1.0) -> CityScenarioConfig:
    """The curve's reference cell: a 4-branch, 3-hops-per-branch star.

    ``scale`` shrinks flows/horizon the same way the CLI's ``--scale``
    shrinks grids, keeping the cell multihop (>= 3 hops to the hub).
    """
    if not 0 < scale <= 1.0:
        raise ConfigurationError(f"scale must be in (0, 1]: {scale}")
    return CityScenarioConfig(
        topology="star_of_chains",
        branches=4,
        hops_per_branch=3,
        flows=max(4, int(200 * scale)),
        flow_gap=60.0,
        horizon=max(8_000.0, 120_000.0 * scale),
        warmup=2_000.0,
        seed=7,
    )


def fidelity_curve(
    base: Optional[CityScenarioConfig] = None,
    utilizations: Sequence[float] = FIDELITY_CURVE_RHOS,
    epsilon: float = 0.05,
    runner=None,
) -> list[dict]:
    """Hybrid-vs-pure DDP fidelity error across a fine load grid.

    For each utilization the base multihop cell runs twice -- pure
    packet and hybrid at ``epsilon`` -- and the row records the mean
    and max relative per-class mean-delay error of the hybrid run
    against its pure reference (the bench's fidelity metric), both
    cells' own DDP fidelity error against the Eq 13 targets, and the
    fraction of simulated time the hybrid run spent in fluid mode.
    """
    if base is None:
        base = fidelity_curve_base()
    if base.hybrid is not None:
        raise ConfigurationError(
            "pass a pure base cell; fidelity_curve adds the hybrid knob"
        )
    if epsilon <= 0:
        raise ConfigurationError(
            f"epsilon must be positive for a fidelity curve: {epsilon}"
        )
    cells: list[CityScenarioConfig] = []
    for rho in utilizations:
        pure = dataclasses.replace(base, utilization=rho)
        cells.append(pure)
        cells.append(
            dataclasses.replace(pure, hybrid=HybridConfig(epsilon=epsilon))
        )
    if runner is None:
        from ..runner import serial_runner

        runner = serial_runner()
    summaries = list(
        runner.map(city_summary, [CityTask(config=c) for c in cells])
    )
    rows: list[dict] = []
    for i, rho in enumerate(utilizations):
        pure, hybrid = summaries[2 * i], summaries[2 * i + 1]
        errors = [
            abs(h - p) / p
            for h, p in zip(hybrid["mean_delays"], pure["mean_delays"])
        ]
        rows.append(
            {
                "utilization": float(rho),
                "epsilon": float(epsilon),
                "fidelity_error_vs_pure": sum(errors) / len(errors),
                "max_error_vs_pure": max(errors),
                "pure_ddp_error": pure["fidelity_error"],
                "hybrid_ddp_error": hybrid["fidelity_error"],
                "fluid_time_fraction": (
                    hybrid["hybrid"]["fluid_time_fraction"]
                    if hybrid.get("hybrid")
                    else 0.0
                ),
                "packets": pure["packets"],
            }
        )
    return rows


def format_fidelity_curve(rows: Sequence[dict]) -> str:
    """Plain-text fidelity-vs-load table, one row per utilization."""
    lines = [
        f"{'rho':>5} {'err vs pure':>12} {'max err':>9} "
        f"{'pure DDP':>9} {'hyb DDP':>9} {'fluid %':>8}"
    ]
    for r in rows:
        lines.append(
            f"{r['utilization']:>5.2f} {r['fidelity_error_vs_pure']:>12.4f} "
            f"{r['max_error_vs_pure']:>9.4f} {r['pure_ddp_error']:>9.4f} "
            f"{r['hybrid_ddp_error']:>9.4f} "
            f"{100.0 * r['fluid_time_fraction']:>7.1f}%"
        )
    return "\n".join(lines)


def fidelity_curve_to_csv(rows: Sequence[dict], path: str | Path) -> Path:
    """Write the fidelity-error-vs-rho data (CSV, one row per rho)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fields = (
        "utilization", "epsilon", "fidelity_error_vs_pure",
        "max_error_vs_pure", "pure_ddp_error", "hybrid_ddp_error",
        "fluid_time_fraction", "packets",
    )
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for r in rows:
            writer.writerow([repr(r[f]) for f in fields])
    return path


def fidelity_curve_svg(rows: Sequence[dict], path: str | Path) -> Path:
    """Render fidelity error vs load as an SVG line chart."""
    from ..analysis.svg_plot import LineSeries, line_chart

    epsilon = rows[0]["epsilon"] if rows else 0.05
    series = [
        LineSeries(
            label="mean error vs pure",
            points=tuple(
                (r["utilization"], r["fidelity_error_vs_pure"]) for r in rows
            ),
        ),
        LineSeries(
            label="max error vs pure",
            points=tuple(
                (r["utilization"], r["max_error_vs_pure"]) for r in rows
            ),
        ),
        LineSeries(
            label="fluid time fraction",
            points=tuple(
                (r["utilization"], r["fluid_time_fraction"]) for r in rows
            ),
        ),
    ]
    canvas = line_chart(
        series,
        title=f"Hybrid multihop fidelity vs load (epsilon {epsilon:g})",
        x_label="hub utilization",
        y_label="relative error / fraction",
        y_reference=epsilon,
    )
    return canvas.save(path)
