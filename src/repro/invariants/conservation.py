"""Post-run check of Kleinrock's conservation law (paper Eq 5).

For any work-conserving discipline over classes sharing one packet-size
distribution,  sum_i lambda_i d_i = lambda d(lambda),  where d(lambda)
is the FCFS delay of the aggregate.  A scheduler bug that *shifts*
delay between classes slips past the law, but one that *creates or
destroys* queueing work (a broken busy-period, a dropped timestamp, an
unserved queue) does not -- which is exactly the class of kernel bug
the in-run checks cannot see from a single dispatch.

The measured residual is statistical: the monitor cuts on departure
time while the FCFS reference cuts on arrival time, and packets still
queued at the horizon are in the reference but not in the measurement
(BPR's drained-queue starvation makes this truncation visible).  The
check therefore takes an explicit relative tolerance.  Smoke-scale runs
(5x10^4 time units) show |residual| up to ~0.12 across the Figure 1/2
grid and the default of 0.25 gives 2x headroom, while a scheduler that
actually creates or destroys queueing work lands at O(1); full-scale
10^6-unit runs sit below 0.02 and support a much tighter setting.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..core.conservation import conservation_residual
from ..errors import InvariantViolation

__all__ = ["verify_conservation_law"]


def verify_conservation_law(
    rates: Sequence[float],
    mean_delays: Sequence[float],
    aggregate_delay: float,
    tolerance: float = 0.25,
    sim_time: Optional[float] = None,
) -> float:
    """Check Eq 5 on measured delays; return the relative residual.

    ``rates`` are the per-class arrival rates, ``mean_delays`` the
    measured per-class mean queueing delays, and ``aggregate_delay`` the
    FCFS reference d(lambda) of the same arrivals.  Classes with zero
    rate may carry NaN delays (no departures) and drop out of the sum;
    a NaN delay for an *active* class is itself a violation.  Raises
    :class:`~repro.errors.InvariantViolation` when the relative residual
    exceeds ``tolerance``.
    """
    if len(rates) != len(mean_delays):
        raise InvariantViolation(
            "conservation-law",
            f"rates and delays must align: {len(rates)} != {len(mean_delays)}",
            sim_time=sim_time,
        )
    cleaned = []
    for cid, (rate, delay) in enumerate(zip(rates, mean_delays)):
        if math.isnan(delay):
            if rate > 0:
                raise InvariantViolation(
                    "conservation-law",
                    f"active class {cid} (rate {rate:.6g}) recorded no "
                    "departures",
                    class_id=cid,
                    sim_time=sim_time,
                )
            cleaned.append(0.0)
        else:
            cleaned.append(delay)
    residual = conservation_residual(rates, cleaned, aggregate_delay)
    if abs(residual) > tolerance:
        raise InvariantViolation(
            "conservation-law",
            f"Eq 5 residual {residual:+.4f} exceeds tolerance "
            f"{tolerance:g}: sum lambda_i d_i deviates from "
            f"lambda d(lambda) = {sum(rates) * aggregate_delay:.6g}",
            sim_time=sim_time,
        )
    return residual
