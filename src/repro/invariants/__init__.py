"""Runtime invariant checking: the simulator as its own test oracle.

The paper's claims are statistical, so a silently broken scheduler or
kernel can pass unit tests while skewing every figure.  This subsystem
makes a run *self-checking*: an :class:`InvariantChecker` attaches to a
:class:`~repro.sim.link.Link` (and its scheduler) and verifies, while
the simulation executes,

* per-class FIFO ordering (dispatches always take the class head, in
  arrival order),
* event causality (no packet is dispatched before it arrived; service
  completions fire exactly one transmission time after service start;
  the event calendar's clock never moves backwards),
* work conservation (the server is busy whenever packets are queued,
  and each busy period transmits exactly ``capacity x duration`` bytes),
* losslessness of the default (unbounded-buffer) link,
* discipline-specific properties via a pluggable registry
  (:mod:`~repro.invariants.scheduler_checks`): WTP's priority-order
  rule at each dispatch, BPR's backlog-proportional rate allocation
  (Eqs 8-9), FCFS's oldest-first rule, strict priority's order.

Post-run, :func:`verify_conservation_law` checks Kleinrock's
conservation law (Eq 5) on the measured per-class delays.

Design: attaching *wraps bound methods on the instances* being checked
(``link.receive``, ``scheduler.select``, ``link._complete_service``)
and checked runs go through :meth:`repro.sim.engine.Simulator.run_checked`;
an unchecked run executes the exact original code paths, so disabling
checks costs exactly nothing.  Violations raise the structured
:class:`~repro.errors.InvariantViolation` naming the packet, class, and
simulation time.
"""

from __future__ import annotations

from .checker import InvariantChecker, InvariantReport
from .conservation import verify_conservation_law
from .scheduler_checks import (
    register_scheduler_check,
    registered_scheduler_checks,
    scheduler_check_for,
)

__all__ = [
    "InvariantChecker",
    "InvariantReport",
    "verify_conservation_law",
    "register_scheduler_check",
    "registered_scheduler_checks",
    "scheduler_check_for",
]
