"""Pluggable per-discipline dispatch invariants.

Each check is an *independent reference implementation* of one
scheduler's selection rule, deliberately written out again here instead
of calling into the scheduler: a bug in the production formula must not
silently validate itself.  Checks replicate the schedulers'
floating-point arithmetic operation for operation, so a correct
scheduler matches the reference *exactly* -- no tolerance is needed for
the priority comparisons -- while any deviation (inverted priorities,
wrong tie-break direction, stale state) raises
:class:`~repro.errors.InvariantViolation` at the first offending
dispatch.

The registry is keyed by the scheduler's ``name`` class attribute (the
same key :mod:`repro.schedulers.registry` uses), so subclasses that keep
the name are checked against the named discipline's contract, and new
disciplines can register their own check via
:func:`register_scheduler_check`.

Registered entries are *factories*: ``factory(scheduler)`` is called
once when a checker attaches and returns the bound per-dispatch check.
Binding at attach time lets a factory capture the scheduler's constant
state (SDPs, capacity, the in-place-mutated backlog and rate lists) in
closure locals, keeping the per-dispatch cost to the comparison itself.
The bound check runs immediately *after* ``select`` returned, against
the live post-pop queues::

    check(queues, now, chosen)

where ``queues[c]`` is class ``c``'s FIFO deque (``queues[c][0]`` its
head) and ``chosen`` is the packet the scheduler picked.  Only the
chosen packet's own queue changed since the decision, so a check
compares ``chosen`` against the heads of every *other* class -- the
argmax rule "chosen attains the maximum, ties to the higher class" is
equivalent to "no other class strictly beats chosen, and no equal class
sits above it", which needs no pre-pop snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections import deque

    from ..schedulers.base import Scheduler
    from ..sim.packet import Packet

__all__ = [
    "BoundDispatchCheck",
    "DispatchCheckFactory",
    "register_scheduler_check",
    "registered_scheduler_checks",
    "scheduler_check_for",
]

#: The bound per-dispatch check: ``check(queues, now, chosen)``.
BoundDispatchCheck = Callable[[Sequence["deque"], float, "Packet"], None]
#: What gets registered: binds a scheduler instance to its check.
DispatchCheckFactory = Callable[["Scheduler"], BoundDispatchCheck]

_REGISTRY: dict[str, DispatchCheckFactory] = {}


def register_scheduler_check(name: str, factory: DispatchCheckFactory) -> None:
    """Register (or replace) the dispatch-check factory for ``name``."""
    _REGISTRY[name] = factory


def registered_scheduler_checks() -> tuple[str, ...]:
    """Scheduler names with a registered dispatch check, sorted."""
    return tuple(sorted(_REGISTRY))


def scheduler_check_for(scheduler: "Scheduler") -> Optional[BoundDispatchCheck]:
    """The bound dispatch check for ``scheduler`` (by name), or ``None``."""
    factory = _REGISTRY.get(scheduler.name)
    return factory(scheduler) if factory is not None else None


def _violation(
    invariant: str, detail: str, chosen: "Packet", now: float
) -> InvariantViolation:
    return InvariantViolation(
        invariant,
        detail,
        packet_id=chosen.packet_id,
        class_id=chosen.class_id,
        sim_time=now,
    )


# ----------------------------------------------------------------------
# WTP family: priority-order property (paper Eq 11, ties to the higher
# class)
# ----------------------------------------------------------------------
def make_wtp_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """WTP must serve the backlogged head with maximal w_i(t) * s_i."""
    sdps = scheduler.sdps
    top = len(sdps) - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        chosen_priority = (now - chosen.arrived_at) * sdps[ccid]
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            priority = (now - queue[0].arrived_at) * sdps[cid]
            if priority > chosen_priority or (
                priority == chosen_priority and cid > ccid
            ):
                raise _violation(
                    "wtp-priority-order",
                    f"served class {ccid} with priority "
                    f"{chosen_priority:.6g} but class {cid} held "
                    f"{priority:.6g} (ties go to the higher class)",
                    chosen,
                    now,
                )

    return check


def make_quantized_wtp_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """Quantized WTP: same rule with epoch-granular waiting times."""
    sdps = scheduler.sdps
    epoch = scheduler.epoch
    top = len(sdps) - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        now_epoch = int(now / epoch)
        chosen_priority = (
            now_epoch - int(chosen.arrived_at / epoch)
        ) * sdps[ccid]
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            priority = (
                now_epoch - int(queue[0].arrived_at / epoch)
            ) * sdps[cid]
            if priority > chosen_priority or (
                priority == chosen_priority and cid > ccid
            ):
                raise _violation(
                    "qwtp-priority-order",
                    f"served class {ccid} with quantized priority "
                    f"{chosen_priority:.6g} but class {cid} held "
                    f"{priority:.6g} (ties go to the higher class)",
                    chosen,
                    now,
                )

    return check


# ----------------------------------------------------------------------
# BPR: backlog-proportional rate allocation (paper Eqs 8-9)
# ----------------------------------------------------------------------
def make_bpr_check(
    scheduler: "Scheduler", relative_tolerance: float = 1e-9
) -> BoundDispatchCheck:
    """After a BPR selection, rates must satisfy r_i = s_i q_i R / sum.

    ``on_select`` recomputes the rates over the post-pop backlogs; this
    re-derives them from the same state and requires agreement within
    ``relative_tolerance`` (the scheduler and the reference perform the
    identical float operations, so real implementations match exactly).
    Also enforces Eq 9: the rates of backlogged classes sum to the link
    capacity R, i.e. BPR never leaves capacity unallocated.

    The backlog and rate lists are mutated in place by the scheduler, so
    capturing the references here reads live state with no per-dispatch
    attribute chasing.
    """
    capacity = scheduler.capacity
    backlog = scheduler.queues.bytes_backlog
    sdps = scheduler.sdps
    rates = scheduler._rates
    num_classes = len(sdps)
    tolerance = relative_tolerance * capacity

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        weight_sum = 0.0
        for cid in range(num_classes):
            weight_sum += sdps[cid] * backlog[cid]
        scale = capacity / weight_sum if weight_sum > 0.0 else 0.0
        total = 0.0
        for cid in range(num_classes):
            rate = rates[cid]
            want = sdps[cid] * backlog[cid] * scale
            if abs(rate - want) > tolerance or rate != rate:  # NaN-safe
                raise _violation(
                    "bpr-rate-allocation",
                    f"Eq 8 violated for class {cid}: rate {rate:.9g} but "
                    f"s_i q_i R / sum(s_j q_j) = {want:.9g} "
                    f"(backlog={backlog[cid]:.9g} bytes)",
                    chosen,
                    now,
                )
            total += rate
        if weight_sum > 0.0 and abs(total - capacity) > tolerance:
            raise _violation(
                "bpr-rate-allocation",
                f"Eq 9 violated: allocated rates sum to {total:.9g} "
                f"instead of the link capacity {capacity:.9g}",
                chosen,
                now,
            )

    return check


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def make_fcfs_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """FCFS must serve the globally oldest head (ties to higher class)."""
    top = scheduler.num_classes - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        arrived = chosen.arrived_at
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            other = queue[0].arrived_at
            if other < arrived or (other == arrived and cid > ccid):
                raise _violation(
                    "fcfs-order",
                    f"served class {ccid} (arrived {arrived:.6g}) but "
                    f"class {cid} held an older head "
                    f"(arrived {other:.6g})",
                    chosen,
                    now,
                )

    return check


def make_strict_priority_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """Strict priority must serve the highest backlogged class."""
    top = scheduler.num_classes - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        for cid in range(top, chosen.class_id, -1):
            if queues[cid]:
                raise _violation(
                    "strict-priority-order",
                    f"served class {chosen.class_id} while the higher "
                    f"class {cid} was backlogged",
                    chosen,
                    now,
                )

    return check


register_scheduler_check("wtp", make_wtp_check)
register_scheduler_check("qwtp", make_quantized_wtp_check)
register_scheduler_check("bpr", make_bpr_check)
register_scheduler_check("fcfs", make_fcfs_check)
register_scheduler_check("strict", make_strict_priority_check)
