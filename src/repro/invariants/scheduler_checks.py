"""Pluggable per-discipline dispatch invariants.

Each check is an *independent reference implementation* of one
scheduler's selection rule, deliberately written out again here instead
of calling into the scheduler: a bug in the production formula must not
silently validate itself.  Checks replicate the schedulers'
floating-point arithmetic operation for operation, so a correct
scheduler matches the reference *exactly* -- no tolerance is needed for
the priority comparisons -- while any deviation (inverted priorities,
wrong tie-break direction, stale state) raises
:class:`~repro.errors.InvariantViolation` at the first offending
dispatch.

The registry is keyed by the scheduler's ``name`` class attribute (the
same key :mod:`repro.schedulers.registry` uses), so subclasses that keep
the name are checked against the named discipline's contract, and new
disciplines can register their own check via
:func:`register_scheduler_check`.

Registered entries are *factories*: ``factory(scheduler)`` is called
once when a checker attaches and returns the bound per-dispatch check.
Binding at attach time lets a factory capture the scheduler's constant
state (SDPs, capacity, the in-place-mutated backlog and rate lists) in
closure locals, keeping the per-dispatch cost to the comparison itself.
The bound check runs immediately *after* ``select`` returned, against
the live post-pop queues::

    check(queues, now, chosen)

where ``queues[c]`` is class ``c``'s FIFO deque (``queues[c][0]`` its
head) and ``chosen`` is the packet the scheduler picked.  Only the
chosen packet's own queue changed since the decision, so a check
compares ``chosen`` against the heads of every *other* class -- the
argmax rule "chosen attains the maximum, ties to the higher class" is
equivalent to "no other class strictly beats chosen, and no equal class
sits above it", which needs no pre-pop snapshot.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections import deque

    from ..schedulers.base import Scheduler
    from ..sim.packet import Packet

__all__ = [
    "BoundDispatchCheck",
    "DispatchCheckFactory",
    "register_scheduler_check",
    "registered_scheduler_checks",
    "scheduler_check_for",
]

#: The bound per-dispatch check: ``check(queues, now, chosen)``.
BoundDispatchCheck = Callable[[Sequence["deque"], float, "Packet"], None]
#: What gets registered: binds a scheduler instance to its check.
DispatchCheckFactory = Callable[["Scheduler"], BoundDispatchCheck]

_REGISTRY: dict[str, DispatchCheckFactory] = {}


def register_scheduler_check(name: str, factory: DispatchCheckFactory) -> None:
    """Register (or replace) the dispatch-check factory for ``name``."""
    _REGISTRY[name] = factory


def registered_scheduler_checks() -> tuple[str, ...]:
    """Scheduler names with a registered dispatch check, sorted."""
    return tuple(sorted(_REGISTRY))


def scheduler_check_for(scheduler: "Scheduler") -> Optional[BoundDispatchCheck]:
    """The bound dispatch check for ``scheduler`` (by name), or ``None``."""
    factory = _REGISTRY.get(scheduler.name)
    return factory(scheduler) if factory is not None else None


def _violation(
    invariant: str, detail: str, chosen: "Packet", now: float
) -> InvariantViolation:
    return InvariantViolation(
        invariant,
        detail,
        packet_id=chosen.packet_id,
        class_id=chosen.class_id,
        sim_time=now,
    )


# ----------------------------------------------------------------------
# WTP family: priority-order property (paper Eq 11, ties to the higher
# class)
# ----------------------------------------------------------------------
def make_wtp_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """WTP must serve the backlogged head with maximal w_i(t) * s_i."""
    sdps = scheduler.sdps
    top = len(sdps) - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        chosen_priority = (now - chosen.arrived_at) * sdps[ccid]
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            priority = (now - queue[0].arrived_at) * sdps[cid]
            if priority > chosen_priority or (
                priority == chosen_priority and cid > ccid
            ):
                raise _violation(
                    "wtp-priority-order",
                    f"served class {ccid} with priority "
                    f"{chosen_priority:.6g} but class {cid} held "
                    f"{priority:.6g} (ties go to the higher class)",
                    chosen,
                    now,
                )

    return check


def make_quantized_wtp_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """Quantized WTP: same rule with epoch-granular waiting times."""
    sdps = scheduler.sdps
    epoch = scheduler.epoch
    top = len(sdps) - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        now_epoch = int(now / epoch)
        chosen_priority = (
            now_epoch - int(chosen.arrived_at / epoch)
        ) * sdps[ccid]
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            priority = (
                now_epoch - int(queue[0].arrived_at / epoch)
            ) * sdps[cid]
            if priority > chosen_priority or (
                priority == chosen_priority and cid > ccid
            ):
                raise _violation(
                    "qwtp-priority-order",
                    f"served class {ccid} with quantized priority "
                    f"{chosen_priority:.6g} but class {cid} held "
                    f"{priority:.6g} (ties go to the higher class)",
                    chosen,
                    now,
                )

    return check


# ----------------------------------------------------------------------
# BPR: backlog-proportional rate allocation (paper Eqs 8-9)
# ----------------------------------------------------------------------
def make_bpr_check(
    scheduler: "Scheduler", relative_tolerance: float = 1e-9
) -> BoundDispatchCheck:
    """After a BPR selection, rates must satisfy r_i = s_i q_i R / sum.

    ``on_select`` recomputes the rates over the post-pop backlogs; this
    re-derives them from the same state and requires agreement within
    ``relative_tolerance`` (the scheduler and the reference perform the
    identical float operations, so real implementations match exactly).
    Also enforces Eq 9: the rates of backlogged classes sum to the link
    capacity R, i.e. BPR never leaves capacity unallocated.

    The backlog and rate lists are mutated in place by the scheduler, so
    capturing the references here reads live state with no per-dispatch
    attribute chasing.
    """
    capacity = scheduler.capacity
    backlog = scheduler.queues.bytes_backlog
    sdps = scheduler.sdps
    rates = scheduler._rates
    num_classes = len(sdps)
    tolerance = relative_tolerance * capacity

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        weight_sum = 0.0
        for cid in range(num_classes):
            weight_sum += sdps[cid] * backlog[cid]
        scale = capacity / weight_sum if weight_sum > 0.0 else 0.0
        total = 0.0
        for cid in range(num_classes):
            rate = rates[cid]
            want = sdps[cid] * backlog[cid] * scale
            if abs(rate - want) > tolerance or rate != rate:  # NaN-safe
                raise _violation(
                    "bpr-rate-allocation",
                    f"Eq 8 violated for class {cid}: rate {rate:.9g} but "
                    f"s_i q_i R / sum(s_j q_j) = {want:.9g} "
                    f"(backlog={backlog[cid]:.9g} bytes)",
                    chosen,
                    now,
                )
            total += rate
        if weight_sum > 0.0 and abs(total - capacity) > tolerance:
            raise _violation(
                "bpr-rate-allocation",
                f"Eq 9 violated: allocated rates sum to {total:.9g} "
                f"instead of the link capacity {capacity:.9g}",
                chosen,
                now,
            )

    return check


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def make_fcfs_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """FCFS must serve the globally oldest head (ties to higher class)."""
    top = scheduler.num_classes - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        arrived = chosen.arrived_at
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            other = queue[0].arrived_at
            if other < arrived or (other == arrived and cid > ccid):
                raise _violation(
                    "fcfs-order",
                    f"served class {ccid} (arrived {arrived:.6g}) but "
                    f"class {cid} held an older head "
                    f"(arrived {other:.6g})",
                    chosen,
                    now,
                )

    return check


def make_strict_priority_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """Strict priority must serve the highest backlogged class."""
    top = scheduler.num_classes - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        for cid in range(top, chosen.class_id, -1):
            if queues[cid]:
                raise _violation(
                    "strict-priority-order",
                    f"served class {chosen.class_id} while the higher "
                    f"class {cid} was backlogged",
                    chosen,
                    now,
                )

    return check


# ----------------------------------------------------------------------
# PAD / HPD: normalized-average-delay metrics
# ----------------------------------------------------------------------
def make_pad_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """PAD must serve the class maximizing (S_i + w_i)/(n_i + 1) * s_i.

    The chosen class's decision-time metric is recovered *exactly* from
    the post-select state: ``on_select`` performed ``S += w`` and
    ``n += 1`` with the very same floats, so
    ``(S_pre + w) / (n_pre + 1) == S_post / n_post`` bit for bit.
    """
    sdps = scheduler.sdps
    sums = scheduler._delay_sums
    counts = scheduler._delay_counts
    top = len(sdps) - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        chosen_metric = sums[ccid] / counts[ccid] * sdps[ccid]
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            metric = (
                (sums[cid] + (now - queue[0].arrived_at))
                / (counts[cid] + 1)
                * sdps[cid]
            )
            if metric > chosen_metric or (
                metric == chosen_metric and cid > ccid
            ):
                raise _violation(
                    "pad-normalized-average-order",
                    f"served class {ccid} with metric "
                    f"{chosen_metric:.6g} but class {cid} held "
                    f"{metric:.6g} (ties go to the higher class)",
                    chosen,
                    now,
                )

    return check


def make_hpd_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """HPD: convex combination of WTP and PAD terms, shadow-normalized.

    The scheduler's running normalizers advance *inside* choose_class,
    before any check can observe them, so the reference carries its own
    shadow copies: seeded from the live values at attach time (between
    dispatches both equal the frozen scale the next decision will use)
    and advanced here with the same max-accumulation the scheduler
    performs -- the comparison stays exact, no tolerance.
    """
    sdps = scheduler.sdps
    sums = scheduler._delay_sums
    counts = scheduler._delay_counts
    g = scheduler.g
    top = len(sdps) - 1
    scales = [scheduler._wtp_scale, scheduler._pad_scale]

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        inv_w = 1.0 / scales[0]
        inv_a = 1.0 / scales[1]
        max_wtp = scales[0]
        max_pad = scales[1]
        chosen_wait = now - chosen.arrived_at
        chosen_wtp = sdps[ccid] * chosen_wait
        # Decision-time PAD term, recovered exactly (see make_pad_check).
        chosen_pad = sums[ccid] / counts[ccid] * sdps[ccid]
        if chosen_wtp > max_wtp:
            max_wtp = chosen_wtp
        if chosen_pad > max_pad:
            max_pad = chosen_pad
        chosen_metric = g * chosen_wtp * inv_w + (1.0 - g) * chosen_pad * inv_a
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            head_wait = now - queue[0].arrived_at
            wtp_term = sdps[cid] * head_wait
            pad_term = (
                (sums[cid] + head_wait) / (counts[cid] + 1) * sdps[cid]
            )
            if wtp_term > max_wtp:
                max_wtp = wtp_term
            if pad_term > max_pad:
                max_pad = pad_term
            metric = g * wtp_term * inv_w + (1.0 - g) * pad_term * inv_a
            if metric > chosen_metric or (
                metric == chosen_metric and cid > ccid
            ):
                raise _violation(
                    "hpd-hybrid-metric-order",
                    f"served class {ccid} with metric "
                    f"{chosen_metric:.6g} but class {cid} held "
                    f"{metric:.6g} (ties go to the higher class)",
                    chosen,
                    now,
                )
        scales[0] = max_wtp
        scales[1] = max_pad

    return check


# ----------------------------------------------------------------------
# Adaptive WTP: priority order under the feedback-controlled SDPs
# ----------------------------------------------------------------------
def make_adaptive_wtp_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """Adaptive WTP: WTP order under shadow-replicated effective SDPs.

    The controller mutates ``effective_sdps`` inside ``on_select`` --
    i.e. *between* the decision and this check at every adjustment
    boundary -- so the reference replicates the whole EWMA + geometric-
    mean controller on shadow state (seeded at attach time), validates
    each dispatch against the decision-time shadow SDPs, then steps the
    shadow and cross-checks it against the live controller exactly.
    """
    nominal = scheduler.nominal_sdps
    inv_deltas = tuple(scheduler._inv_deltas)
    gain = scheduler.gain
    period = scheduler.adjustment_period
    alpha = scheduler.ewma_alpha
    max_drift = scheduler.max_drift
    num_classes = scheduler.num_classes
    top = num_classes - 1
    esdps = list(scheduler.effective_sdps)
    ewma = list(scheduler._ewma_delay)
    counter = [scheduler._served_since_adjust]

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        chosen_priority = (now - chosen.arrived_at) * esdps[ccid]
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            priority = (now - queue[0].arrived_at) * esdps[cid]
            if priority > chosen_priority or (
                priority == chosen_priority and cid > ccid
            ):
                raise _violation(
                    "adaptive-wtp-priority-order",
                    f"served class {ccid} with priority "
                    f"{chosen_priority:.6g} but class {cid} held "
                    f"{priority:.6g} under the decision-time effective "
                    "SDPs (ties go to the higher class)",
                    chosen,
                    now,
                )
        # Shadow controller step (the reference re-derivation of
        # on_select), then an exact cross-check against the live state.
        delay = now - chosen.arrived_at
        previous = ewma[ccid]
        if math.isnan(previous):
            ewma[ccid] = delay
        else:
            ewma[ccid] = (1.0 - alpha) * previous + alpha * delay
        counter[0] += 1
        if counter[0] >= period:
            counter[0] = 0
            normalized = []
            held = False
            for cid in range(num_classes):
                d = ewma[cid]
                if math.isnan(d) or d <= 0.0:
                    held = True  # controller holds: not all observed
                    break
                normalized.append(d * inv_deltas[cid])
            if not held:
                log_mean = sum(math.log(m) for m in normalized) / len(
                    normalized
                )
                for cid, m in enumerate(normalized):
                    factor = math.exp(gain * (math.log(m) - log_mean))
                    proposed = esdps[cid] * factor
                    low = nominal[cid] / max_drift
                    high = nominal[cid] * max_drift
                    esdps[cid] = min(max(proposed, low), high)
        if esdps != scheduler.effective_sdps:
            raise _violation(
                "adaptive-wtp-controller",
                f"controller state diverged: effective SDPs "
                f"{scheduler.effective_sdps} but the reference "
                f"controller derives {esdps}",
                chosen,
                now,
            )

    return check


# ----------------------------------------------------------------------
# Capacity baselines: DRR rounds and SCFQ finish tags
# ----------------------------------------------------------------------
def make_drr_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """DRR: a full shadow round-robin reference predicts each dispatch.

    Deficits, the round cursor, and the active class are all mutated
    inside ``choose_class`` itself, so order cannot be verified from
    post-state alone: the reference replays the exact quantum
    arithmetic on shadow state (seeded at attach), demands the
    scheduler served the class the reference predicts, and cross-checks
    the shadow deficits against the live list exactly.
    """
    quanta = scheduler.quanta
    num_classes = scheduler.num_classes
    deficits = list(scheduler._deficits)
    cursor_active = [scheduler._round_cursor, scheduler._active]

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        csize = chosen.size
        predicted = -1
        active = cursor_active[1]
        if active is not None:
            # Pre-pop head of the active class: the chosen packet when
            # the active class was served, the live head otherwise.
            if active == ccid:
                hsize = csize
            elif queues[active]:
                hsize = queues[active][0].size
            else:
                hsize = None
            if hsize is not None and hsize <= deficits[active]:
                predicted = active
            else:
                if hsize is None:
                    deficits[active] = 0.0
                cursor_active[1] = None
        if predicted < 0:
            for _ in range(2 * num_classes * 64):
                cid = cursor_active[0]
                cursor_active[0] = (cursor_active[0] + 1) % num_classes
                if cid != ccid and not queues[cid]:
                    deficits[cid] = 0.0
                    continue
                deficits[cid] += quanta[cid]
                hsize = csize if cid == ccid else queues[cid][0].size
                if hsize <= deficits[cid]:
                    cursor_active[1] = cid
                    predicted = cid
                    break
            else:
                raise _violation(
                    "drr-round-order",
                    "reference round never reached a sendable class",
                    chosen,
                    now,
                )
        if predicted != ccid:
            raise _violation(
                "drr-round-order",
                f"served class {ccid} but the deficit round-robin "
                f"reference predicts class {predicted}",
                chosen,
                now,
            )
        deficits[ccid] -= csize  # on_select
        if deficits != scheduler._deficits:
            raise _violation(
                "drr-deficit-state",
                f"deficit counters diverged: live {scheduler._deficits} "
                f"vs reference {deficits}",
                chosen,
                now,
            )

    return check


def make_scfq_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """SCFQ must serve the backlogged head with the smallest finish tag.

    The chosen packet's tag was popped by ``on_select`` into
    ``_virtual_now`` (self-clocking), so it is read back from there;
    competitors' tags still sit in the live tag table.  When the system
    drained with this dispatch there were no competitors and the reset
    housekeeping wiped the tag -- nothing to verify.
    """
    tags = scheduler._finish_tags
    top = scheduler.num_classes - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        empty = True
        for queue in queues:
            if queue:
                empty = False
                break
        if empty:
            return
        chosen_tag = scheduler._virtual_now
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            tag = tags[queue[0].packet_id]
            if tag < chosen_tag or (tag == chosen_tag and cid > ccid):
                raise _violation(
                    "scfq-finish-tag-order",
                    f"served class {ccid} with finish tag "
                    f"{chosen_tag:.6g} but class {cid} held "
                    f"{tag:.6g} (ties go to the higher class)",
                    chosen,
                    now,
                )

    return check


def make_additive_check(scheduler: "Scheduler") -> BoundDispatchCheck:
    """Additive: serve the head maximizing w_i(t) + s_i (Eq 3)."""
    offsets = scheduler.offsets
    top = scheduler.num_classes - 1

    def check(queues: Sequence["deque"], now: float, chosen: "Packet") -> None:
        ccid = chosen.class_id
        chosen_priority = (now - chosen.arrived_at) + offsets[ccid]
        for cid in range(top, -1, -1):
            if cid == ccid:
                continue
            queue = queues[cid]
            if not queue:
                continue
            priority = (now - queue[0].arrived_at) + offsets[cid]
            if priority > chosen_priority or (
                priority == chosen_priority and cid > ccid
            ):
                raise _violation(
                    "additive-priority-order",
                    f"served class {ccid} with priority "
                    f"{chosen_priority:.6g} but class {cid} held "
                    f"{priority:.6g} (ties go to the higher class)",
                    chosen,
                    now,
                )

    return check


register_scheduler_check("wtp", make_wtp_check)
register_scheduler_check("qwtp", make_quantized_wtp_check)
register_scheduler_check("bpr", make_bpr_check)
register_scheduler_check("fcfs", make_fcfs_check)
register_scheduler_check("strict", make_strict_priority_check)
register_scheduler_check("pad", make_pad_check)
register_scheduler_check("hpd", make_hpd_check)
register_scheduler_check("adaptive-wtp", make_adaptive_wtp_check)
register_scheduler_check("drr", make_drr_check)
register_scheduler_check("scfq", make_scfq_check)
register_scheduler_check("additive", make_additive_check)
