"""The runtime invariant checker attached to one link.

See the package docstring for the invariant catalogue.  The checker
observes three points of the forwarding path by replacing bound methods
*on the checked instances only*:

* ``link.receive``       -- arrivals; work-conservation on enqueue and
  busy-period bookkeeping,
* ``scheduler.select``   -- dispatches; per-class FIFO order, causality,
  and the discipline-specific check from
  :mod:`~repro.invariants.scheduler_checks`,
* ``link._complete_service`` -- departures; transmission-time causality,
  packet-conservation accounting, and end-of-busy-period work
  conservation.

Because the hooks are per-instance attribute overrides, a link without
a checker runs byte-identical code: zero overhead when disabled.
Violations raise :class:`~repro.errors.InvariantViolation` immediately
(fail-fast at the first inconsistent event, with packet/class/time
attached); the checker keeps only O(num_classes) state, so checking a
million-packet run costs memory-independent constant space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import InvariantViolation, SimulationError
from .scheduler_checks import scheduler_check_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.link import Link

__all__ = ["InvariantChecker", "InvariantReport"]


@dataclass
class InvariantReport:
    """What one checked run verified (JSON-able via :meth:`to_dict`).

    The arrival/dispatch/departure totals are derived from the link's
    own counters in :meth:`InvariantChecker.finalize` (every one of
    those events passed its checks -- a failure would have raised), so
    the hot path never touches the report.
    """

    arrivals: int = 0
    dispatches: int = 0
    departures: int = 0
    busy_periods: int = 0
    #: Name of the discipline-specific check applied at each dispatch,
    #: or ``None`` when only the generic invariants were verified.
    scheduler_check: Optional[str] = None
    #: Relative Eq 5 residual measured post-run (set by the caller via
    #: :func:`~repro.invariants.verify_conservation_law`), if checked.
    conservation_residual: Optional[float] = None

    def to_dict(self) -> dict:
        """Plain-JSON form, stored in cached worker summaries."""
        return {
            "checked": True,
            "arrivals": self.arrivals,
            "dispatches": self.dispatches,
            "departures": self.departures,
            "busy_periods": self.busy_periods,
            "scheduler_check": self.scheduler_check,
            "conservation_residual": self.conservation_residual,
        }


class InvariantChecker:
    """Attach runtime invariant verification to one link.

    Parameters
    ----------
    link:
        The :class:`~repro.sim.link.Link` to verify.  Its scheduler is
        checked through the same attachment.
    tolerance:
        Relative tolerance for float accounting identities (busy-period
        work conservation, transmission times).  The checker replicates
        the kernel's arithmetic, so the default is tight.
    """

    def __init__(self, link: "Link", tolerance: float = 1e-9) -> None:
        self.link = link
        self.scheduler = link.scheduler
        self.tolerance = tolerance
        self._dispatch_check = scheduler_check_for(link.scheduler)
        self._attached = False
        self._originals: dict[str, object] = {}
        # Counter offsets so a checker can attach to a link that already
        # carried traffic.
        self._arrivals0 = link.arrivals
        self._departures0 = link.departures
        self._drops0 = link.drops
        self._period_bytes0 = link.bytes_sent
        self._busy_since_floor: float | None = None
        n = link.scheduler.num_classes
        self._last_dispatch_arrival = [-math.inf] * n
        self.report = InvariantReport(
            scheduler_check=(
                link.scheduler.name if self._dispatch_check is not None else None
            )
        )

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self) -> "InvariantChecker":
        """Install the hooks; returns ``self`` for chaining.

        The wrappers inline every hot-path comparison (locals captured
        once here) so a passing check costs a handful of attribute
        loads per event; only the *failing* paths call out to the cold
        ``_raise_*`` helpers.
        """
        if self._attached:
            raise SimulationError("invariant checker is already attached")
        link = self.link
        scheduler = self.scheduler
        if link.scheduler is not scheduler:
            raise SimulationError(
                "link scheduler changed since the checker was constructed"
            )
        # The busy-period drain kernel would bypass the per-event hooks
        # installed below, so force the link fully evented first.  The
        # drain's own entry check also detects instance overrides, but
        # detaching feeders here keeps every arrival a real calendar
        # event from the moment the checker attaches.
        suspend = getattr(link, "suspend_drain", None)
        if suspend is not None:
            suspend()
        # Chain-fused drains couple *downstream* links into an upstream
        # link's drain; a chain that walked through this link before
        # the hooks existed must revalidate (its member guards check
        # for exactly these instance overrides).  Dropping this link's
        # own cache is immediate; upstream caches fail their guards on
        # the next drain entry and rebuild as blocked.
        if hasattr(link, "_chain_cache"):
            link._chain_cache = None
        # The checker's wrappers (and its queue scans below) observe
        # packets while queued: any columnar (object-free) backlog left
        # by a drain is an observation boundary -- demote it to real
        # Packets in the deques before the first hooked event.
        if scheduler.queues.col_count:
            scheduler.queues.demote()
        # Attaching mid-busy-period: the bytes already sent this period
        # were never observed, so the end-of-period conservation check
        # must cover only the portion from the attach onward.  The
        # packet in flight counts its whole size in ``bytes_sent`` when
        # it completes, so the observed window opens at its service
        # start, not at the attach instant.
        self._period_bytes0 = link.bytes_sent
        self._busy_since_floor = None
        if link.busy:
            inflight = link._in_service
            self._busy_since_floor = (
                inflight.service_start if inflight is not None else link.sim.now
            )
        self._originals = {
            "receive": link.receive,
            "select": scheduler.select,
            "_complete_service": link._complete_service,
        }
        original_receive = link.receive
        original_select = scheduler.select
        original_complete = link._complete_service

        sim = link.sim
        queues = scheduler.queues
        queue_list = queues.queues
        capacity = link.capacity
        inv_capacity = 1.0 / capacity
        tolerance = self.tolerance
        report = self.report
        dispatch_check = self._dispatch_check
        last_dispatch_arrival = self._last_dispatch_arrival
        unbounded = link.buffer_packets is None
        arrivals0 = self._arrivals0
        departures0 = self._departures0
        drops0 = self._drops0

        def checked_receive(packet) -> None:
            was_busy = link.busy
            original_receive(packet)
            if not link.busy:
                # Work conservation, enqueue side: the server must
                # never sit idle with work queued.
                if queues.total_packets > 0 or link._in_service is not None:
                    self._raise_idle_with_backlog(packet)
            elif not was_busy:
                # A new busy period began with this arrival.
                self._period_bytes0 = link.bytes_sent
                self._busy_since_floor = None

        def checked_select(now: float):
            packet = original_select(now)
            cid = packet.class_id
            arrived = packet.arrived_at
            # Event causality: no dispatch before arrival; per-class
            # FIFO: dispatches leave each class in arrival order, and
            # the post-pop head must not be older than the dispatched
            # packet (a FIFO pop can only expose younger packets).
            if arrived > now:
                self._raise_dispatch_before_arrival(packet, now)
            if arrived < last_dispatch_arrival[cid]:
                self._raise_out_of_order_dispatch(packet, now)
            last_dispatch_arrival[cid] = arrived
            queue = queue_list[cid]
            if queue and queue[0].arrived_at < arrived:
                self._raise_non_head_dispatch(packet, queue[0], now)
            if dispatch_check is not None:
                dispatch_check(queue_list, now, packet)
            return packet

        def checked_complete(packet) -> None:
            now = sim.now
            expected = packet.service_start + packet.size * inv_capacity
            # Event causality: completions fire exactly one
            # transmission time after service start.
            if abs(now - expected) > tolerance * (
                expected if expected > 1.0 else 1.0
            ):
                self._raise_bad_completion_time(packet, now, expected)
            original_complete(packet)
            # Losslessness: arrivals = departures + drops + stored.  On
            # the default unbounded link drops must stay zero, so a
            # single identity covers both: a dropped packet is neither
            # stored nor departed and trips the comparison, and the cold
            # path re-derives which invariant actually broke.
            stored = queues.total_packets + (
                1 if link._in_service is not None else 0
            )
            if unbounded:
                if link.arrivals - arrivals0 != link.departures - departures0 + stored:
                    self._check_packet_conservation(sim_time=sim.now)
            elif (
                link.arrivals - arrivals0
                != link.departures - departures0 + (link.drops - drops0) + stored
            ):
                self._check_packet_conservation(sim_time=sim.now)
            if not link.busy:
                # Busy period ended: it must have transmitted exactly
                # capacity x duration bytes (work conservation).
                report.busy_periods += 1
                sent = link.bytes_sent - self._period_bytes0
                start = link._busy_since
                if self._busy_since_floor is not None:
                    # Period already in progress at attach: check the
                    # observed portion only.
                    start = self._busy_since_floor
                    self._busy_since_floor = None
                expected_bytes = (now - start) * capacity
                if abs(sent - expected_bytes) > tolerance * (
                    sent if sent > 1.0 else 1.0
                ):
                    self._raise_non_conserving_period(
                        packet, now, sent, expected_bytes
                    )

        link.receive = checked_receive
        scheduler.select = checked_select
        link._complete_service = checked_complete
        self._attached = True
        return self

    def detach(self) -> None:
        """Restore the original methods (no-op when not attached)."""
        if not self._attached:
            return
        # The originals are bound methods; deleting the instance
        # attribute would equally re-expose them, but restoring
        # explicitly keeps detach idempotent and obvious.
        self.link.receive = self._originals["receive"]
        self.scheduler.select = self._originals["select"]
        self.link._complete_service = self._originals["_complete_service"]
        self._originals = {}
        self._attached = False
        link = self.link
        if hasattr(link, "_chain_cache"):
            # While hooked, completions were scheduled by the evented
            # path, which does maintain _pending_key -- but clear it
            # anyway so a chain can never couple this link against a
            # key the checker era might have left stale; the link is
            # simply not coupled until it parks with a fresh mirror.
            link._chain_cache = None
            link._pending_key = None

    @property
    def attached(self) -> bool:
        return self._attached

    # ------------------------------------------------------------------
    # Cold paths: only reached when an invariant already failed
    # ------------------------------------------------------------------
    def _raise_idle_with_backlog(self, packet) -> None:
        raise InvariantViolation(
            "work-conservation",
            f"server idle with {self.link.backlog_packets} queued packet(s)",
            packet_id=packet.packet_id,
            class_id=packet.class_id,
            sim_time=self.link.sim.now,
        )

    def _raise_dispatch_before_arrival(self, packet, now: float) -> None:
        raise InvariantViolation(
            "event-causality",
            f"dispatched before arrival: arrived_at={packet.arrived_at} "
            f"> now={now}",
            packet_id=packet.packet_id,
            class_id=packet.class_id,
            sim_time=now,
        )

    def _raise_non_head_dispatch(self, packet, head, now: float) -> None:
        raise InvariantViolation(
            "class-fifo",
            "dispatched a packet that was not its class head: packet "
            f"{head.packet_id} (arrived {head.arrived_at:.6g}) is still "
            f"queued ahead of it",
            packet_id=packet.packet_id,
            class_id=packet.class_id,
            sim_time=now,
        )

    def _raise_out_of_order_dispatch(self, packet, now: float) -> None:
        raise InvariantViolation(
            "class-fifo",
            f"class {packet.class_id} dispatched out of arrival order: "
            f"{packet.arrived_at} after "
            f"{self._last_dispatch_arrival[packet.class_id]}",
            packet_id=packet.packet_id,
            class_id=packet.class_id,
            sim_time=now,
        )

    def _raise_bad_completion_time(
        self, packet, now: float, expected: float
    ) -> None:
        raise InvariantViolation(
            "event-causality",
            f"service completed at {now} but started at "
            f"{packet.service_start} with transmission time "
            f"{packet.size / self.link.capacity:.9g} "
            f"(expected completion {expected:.9g})",
            packet_id=packet.packet_id,
            class_id=packet.class_id,
            sim_time=now,
        )

    def _raise_non_conserving_period(
        self, packet, now: float, sent: float, expected: float
    ) -> None:
        raise InvariantViolation(
            "work-conservation",
            f"busy period of {now - self.link.busy_since:.9g} time units "
            f"transmitted {sent:.9g} bytes; a work-conserving server at "
            f"rate {self.link.capacity:.9g} transmits {expected:.9g}",
            packet_id=packet.packet_id,
            class_id=packet.class_id,
            sim_time=now,
        )

    def _check_packet_conservation(self, sim_time: float) -> None:
        """Arrivals = departures + drops + queued + in service."""
        link = self.link
        arrivals = link.arrivals - self._arrivals0
        departures = link.departures - self._departures0
        drops = link.drops - self._drops0
        stored = link.backlog_packets + (1 if link.in_service is not None else 0)
        if link.buffer_packets is None and drops:
            raise InvariantViolation(
                "losslessness",
                f"unbounded-buffer link dropped {drops} packet(s)",
                sim_time=sim_time,
            )
        if arrivals != departures + drops + stored:
            raise InvariantViolation(
                "losslessness",
                f"packet conservation broken: {arrivals} arrivals != "
                f"{departures} departures + {drops} drops + {stored} stored",
                sim_time=sim_time,
            )

    # ------------------------------------------------------------------
    # Post-run
    # ------------------------------------------------------------------
    def finalize(self) -> InvariantReport:
        """End-of-run audit; returns the report of what was verified.

        Re-verifies packet conservation and cross-checks the queue
        accounting (packet counts and byte backlogs against the actual
        queue contents -- an O(backlog) scan done once).
        """
        link = self.link
        report = self.report
        report.arrivals = link.arrivals - self._arrivals0
        report.departures = link.departures - self._departures0
        report.dispatches = report.departures + (
            1 if link.in_service is not None else 0
        )
        self._check_packet_conservation(sim_time=link.sim.now)
        queues = self.scheduler.queues
        actual_packets = sum(len(q) for q in queues.queues)
        if actual_packets != queues.total_packets:
            raise InvariantViolation(
                "losslessness",
                f"queue accounting broken: counter says "
                f"{queues.total_packets} packets, queues hold "
                f"{actual_packets}",
                sim_time=link.sim.now,
            )
        for cid, queue in enumerate(queues.queues):
            actual_bytes = sum(p.size for p in queue)
            recorded = queues.bytes_backlog[cid]
            if abs(recorded - actual_bytes) > max(1e-6, 1e-9 * actual_bytes):
                raise InvariantViolation(
                    "losslessness",
                    f"byte-backlog accounting broken for class {cid}: "
                    f"counter {recorded:.9g}, queue holds {actual_bytes:.9g}",
                    class_id=cid,
                    sim_time=link.sim.now,
                )
        return self.report
