"""Simulation output analysis: warm-up detection and batch means.

The paper cannot give confidence intervals for its Pareto runs (alpha =
1.9 has infinite variance) and says so; but the Poisson validation runs
in this library *can* and should be error-barred.  This module provides
the two standard tools:

* :func:`mser_warmup` -- the MSER-5 truncation heuristic (White 1997):
  pick the warm-up cut that minimizes the standard error of the
  remaining batched observations.
* :func:`batch_means` -- non-overlapping batch means with a normal-
  approximation confidence interval for a steady-state mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["BatchMeansResult", "batch_means", "mser_warmup"]


@dataclass(frozen=True)
class BatchMeansResult:
    """Steady-state mean estimate with a CI from batch means."""

    mean: float
    half_width: float
    num_batches: int
    batch_size: int

    @property
    def interval(self) -> tuple[float, float]:
        return (self.mean - self.half_width, self.mean + self.half_width)

    def contains(self, value: float) -> bool:
        low, high = self.interval
        return low <= value <= high


# 97.5% standard-normal quantile (95% two-sided CI); using the normal
# rather than Student-t keeps this dependency-free and is accurate for
# the >= 20 batches enforced below... relaxed to 10 with t-ish slack.
_Z_975 = 1.959964


def batch_means(
    samples: Sequence[float],
    num_batches: int = 20,
    confidence_z: float = _Z_975,
) -> BatchMeansResult:
    """Batch-means mean and CI half-width of a (stationary) sample path.

    Observations are split into ``num_batches`` equal, non-overlapping
    batches; the batch means are treated as approximately independent.
    Leftover observations (len % num_batches) are dropped from the end.
    """
    data = np.asarray(samples, dtype=float)
    if num_batches < 2:
        raise ConfigurationError("need at least 2 batches")
    if len(data) < 2 * num_batches:
        raise ConfigurationError(
            f"need >= {2 * num_batches} samples for {num_batches} batches"
        )
    batch_size = len(data) // num_batches
    trimmed = data[: batch_size * num_batches]
    means = trimmed.reshape(num_batches, batch_size).mean(axis=1)
    grand = float(means.mean())
    std_error = float(means.std(ddof=1)) / math.sqrt(num_batches)
    return BatchMeansResult(
        mean=grand,
        half_width=confidence_z * std_error,
        num_batches=num_batches,
        batch_size=batch_size,
    )


def mser_warmup(
    samples: Sequence[float], batch_size: int = 5
) -> int:
    """MSER truncation point: index before which samples are warm-up.

    Batches the series in groups of ``batch_size`` (MSER-5 by default)
    and returns the truncation index (a multiple of ``batch_size``)
    minimizing the marginal standard error of the retained batch means.
    Truncation is capped at half the series, per standard practice.
    """
    data = np.asarray(samples, dtype=float)
    if batch_size < 1:
        raise ConfigurationError("batch_size must be >= 1")
    num_batches = len(data) // batch_size
    if num_batches < 4:
        raise ConfigurationError(
            f"need >= {4 * batch_size} samples for MSER-{batch_size}"
        )
    means = data[: num_batches * batch_size].reshape(
        num_batches, batch_size
    ).mean(axis=1)
    best_index = 0
    best_score = math.inf
    max_cut = num_batches // 2
    for cut in range(max_cut + 1):
        retained = means[cut:]
        score = retained.var(ddof=0) / len(retained)
        if score < best_score:
            best_score = score
            best_index = cut
    return best_index * batch_size
