"""Terminal plotting -- dependency-free renderings of the figures.

The paper's figures are graphs; this environment is a terminal.  These
helpers render the regenerated series as unicode/ASCII so the figures
can be *seen*, not just tabulated: sparklines for time series, box rows
for the Figure 3 percentile summaries, and a scatter grid for the
microscopic views.  Used by the examples; available to any caller.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..errors import ConfigurationError

__all__ = ["sparkline", "box_row", "scatter", "bar_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], minimum: Optional[float] = None,
              maximum: Optional[float] = None) -> str:
    """One-line unicode sparkline; NaNs render as spaces."""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return " " * len(values)
    low = minimum if minimum is not None else min(finite)
    high = maximum if maximum is not None else max(finite)
    span = high - low
    chars = []
    for value in values:
        if math.isnan(value):
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_SPARK_LEVELS[0])
            continue
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[max(0, min(level, len(_SPARK_LEVELS) - 1))])
    return "".join(chars)


def box_row(
    p5: float, p25: float, median: float, p75: float, p95: float,
    low: float, high: float, width: int = 50,
) -> str:
    """One box-and-whisker line on a [low, high] axis (Figure 3 style).

    Rendering: ``-`` whiskers between p5..p95, ``=`` box between
    p25..p75, ``|`` at the median.
    """
    if width < 10:
        raise ConfigurationError("width must be >= 10")
    if high <= low:
        raise ConfigurationError("need high > low")

    def column(value: float) -> int:
        clamped = min(max(value, low), high)
        return int((clamped - low) / (high - low) * (width - 1))

    cells = [" "] * width
    for i in range(column(p5), column(p95) + 1):
        cells[i] = "-"
    for i in range(column(p25), column(p75) + 1):
        cells[i] = "="
    cells[column(median)] = "|"
    return "".join(cells)


def scatter(
    points: Sequence[tuple[float, float]],
    width: int = 70,
    height: int = 16,
    marker: str = "*",
) -> str:
    """Multi-line scatter plot of (x, y) points (microscopic views)."""
    if width < 2 or height < 2:
        raise ConfigurationError("width and height must be >= 2")
    if not points:
        return "(no points)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_low) / x_span * (width - 1))
        row = height - 1 - int((y - y_low) / y_span * (height - 1))
        grid[row][col] = marker
    lines = ["".join(row) for row in grid]
    lines.append(f"x: [{x_low:g}, {x_high:g}]  y: [{y_low:g}, {y_high:g}]")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    fill: str = "#",
) -> str:
    """Horizontal bar chart (Figure 2 style comparisons)."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    if not labels:
        return "(no bars)"
    peak = max(values)
    if peak <= 0:
        raise ConfigurationError("need at least one positive value")
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = fill * max(1, int(value / peak * width)) if value > 0 else ""
        lines.append(f"{label:>{label_width}} | {bar} {value:g}")
    return "\n".join(lines)
