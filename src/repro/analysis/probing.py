"""Active probing: estimate class delays the way a user would.

Section 6 frames evaluation from the user's side: inject your own
packets and look at what they experience.  :class:`ProbeInjector`
does this at a queueing point: one low-rate periodic probe stream per
class, tagged with reserved flow ids, whose measured delays estimate
the class delays *without access to the router's internal monitors*.
This is the practical tool behind the paper's "user experiments", and
the probe-vs-ground-truth comparison quantifies how well low-rate
active measurement tracks the true differentiation.

The probe load is real load; keep the probe period large relative to
the packet transmission time so the estimate does not perturb what it
measures (the default adds well under 1% load).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.link import Receiver
from ..sim.packet import Packet

__all__ = ["ProbeInjector"]

#: Flow-id namespace for probes (kept away from user flows).
PROBE_FLOW_BASE = 900_000_000


class ProbeInjector:
    """Periodic per-class probes plus a delay estimator over them."""

    def __init__(
        self,
        sim: Simulator,
        target: Receiver,
        num_classes: int,
        period: float,
        probe_size: float = 40.0,
        start_time: float = 0.0,
        stagger: Optional[float] = None,
    ) -> None:
        if num_classes < 1:
            raise ConfigurationError("num_classes must be >= 1")
        if period <= 0 or probe_size <= 0:
            raise ConfigurationError("period and probe_size must be positive")
        self.sim = sim
        self.target = target
        self.num_classes = num_classes
        self.period = period
        self.probe_size = probe_size
        self.start_time = start_time
        #: Offset between successive classes' probes (avoids aligned
        #: bursts of probes); defaults to an even spread over the period.
        self.stagger = (
            stagger if stagger is not None else period / num_classes
        )
        self._sent = 0
        #: Per class: list of probe queueing delays, appended by
        #: :meth:`on_departure` (attach the injector as a link monitor).
        self.probe_delays: list[list[float]] = [[] for _ in range(num_classes)]
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first probe of every class.  Idempotent."""
        if self._started:
            return
        self._started = True
        for class_id in range(self.num_classes):
            self.sim.schedule(
                self.start_time + self.period + class_id * self.stagger,
                self._emit,
                class_id,
            )

    def _emit(self, class_id: int) -> None:
        probe = Packet(
            packet_id=PROBE_FLOW_BASE + self._sent,
            class_id=class_id,
            size=self.probe_size,
            created_at=self.sim.now,
            flow_id=PROBE_FLOW_BASE + class_id,
        )
        self._sent += 1
        self.target.receive(probe)
        self.sim.schedule(self.sim.now + self.period, self._emit, class_id)

    # ------------------------------------------------------------------
    # Link-monitor interface: collect the probes' own delays.
    # ------------------------------------------------------------------
    def on_departure(self, packet: Packet, now: float) -> None:
        flow = packet.flow_id
        if flow is None or not (
            PROBE_FLOW_BASE <= flow < PROBE_FLOW_BASE + self.num_classes
        ):
            return
        self.probe_delays[flow - PROBE_FLOW_BASE].append(
            packet.service_start - packet.arrived_at
        )

    # ------------------------------------------------------------------
    def probes_sent(self) -> int:
        return self._sent

    def estimated_delays(self) -> list[float]:
        """Per-class mean probe delay (NaN for classes with no probes)."""
        return [
            sum(delays) / len(delays) if delays else math.nan
            for delays in self.probe_delays
        ]

    def estimated_ratios(self) -> list[float]:
        """Successive-class delay ratios as seen by the probes."""
        means = self.estimated_delays()
        out = []
        for a, b in zip(means, means[1:]):
            out.append(a / b if b and not math.isnan(b) else math.nan)
        return out

    def offered_probe_load(self) -> float:
        """Probe bytes per time unit added to the link."""
        return self.num_classes * self.probe_size / self.period
