"""Simulation output analysis (warm-up detection, batch-means CIs,
terminal plotting)."""

from .ascii_plot import bar_chart, box_row, scatter, sparkline
from .probing import ProbeInjector
from .stats import BatchMeansResult, batch_means, mser_warmup

__all__ = [
    "BatchMeansResult",
    "batch_means",
    "mser_warmup",
    "ProbeInjector",
    "bar_chart",
    "box_row",
    "scatter",
    "sparkline",
]
