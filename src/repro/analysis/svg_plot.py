"""Dependency-free SVG chart rendering.

The offline environment has no plotting stack, so this module draws the
paper's figure types directly as SVG: line charts with markers
(Figure 1), grouped bar charts (Figure 2), box-and-whisker plots
(Figure 3) and scatter plots (Figures 4-5).  The output is plain SVG
1.1 text viewable in any browser.

Only the chart shapes the reproduction needs are implemented; this is
not a general plotting library.  All drawing goes through
:class:`SvgCanvas`, which handles the coordinate mapping from data
space to pixel space (y grows upward in data space, downward in SVG).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence
from xml.sax.saxutils import escape

from ..errors import ConfigurationError

__all__ = ["SvgCanvas", "LineSeries", "line_chart", "box_chart",
           "scatter_chart", "grouped_bar_chart"]

#: Default colour cycle (colour-blind-safe-ish).
PALETTE = ("#0072b2", "#d55e00", "#009e73", "#cc79a7", "#f0e442", "#56b4e9")


@dataclass
class SvgCanvas:
    """Pixel canvas with a data-space viewport and margins."""

    width: int = 640
    height: int = 420
    margin_left: int = 64
    margin_right: int = 20
    margin_top: int = 36
    margin_bottom: int = 48
    x_min: float = 0.0
    x_max: float = 1.0
    y_min: float = 0.0
    y_max: float = 1.0
    _elements: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ConfigurationError("need x_max > x_min and y_max > y_min")
        if self.width <= self.margin_left + self.margin_right:
            raise ConfigurationError("width too small for margins")
        if self.height <= self.margin_top + self.margin_bottom:
            raise ConfigurationError("height too small for margins")

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def px(self, x: float) -> float:
        """Data x -> pixel x."""
        inner = self.width - self.margin_left - self.margin_right
        return self.margin_left + (x - self.x_min) / (
            self.x_max - self.x_min
        ) * inner

    def py(self, y: float) -> float:
        """Data y -> pixel y (flipped)."""
        inner = self.height - self.margin_top - self.margin_bottom
        return self.margin_top + (self.y_max - y) / (
            self.y_max - self.y_min
        ) * inner

    # ------------------------------------------------------------------
    # Primitives (data-space coordinates)
    # ------------------------------------------------------------------
    def line(self, x1, y1, x2, y2, color="#333", width=1.0, dash=None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{self.px(x1):.1f}" y1="{self.py(y1):.1f}" '
            f'x2="{self.px(x2):.1f}" y2="{self.py(y2):.1f}" '
            f'stroke="{color}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points, color="#0072b2", width=1.5) -> None:
        coords = " ".join(
            f"{self.px(x):.1f},{self.py(y):.1f}" for x, y in points
        )
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>'
        )

    def circle(self, x, y, radius=3.0, color="#0072b2", fill=True) -> None:
        fill_attr = color if fill else "none"
        self._elements.append(
            f'<circle cx="{self.px(x):.1f}" cy="{self.py(y):.1f}" '
            f'r="{radius}" fill="{fill_attr}" stroke="{color}"/>'
        )

    def rect(self, x1, y1, x2, y2, color="#0072b2", fill_opacity=0.5) -> None:
        left, right = min(self.px(x1), self.px(x2)), max(self.px(x1), self.px(x2))
        top, bottom = min(self.py(y1), self.py(y2)), max(self.py(y1), self.py(y2))
        self._elements.append(
            f'<rect x="{left:.1f}" y="{top:.1f}" width="{right - left:.1f}" '
            f'height="{bottom - top:.1f}" fill="{color}" '
            f'fill-opacity="{fill_opacity}" stroke="{color}"/>'
        )

    def text(self, x_px: float, y_px: float, content: str, size=12,
             anchor="middle", color="#222") -> None:
        """Text at *pixel* coordinates (labels live outside data space)."""
        self._elements.append(
            f'<text x="{x_px:.1f}" y="{y_px:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}" '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    # ------------------------------------------------------------------
    # Decorations
    # ------------------------------------------------------------------
    def axes(self, title="", x_label="", y_label="",
             x_ticks: Optional[Sequence[float]] = None,
             y_ticks: Optional[Sequence[float]] = None,
             x_tick_labels: Optional[Sequence[str]] = None) -> None:
        """Draw the frame, ticks and labels."""
        self.line(self.x_min, self.y_min, self.x_max, self.y_min)
        self.line(self.x_min, self.y_min, self.x_min, self.y_max)
        if title:
            self.text(self.width / 2, self.margin_top - 14, title, size=14)
        if x_label:
            self.text(self.width / 2, self.height - 10, x_label)
        if y_label:
            x_px, y_px = 16, self.height / 2
            self._elements.append(
                f'<text x="{x_px}" y="{y_px}" font-size="12" '
                f'text-anchor="middle" fill="#222" font-family="sans-serif" '
                f'transform="rotate(-90 {x_px} {y_px})">{escape(y_label)}</text>'
            )
        for i, tick in enumerate(x_ticks or ()):
            self.line(tick, self.y_min, tick,
                      self.y_min + 0.015 * (self.y_max - self.y_min))
            label = (
                x_tick_labels[i]
                if x_tick_labels is not None
                else f"{tick:g}"
            )
            self.text(self.px(tick), self.py(self.y_min) + 16, label, size=10)
        for tick in y_ticks or ():
            self.line(self.x_min, tick,
                      self.x_min + 0.01 * (self.x_max - self.x_min), tick)
            self.text(self.px(self.x_min) - 6, self.py(tick) + 4,
                      f"{tick:g}", size=10, anchor="end")

    def legend(self, entries: Sequence[tuple[str, str]]) -> None:
        """Top-right legend: (label, colour) pairs."""
        x_px = self.width - self.margin_right - 150
        y_px = self.margin_top + 6
        for i, (label, color) in enumerate(entries):
            y = y_px + i * 16
            self._elements.append(
                f'<rect x="{x_px}" y="{y - 9}" width="12" height="9" '
                f'fill="{color}"/>'
            )
            self.text(x_px + 18, y, label, size=11, anchor="start")

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Serialize the SVG document."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path


# ----------------------------------------------------------------------
# Chart builders
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LineSeries:
    """One named line with markers."""

    label: str
    points: tuple[tuple[float, float], ...]


def _padded_range(low: float, high: float, pad_fraction: float = 0.05) -> tuple[float, float]:
    """Expand a possibly-degenerate data range into a valid viewport."""
    if high > low:
        pad = (high - low) * pad_fraction
        return low - pad, high + pad
    # All points share one value: center a unit-ish window on it.
    pad = max(abs(low) * pad_fraction, 0.5)
    return low - pad, low + pad


def _nice_ticks(low: float, high: float, count: int = 5) -> list[float]:
    """Roughly ``count`` round-valued ticks covering [low, high]."""
    span = high - low
    if span <= 0:
        return [low]
    raw_step = span / count
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for factor in (1, 2, 2.5, 5, 10):
        step = factor * magnitude
        if span / step <= count:
            break
    first = math.ceil(low / step) * step
    ticks = []
    tick = first
    while tick <= high + 1e-9 * span:
        ticks.append(round(tick, 10))
        tick += step
    return ticks


def line_chart(
    series: Sequence[LineSeries],
    title: str,
    x_label: str,
    y_label: str,
    y_reference: Optional[float] = None,
) -> SvgCanvas:
    """Figure-1-style chart: one marker-line per series."""
    if not series or not any(s.points for s in series):
        raise ConfigurationError("need at least one non-empty series")
    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    if y_reference is not None:
        ys.append(y_reference)
    x_lo, x_hi = _padded_range(min(xs), max(xs))
    y_lo, y_hi = _padded_range(min(ys), max(ys), 0.1)
    canvas = SvgCanvas(
        x_min=x_lo, x_max=x_hi, y_min=min(y_lo, 0.0), y_max=y_hi,
    )
    canvas.axes(
        title=title, x_label=x_label, y_label=y_label,
        x_ticks=_nice_ticks(canvas.x_min, canvas.x_max),
        y_ticks=_nice_ticks(canvas.y_min, canvas.y_max),
    )
    if y_reference is not None:
        canvas.line(canvas.x_min, y_reference, canvas.x_max, y_reference,
                    color="#888", dash="6,4")
    for i, line in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        canvas.polyline(line.points, color=color)
        for x, y in line.points:
            canvas.circle(x, y, color=color)
    canvas.legend([
        (s.label, PALETTE[i % len(PALETTE)]) for i, s in enumerate(series)
    ])
    return canvas


def box_chart(
    boxes: Sequence[tuple[str, float, float, float, float, float]],
    title: str,
    y_label: str,
    y_reference: Optional[float] = None,
) -> SvgCanvas:
    """Figure-3-style chart: (label, p5, p25, median, p75, p95) per box."""
    if not boxes:
        raise ConfigurationError("need at least one box")
    ys = [v for box in boxes for v in box[1:]]
    if y_reference is not None:
        ys.append(y_reference)
    y_lo, y_hi = _padded_range(min(ys), max(ys), 0.1)
    canvas = SvgCanvas(
        x_min=0.0, x_max=float(len(boxes)), y_min=y_lo, y_max=y_hi,
    )
    centers = [i + 0.5 for i in range(len(boxes))]
    canvas.axes(
        title=title, y_label=y_label,
        x_ticks=centers,
        x_tick_labels=[box[0] for box in boxes],
        y_ticks=_nice_ticks(canvas.y_min, canvas.y_max),
    )
    if y_reference is not None:
        canvas.line(canvas.x_min, y_reference, canvas.x_max, y_reference,
                    color="#888", dash="6,4")
    half = 0.18
    for center, (_, p5, p25, median, p75, p95) in zip(centers, boxes):
        color = "#0072b2"
        canvas.line(center, p5, center, p95, color=color)       # whisker
        canvas.rect(center - half, p25, center + half, p75, color=color,
                    fill_opacity=0.35)
        canvas.line(center - half, median, center + half, median,
                    color="#d55e00", width=2.0)
    return canvas


def scatter_chart(
    groups: Sequence[tuple[str, Sequence[tuple[float, float]]]],
    title: str,
    x_label: str,
    y_label: str,
) -> SvgCanvas:
    """Figure-4/5-style chart: one point cloud per named group."""
    all_points = [p for _, pts in groups for p in pts]
    if not all_points:
        raise ConfigurationError("need at least one point")
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_lo, x_hi = _padded_range(min(xs), max(xs))
    y_lo, y_hi = _padded_range(min(ys), max(ys))
    canvas = SvgCanvas(x_min=x_lo, x_max=x_hi, y_min=y_lo, y_max=y_hi)
    canvas.axes(
        title=title, x_label=x_label, y_label=y_label,
        x_ticks=_nice_ticks(canvas.x_min, canvas.x_max, 4),
        y_ticks=_nice_ticks(canvas.y_min, canvas.y_max),
    )
    for i, (_, points) in enumerate(groups):
        color = PALETTE[i % len(PALETTE)]
        for x, y in points:
            canvas.circle(x, y, radius=1.6, color=color)
    canvas.legend([
        (label, PALETTE[i % len(PALETTE)]) for i, (label, _) in enumerate(groups)
    ])
    return canvas


def grouped_bar_chart(
    categories: Sequence[str],
    groups: Sequence[tuple[str, Sequence[float]]],
    title: str,
    y_label: str,
    y_reference: Optional[float] = None,
) -> SvgCanvas:
    """Figure-2-style chart: per category, one bar per group."""
    if not categories or not groups:
        raise ConfigurationError("need categories and groups")
    for label, values in groups:
        if len(values) != len(categories):
            raise ConfigurationError(f"group {label!r} length mismatch")
    ys = [v for _, values in groups for v in values]
    if y_reference is not None:
        ys.append(y_reference)
    canvas = SvgCanvas(
        x_min=0.0, x_max=float(len(categories)),
        y_min=0.0, y_max=max(ys) * 1.1,
    )
    centers = [i + 0.5 for i in range(len(categories))]
    canvas.axes(
        title=title, y_label=y_label,
        x_ticks=centers, x_tick_labels=list(categories),
        y_ticks=_nice_ticks(0.0, canvas.y_max),
    )
    if y_reference is not None:
        canvas.line(canvas.x_min, y_reference, canvas.x_max, y_reference,
                    color="#888", dash="6,4")
    group_count = len(groups)
    slot = 0.8 / group_count
    for gi, (_, values) in enumerate(groups):
        color = PALETTE[gi % len(PALETTE)]
        for ci, value in enumerate(values):
            left = ci + 0.1 + gi * slot
            canvas.rect(left, 0.0, left + slot * 0.9, value, color=color,
                        fill_opacity=0.7)
    canvas.legend([
        (label, PALETTE[i % len(PALETTE)]) for i, (label, _) in enumerate(groups)
    ])
    return canvas
