"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause while still letting programming errors (``TypeError``,
``KeyError``, ...) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "FeasibilityError",
    "TopologyError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid user-supplied configuration (DDPs, SDPs, loads, rates...)."""


class SimulationError(ReproError, RuntimeError):
    """The simulation kernel reached an inconsistent state."""


class SchedulingError(ReproError, RuntimeError):
    """A scheduler violated its contract (e.g. select on empty backlog)."""


class FeasibilityError(ReproError, ValueError):
    """A requested set of delay differentiation parameters is infeasible."""


class TopologyError(ReproError, ValueError):
    """Invalid network topology (unknown node, disconnected path...)."""
