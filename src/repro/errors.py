"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause while still letting programming errors (``TypeError``,
``KeyError``, ...) propagate unchanged.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "FeasibilityError",
    "TopologyError",
    "InvariantViolation",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid user-supplied configuration (DDPs, SDPs, loads, rates...)."""


class SimulationError(ReproError, RuntimeError):
    """The simulation kernel reached an inconsistent state."""


class SchedulingError(ReproError, RuntimeError):
    """A scheduler violated its contract (e.g. select on empty backlog)."""


class FeasibilityError(ReproError, ValueError):
    """A requested set of delay differentiation parameters is infeasible."""


class TopologyError(ReproError, ValueError):
    """Invalid network topology (unknown node, disconnected path...)."""


class InvariantViolation(ReproError, RuntimeError):
    """A runtime invariant check failed (see :mod:`repro.invariants`).

    Structured so test harnesses and operators can locate the offending
    event: ``invariant`` names the violated property, and the optional
    ``packet_id`` / ``class_id`` (0-based) / ``sim_time`` pin it to one
    packet and simulation instant.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        packet_id: Optional[int] = None,
        class_id: Optional[int] = None,
        sim_time: Optional[float] = None,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.packet_id = packet_id
        self.class_id = class_id
        self.sim_time = sim_time
        where = []
        if packet_id is not None:
            where.append(f"packet={packet_id}")
        if class_id is not None:
            where.append(f"class={class_id}")
        if sim_time is not None:
            where.append(f"t={sim_time:.6g}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"[{invariant}] {detail}{suffix}")
