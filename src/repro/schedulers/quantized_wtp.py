"""Quantized WTP: a constant-ish-time approximation -- extension.

Section 4.2 notes WTP's implementation costs at high speed: a priority
must be computed for every backlogged class per departure, and packets
must be timestamped on arrival.  Hardware schedulers avoid per-packet
arithmetic by quantizing priorities into a finite set of levels.  This
scheduler models that design point:

* time is divided into *aging epochs* of length ``epoch``;
* a head packet's priority is computed from its arrival epoch, not its
  exact timestamp:  p_i = (epoch_now - epoch_arrival) * s_i, i.e. the
  waiting time is known only to epoch granularity.

With ``epoch -> 0`` this is exactly WTP; with coarse epochs the
short-timescale differentiation degrades (ties become frequent and fall
back to static class order).  The ablation benchmark quantifies that
accuracy/cost trade-off, answering the paper's implementability remark
with numbers.
"""

from __future__ import annotations

from math import inf as _INF
from typing import Sequence

from ..errors import ConfigurationError
from .base import Scheduler, validate_sdps

__all__ = ["QuantizedWTPScheduler"]


class QuantizedWTPScheduler(Scheduler):
    """WTP with waiting times quantized to aging epochs."""

    name = "qwtp"

    def __init__(self, sdps: Sequence[float], epoch: float) -> None:
        self.sdps = validate_sdps(sdps)
        if epoch <= 0:
            raise ConfigurationError(f"epoch must be positive: {epoch}")
        self.epoch = float(epoch)
        super().__init__(len(self.sdps))

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_priority = -1.0
        heads = self.queues.head_arrivals
        sdps = self.sdps
        epoch = self.epoch
        inf = _INF
        now_epoch = int(now / epoch)
        # Incrementally-maintained head-arrival keys (same expression as
        # the per-packet form, so selections are bit-identical).  Unlike
        # WTP's branchless scan, empty classes need an explicit test:
        # ``int(inf)`` raises.
        for cid in range(self.num_classes - 1, -1, -1):
            arrived = heads[cid]
            if arrived == inf:
                continue
            waited_epochs = now_epoch - int(arrived / epoch)
            priority = waited_epochs * sdps[cid]
            if priority > best_priority:
                best_priority = priority
                best_class = cid
        return best_class
