"""Proportional Average Delay (PAD) scheduler -- extension.

The paper closes asking for the form of an "optimal proportional
differentiation scheduler" that tracks the model whenever it is
feasible.  The authors' follow-on work answered with PAD: serve the
backlogged class whose *measured* normalized average delay lags most
behind its target, i.e. the class maximizing

    m_i(t) = (S_i + w_i(t)) / (n_i + 1) * s_i

where S_i / n_i is the running sum/count of queueing delays of class-i
packets already served at this hop, w_i(t) is the current head packet's
waiting time, and s_i = 1 / delta_i is the inverse DDP.  Because it
feeds back long-run averages, PAD keeps the long-term ratios on target
across *all* loads (including moderate ones where WTP undershoots), at
the cost of worse short-timescale behaviour -- a trade-off exercised in
the ablation benchmarks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..sim.packet import Packet
from .base import Scheduler, validate_sdps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.hybrid import FluidSplitContext

__all__ = ["PADScheduler", "pad_fluid_map"]


class PADScheduler(Scheduler):
    """Serve the class with the largest normalized average delay."""

    name = "pad"

    def __init__(self, sdps: Sequence[float]) -> None:
        self.sdps = validate_sdps(sdps)
        super().__init__(len(self.sdps))
        self._delay_sums = [0.0] * self.num_classes
        self._delay_counts = [0] * self.num_classes

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_metric = float("-inf")
        queues = self.queues.queues
        sdps = self.sdps
        sums = self._delay_sums
        counts = self._delay_counts
        for cid in range(self.num_classes - 1, -1, -1):
            queue = queues[cid]
            if not queue:
                continue
            head_wait = now - queue[0].arrived_at
            metric = (sums[cid] + head_wait) / (counts[cid] + 1) * sdps[cid]
            if metric > best_metric:
                best_metric = metric
                best_class = cid
        return best_class

    def on_select(self, packet: Packet, now: float) -> None:
        cid = packet.class_id
        self._delay_sums[cid] += now - packet.arrived_at
        self._delay_counts[cid] += 1

    def normalized_average(self, class_id: int) -> float:
        """Measured s_i * d_i so far (NaN before any departure)."""
        count = self._delay_counts[class_id]
        if not count:
            return float("nan")
        return self._delay_sums[class_id] / count * self.sdps[class_id]


# ----------------------------------------------------------------------
# Fluid model (hybrid engine)
# ----------------------------------------------------------------------
def pad_fluid_map(ctx: "FluidSplitContext") -> list[float]:
    """Relative per-class delays of the PAD fluid model.

    PAD's whole feedback loop drives every class's normalized average
    delay ``s_i * d_i`` (Eq 2's normalized form of the Eq 3 target) to
    a common value -- that equalization *is* its selection rule -- so
    in a stationary fluid window the fixed point is exactly the
    proportional model: ``d_i`` proportional to ``1 / s_i``.  Unlike
    WTP this holds at moderate load too (PAD tracks long-run averages,
    not instantaneous waits), so the analytic map is trustworthy at the
    operating point itself -- not just as a cold start.  Packet-mode
    calibration samples, by contrast, are taken while PAD's running
    averages re-converge after each packet segment starts fresh, which
    biases them; the low ``calibration_weight`` below keeps the
    measured shape as a refinement rather than a replacement.
    """
    return [1.0 / s for s in ctx.sdps]


#: Shrink packet-measured splits hard toward the analytic fixed point
#: (see :func:`repro.sim.hybrid.fluid_split` for the blending rule).
pad_fluid_map.calibration_weight = 0.25  # type: ignore[attr-defined]
