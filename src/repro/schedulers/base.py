"""Scheduler interface.

A scheduler owns one FIFO per class (:class:`~repro.sim.queues.ClassQueueSet`)
and decides, whenever the output link becomes free, which class to serve
next.  Packets are never reordered within a class.

The contract with :class:`~repro.sim.link.Link`:

* ``enqueue(packet, now)`` -- a packet arrived at the queueing point.
* ``select(now)`` -- the link is idle and at least one packet is queued;
  pop and return the packet to transmit next.
* ``on_departure(packet, now)`` -- transmission of ``packet`` finished
  (hook used by schedulers that track service history, e.g. PAD/HPD).

Subclasses implement :meth:`choose_class`; ``select`` handles the pop and
bookkeeping.  ``num_classes`` follows the paper's convention: index 0 is
paper class 1, the *lowest* class (largest delay target).

Drain-kernel contract: the link's busy-period drain kernel
(:mod:`repro.sim.link`) calls ``enqueue``/``select``/``on_departure``
through exactly this interface, just from inside an inline loop rather
than one calendar event per call, with ``now`` equal to the event time
the evented path would have used.  A scheduler is therefore drain-safe
by construction as long as it derives all state from these calls and
its own counters -- none may read ``Simulator.now`` or the link
directly.  Schedulers wanting cheap selections can scan the
incrementally-maintained
:attr:`~repro.sim.queues.ClassQueueSet.head_arrivals` keys (WTP,
quantized WTP and FCFS do); any replacement expression must be
*bit-identical* to the per-packet form, since golden runs and the
drain-vs-event property tests pin exact float equality.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from ..errors import ConfigurationError, SchedulingError
from ..sim.packet import Packet
from ..sim.queues import ClassQueueSet

__all__ = ["Scheduler", "validate_sdps"]


def validate_sdps(sdps: Sequence[float]) -> tuple[float, ...]:
    """Validate scheduler differentiation parameters s1 < s2 < ... < sN.

    The paper orders SDPs strictly increasing with the class index
    (higher class => faster-growing priority / larger weight).  Returns
    the SDPs as an immutable tuple.
    """
    values = tuple(float(s) for s in sdps)
    if len(values) < 1:
        raise ConfigurationError("need at least one SDP")
    if any(s <= 0 for s in values):
        raise ConfigurationError(f"SDPs must be positive: {values}")
    if any(b <= a for a, b in zip(values, values[1:])):
        raise ConfigurationError(
            f"SDPs must be strictly increasing (s1 < ... < sN): {values}"
        )
    return values


class Scheduler(ABC):
    """Base class for all per-class packet schedulers."""

    #: Short machine-readable name, overridden by subclasses.
    name = "abstract"

    def __init__(self, num_classes: int) -> None:
        if num_classes < 1:
            raise ConfigurationError("num_classes must be >= 1")
        self.num_classes = num_classes
        self.queues = ClassQueueSet(num_classes)

    # ------------------------------------------------------------------
    # Link-facing API
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> None:
        """Accept an arriving packet into its class FIFO."""
        self.queues.push(packet)
        self.on_enqueue(packet, now)

    def select(self, now: float) -> Packet:
        """Pop and return the next packet to transmit."""
        queues = self.queues
        if not queues.total_packets:
            raise SchedulingError(f"{self.name}: select() with empty backlog")
        packet = queues.pop(self.choose_class(now))
        self.on_select(packet, now)
        return packet

    @property
    def backlogged(self) -> bool:
        """True when at least one packet is queued."""
        return self.queues.total_packets != 0

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def choose_class(self, now: float) -> int:
        """Return the index of the backlogged class to serve next."""

    def on_enqueue(self, packet: Packet, now: float) -> None:
        """Hook: called after ``packet`` joined its queue."""

    def on_select(self, packet: Packet, now: float) -> None:
        """Hook: called after ``packet`` was popped for service."""

    def on_departure(self, packet: Packet, now: float) -> None:
        """Hook: called when ``packet`` finishes transmission."""

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(num_classes={self.num_classes})"
