"""Deficit Round Robin over classes -- second capacity baseline.

DRR (Shreedhar & Varghese 1995) serves backlogged classes in rounds;
each round a class's *deficit counter* grows by its quantum and it may
send packets while the counter covers them.  Long-run bandwidth shares
are proportional to the quanta, making DRR -- like SCFQ -- a
"capacity differentiation" discipline in the paper's Section 2.1
taxonomy: controllable bandwidth, uncontrollable delay.  It is included
because it is the cheapest (O(1)) fair queueing variant a router would
actually deploy, so it is the practically-relevant capacity baseline
for the scheduler shoot-out ablation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError
from ..sim.packet import Packet
from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.hybrid import FluidSplitContext

__all__ = ["DRRScheduler", "drr_fluid_map"]


class DRRScheduler(Scheduler):
    """Deficit round robin with byte quanta proportional to weights."""

    name = "drr"

    def __init__(
        self, weights: Sequence[float], quantum_scale: float = 1500.0
    ) -> None:
        values = tuple(float(w) for w in weights)
        if not values:
            raise ConfigurationError("need at least one weight")
        if any(w <= 0 for w in values):
            raise ConfigurationError(f"weights must be positive: {values}")
        if quantum_scale <= 0:
            raise ConfigurationError(
                f"quantum_scale must be positive: {quantum_scale}"
            )
        self.weights = values
        super().__init__(len(values))
        # Quantum per round: scale the weights so the smallest class
        # still clears a maximum-size packet per round eventually.
        max_weight = max(values)
        self.quanta = tuple(w / max_weight * quantum_scale for w in values)
        self._deficits = [0.0] * self.num_classes
        self._round_cursor = 0
        #: Class currently holding the round (keeps its deficit while it
        #: still has coverable packets), or None between turns.
        self._active: int | None = None

    def choose_class(self, now: float) -> int:
        queues = self.queues
        # Continue the active class while its deficit covers its head.
        if self._active is not None:
            head = queues.head(self._active)
            if head is not None and head.size <= self._deficits[self._active]:
                return self._active
            if head is None:
                # Served queue emptied: per DRR, its deficit resets.
                self._deficits[self._active] = 0.0
            self._active = None
        # Advance the round until some backlogged class can send.
        for _ in range(2 * self.num_classes * 64):  # bounded by max size
            cid = self._round_cursor
            self._round_cursor = (self._round_cursor + 1) % self.num_classes
            head = queues.head(cid)
            if head is None:
                self._deficits[cid] = 0.0
                continue
            self._deficits[cid] += self.quanta[cid]
            if head.size <= self._deficits[cid]:
                self._active = cid
                return cid
        raise ConfigurationError(
            "DRR quantum too small for the offered packet sizes"
        )

    def on_select(self, packet: Packet, now: float) -> None:
        self._deficits[packet.class_id] -= packet.size


# ----------------------------------------------------------------------
# Fluid model (hybrid engine)
# ----------------------------------------------------------------------
def drr_fluid_map(ctx: "FluidSplitContext") -> list[float]:
    """Relative per-class delays of the DRR fluid model.

    DRR's byte quanta are proportional to the weights, so in the fluid
    limit its long-run shares coincide with GPS water-filling (Shreedhar
    & Varghese's rate guarantee, tightened by Mukherjee et al.): the
    round-robin granularity changes the delay *bound* by one round but
    not the rate each backlogged class sustains.  The split is therefore
    the same guaranteed-rate congestion model as SCFQ's
    (:func:`repro.schedulers.wfq.scfq_fluid_map`) -- calibration from
    packet samples absorbs the round-granularity offset once the
    spin-up has measured it.
    """
    from .wfq import scfq_fluid_map

    return scfq_fluid_map(ctx)
