"""Additive delay differentiation scheduler -- Section 2.1, Eq 3.

A priority scheduler whose head-of-line priority is

    p_i(t) = w_i(t) + s_i

with constant offsets 0 <= s_1 < s_2 < ... < s_N.  In heavy load it
tends to *additive* spacing between class average delays,

    d_i - d_j -> D_ij = s_j - s_i      (i < j),

the alternative relative-differentiation model the paper mentions as
deserving further study (citing [15, 16]).  Implemented here so the
additive-vs-proportional comparison can be run as an ablation.
"""

from __future__ import annotations

from math import inf
from typing import Sequence

from ..errors import ConfigurationError
from .base import Scheduler

__all__ = ["AdditiveDelayScheduler"]


class AdditiveDelayScheduler(Scheduler):
    """Head-of-line priority w_i(t) + s_i with constant class offsets."""

    name = "additive"

    def __init__(self, offsets: Sequence[float]) -> None:
        values = tuple(float(s) for s in offsets)
        if not values:
            raise ConfigurationError("need at least one offset")
        if any(s < 0 for s in values):
            raise ConfigurationError(f"offsets must be non-negative: {values}")
        if any(b <= a for a, b in zip(values, values[1:])):
            raise ConfigurationError(
                f"offsets must be strictly increasing: {values}"
            )
        self.offsets = values
        super().__init__(len(values))

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_priority = float("-inf")
        # Head waiting times come from the incrementally-maintained
        # head_arrivals timestamps (inf == empty class), never the
        # deques, so columnar (object-free) backlogs schedule
        # identically.
        heads = self.queues.head_arrivals
        offsets = self.offsets
        for cid in range(self.num_classes - 1, -1, -1):
            arrived = heads[cid]
            if arrived == inf:
                continue
            priority = (now - arrived) + offsets[cid]
            if priority > best_priority:
                best_priority = priority
                best_class = cid
        return best_class
