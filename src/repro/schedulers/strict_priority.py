"""Strict (static) priority scheduler -- Section 2.1's first alternative.

The highest backlogged class is always served first.  Differentiation is
predictable (higher classes never do worse) but *not controllable*:
there is no knob to set the quality spacing, and low classes can starve
under sustained high-class load.  Included as the baseline the
proportional model is defined against, and for the Cobham-formula
cross-checks in :mod:`repro.theory.priority`.
"""

from __future__ import annotations

from math import inf

from .base import Scheduler

__all__ = ["StrictPriorityScheduler"]


class StrictPriorityScheduler(Scheduler):
    """Always serve the highest backlogged class."""

    name = "strict"

    def choose_class(self, now: float) -> int:
        # Occupancy is read off head_arrivals (inf == empty) rather
        # than the deques: the columnar drain kernels keep packets out
        # of the deques entirely, but the head timestamps are always
        # maintained.
        heads = self.queues.head_arrivals
        for cid in range(self.num_classes - 1, -1, -1):
            if heads[cid] != inf:
                return cid
        return -1  # unreachable: select() guards against empty backlog
