"""Generated drain bodies for non-stock schedulers.

The chain-fused drain kernel (:mod:`repro.sim.link`) runs *stock*
schedulers -- those using the base-class ``enqueue``/``select``
wrappers with no hook overrides -- entirely on columnar state: no
``Packet`` objects, no wrapper calls, just a fused
choose/pop/bookkeeping loop inlined into the drain.  Schedulers that
*do* override hooks (BPR, PAD, HPD, adaptive WTP, DRR, SCFQ) were
stuck on the wrapper path, materializing every packet.

This module closes that gap with a small code generator.  For each
supported scheduler class it emits a specialized fused select body::

    gsel(now) -> (meta, cid, arrived_at, size)

composed of three source fragments:

* a *choose* fragment -- the scheduler's ``choose_class`` transcribed
  to read the hybrid deque+column FIFOs directly (head arrival times
  from the incrementally-maintained ``head_arrivals`` keys, head sizes
  from the deque head or the column cursor -- bit-identical floats to
  the attribute reads the wrapper path performs, since both are
  maintained from the same values);
* the shared *pop* fragment -- a verbatim transcription of
  ``ClassQueueSet.pop`` over the hybrid FIFO, minus the
  materialization (the whole point is that column entries stay
  unmaterialized until an observation boundary);
* an *on_select* fragment -- the scheduler's hook rewritten over the
  columnar scalars ``(cid, arr, size, meta)``.

Schedulers that tag packets at arrival (SCFQ) additionally get a
generated enqueue hook ``genq(cid, size, meta, now)``, called by the
drain kernels after every columnar push.

Codegen contract (see DESIGN.md)
--------------------------------
A generated body may only be handed to the drain kernel when

1. the scheduler's ``name`` has a registered invariant-checker oracle
   (:mod:`repro.invariants.scheduler_checks`) -- an independent
   reference implementation of its selection rule; and
2. the template has passed *class-level verification*: a seeded
   differential workload on fresh canonical instances, run twice --

   * an **object phase** where both the reference (wrapper
     ``enqueue``/``select``) and the generated body consume identical
     real-``Packet`` streams, every generated dispatch is compared
     field-for-field against the wrapper's and additionally validated
     by the registered oracle, and
   * a **columnar phase** where the generated side is fed raw column
     entries (``push_col`` + ``genq``) while the wrapper side consumes
     the equivalent objects, proving the column transcription of the
     choose fragment reads the same floats the object path would --

   followed by an exact final-state comparison (every scheduler
   attribute, queue counters included; no tolerances anywhere).

Verification runs once per scheduler *class* and is cached; a failure
permanently disables generation for that class (the drain kernel then
keeps the always-correct wrapper path) and is recorded in
:func:`generation_report` so the differential test harness can fail
loudly rather than silently losing the fast path.

Float-op fidelity notes (kept in sync with the scheduler sources):

* BPR: the empty-class scan must still zero ``_virtual`` entries, and
  ``_recompute_rates``'s weighted sum accumulates left-to-right.
* HPD: normalizers are frozen per selection and the maxima are written
  back *after* the scan.
* adaptive WTP: ``best_priority`` starts at ``-1.0`` (not ``-inf``),
  the EWMA NaN-init test is ``previous != previous``, and the
  controller step reuses the scheduler's own ``_adjust`` (same method,
  same floats).
* DRR: the real ``choose_class`` peeks heads via ``queues.head``,
  which *promotes* column entries into the deque; the generated body
  reads the head size in place instead -- a pure storage-layout
  difference, invisible to every observable (the promoted object would
  have carried exactly the floats the column holds).
* SCFQ: ``_last_class_finish`` is *rebound* by the empty-reset in
  ``on_select``, so generated code reaches it through the scheduler
  attribute each time; ``_finish_tags`` is only ever mutated in place
  and may be captured.
"""

from __future__ import annotations

import random
from math import inf
from typing import Any, Callable, Optional

from ..errors import ConfigurationError
from ..sim.packet import Packet
from ..sim.queues import _COL_COMPACT

__all__ = ["generated_drain_pair", "generation_report", "supported_classes"]


# ----------------------------------------------------------------------
# Source fragments
# ----------------------------------------------------------------------
#: Verbatim transcription of ``ClassQueueSet.pop`` (and of the stock
#: inline copy in ``repro.sim.link._chain_select``) over the hybrid
#: deque+column FIFO, minus materialization.  Binds ``cid`` (set by the
#: choose fragment) and leaves ``meta``/``arr``/``size`` for the
#: on_select fragment and the return.
_POP_SRC = """\
    queue = qlist[cid]
    if queue:
        nxt = queue.popleft()
        size = nxt.size
        if queue:
            backlog[cid] -= size
            heads[cid] = queue[0].arrived_at
        else:
            col = cols[cid]
            h = cheads[cid]
            if h < len(col):
                backlog[cid] -= size
                heads[cid] = col[h]
            else:
                backlog[cid] = 0.0
                heads[cid] = inf
        queues.total_packets -= 1
        meta = nxt
        arr = nxt.arrived_at
    else:
        col = cols[cid]
        h = cheads[cid]
        arr = col[h]
        size = col[h + 1]
        meta = col[h + 2]
        h += 3
        queues.col_count -= 1
        if h == len(col):
            col.clear()
            cheads[cid] = 0
            backlog[cid] = 0.0
            heads[cid] = inf
        else:
            if h >= _COL_COMPACT:
                del col[:h]
                h = 0
            cheads[cid] = h
            backlog[cid] -= size
            heads[cid] = col[h]
        queues.total_packets -= 1
"""

#: Extract the packet id from a columnar ``meta`` (int id, richer
#: tuple, or pre-materialized Packet) without materializing.
_PID_SRC = """\
    if type({src}) is int:
        pid = {src}
    elif type({src}) is Packet:
        pid = {src}.packet_id
    else:
        pid = {src}[0]
"""

_BPR_CHOOSE = """\
    last = S._last_decision
    cid = -1
    best_score = inf
    for c in range(n - 1, -1, -1):
        ha = heads[c]
        if ha == inf:
            virtual[c] = 0.0
            continue
        if last is None or ha > last:
            virtual[c] = 0.0
        else:
            virtual[c] += rates[c] * (now - last)
        q = qlist[c]
        if q:
            hsize = q[0].size
        else:
            hsize = cols[c][cheads[c] + 1]
        score = hsize - virtual[c]
        if score < best_score:
            best_score = score
            cid = c
"""

_BPR_ON_SELECT = """\
    virtual[cid] = max(0.0, virtual[cid] - size)
    weight_sum = 0.0
    for c in range(n):
        weight_sum += sdps[c] * backlog[c]
    if weight_sum <= 0.0:
        for c in range(n):
            rates[c] = 0.0
    else:
        scale = S.capacity / weight_sum
        for c in range(n):
            rates[c] = sdps[c] * backlog[c] * scale
    S._last_decision = now
"""

_PAD_CHOOSE = """\
    cid = -1
    best_metric = NEGINF
    for c in range(n - 1, -1, -1):
        ha = heads[c]
        if ha == inf:
            continue
        head_wait = now - ha
        metric = (sums[c] + head_wait) / (counts[c] + 1) * sdps[c]
        if metric > best_metric:
            best_metric = metric
            cid = c
"""

_PAD_ON_SELECT = """\
    sums[cid] += now - arr
    counts[cid] += 1
"""

_HPD_CHOOSE = """\
    cid = -1
    best_metric = NEGINF
    inv_w = 1.0 / S._wtp_scale
    inv_a = 1.0 / S._pad_scale
    max_wtp = S._wtp_scale
    max_pad = S._pad_scale
    for c in range(n - 1, -1, -1):
        ha = heads[c]
        if ha == inf:
            continue
        head_wait = now - ha
        wtp_term = sdps[c] * head_wait
        pad_term = (sums[c] + head_wait) / (counts[c] + 1) * sdps[c]
        if wtp_term > max_wtp:
            max_wtp = wtp_term
        if pad_term > max_pad:
            max_pad = pad_term
        metric = G * wtp_term * inv_w + (1.0 - G) * pad_term * inv_a
        if metric > best_metric:
            best_metric = metric
            cid = c
    S._wtp_scale = max_wtp
    S._pad_scale = max_pad
"""

_ADAPTIVE_CHOOSE = """\
    cid = -1
    best_priority = -1.0
    for c in range(n - 1, -1, -1):
        ha = heads[c]
        if ha == inf:
            continue
        priority = (now - ha) * esdps[c]
        if priority > best_priority:
            best_priority = priority
            cid = c
"""

_ADAPTIVE_ON_SELECT = """\
    delay = now - arr
    previous = ewma[cid]
    if previous != previous:
        ewma[cid] = delay
    else:
        ewma[cid] = (1.0 - ALPHA) * previous + ALPHA * delay
    served = S._served_since_adjust + 1
    if served >= PERIOD:
        S._served_since_adjust = 0
        S._adjust()
    else:
        S._served_since_adjust = served
"""

_DRR_CHOOSE = """\
    cid = -1
    active = S._active
    if active is not None:
        q = qlist[active]
        if q:
            hsize = q[0].size
        else:
            col = cols[active]
            h = cheads[active]
            hsize = col[h + 1] if h < len(col) else None
        if hsize is not None and hsize <= deficits[active]:
            cid = active
        else:
            if hsize is None:
                deficits[active] = 0.0
            S._active = None
    if cid < 0:
        for _ in range(BOUND):
            c = S._round_cursor
            S._round_cursor = (c + 1) % n
            q = qlist[c]
            if q:
                hsize = q[0].size
            else:
                col = cols[c]
                h = cheads[c]
                hsize = col[h + 1] if h < len(col) else None
            if hsize is None:
                deficits[c] = 0.0
                continue
            deficits[c] += quanta[c]
            if hsize <= deficits[c]:
                S._active = c
                cid = c
                break
        else:
            raise ConfigurationError(
                "DRR quantum too small for the offered packet sizes"
            )
"""

_DRR_ON_SELECT = """\
    deficits[cid] -= size
"""

_SCFQ_CHOOSE = """\
    cid = -1
    best_tag = inf
    for c in range(n - 1, -1, -1):
        q = qlist[c]
        if q:
            pid = q[0].packet_id
        else:
            col = cols[c]
            h = cheads[c]
            if h >= len(col):
                continue
            m = col[h + 2]
            if type(m) is int:
                pid = m
            elif type(m) is Packet:
                pid = m.packet_id
            else:
                pid = m[0]
        tag = tags[pid]
        if tag < best_tag:
            best_tag = tag
            cid = c
"""

_SCFQ_ON_SELECT = (
    _PID_SRC.format(src="meta")
    + """\
    S._virtual_now = tags.pop(pid)
    if queues.total_packets == 0:
        S._virtual_now = 0.0
        S._last_class_finish = [0.0] * n
"""
)

_SCFQ_GENQ = (
    "def genq(cid, size, meta, now):\n"
    + _PID_SRC.format(src="meta")
    + """\
    start = max(S._last_class_finish[cid], S._virtual_now)
    finish = start + size / weights[cid]
    tags[pid] = finish
    S._last_class_finish[cid] = finish
"""
)


def _gsel_source(choose_src: str, on_select_src: str) -> str:
    return (
        "def gsel(now):\n"
        + choose_src
        + _POP_SRC
        + on_select_src
        + "    return meta, cid, arr, size\n"
    )


# ----------------------------------------------------------------------
# Templates
# ----------------------------------------------------------------------
class _Template:
    """One scheduler class's generation recipe.

    ``extra_env(scheduler)`` supplies the per-instance closure bindings
    the fragments reference beyond the base queue-state names;
    ``canonical()`` builds a fresh instance for class verification;
    ``ready(scheduler)`` gates per-instance prerequisites (e.g. BPR's
    bound capacity).
    """

    __slots__ = ("gsel_src", "genq_src", "extra_env", "canonical", "ready")

    def __init__(
        self,
        gsel_src: str,
        genq_src: Optional[str],
        extra_env: Callable[[Any], dict],
        canonical: Callable[[], Any],
        ready: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.gsel_src = gsel_src
        self.genq_src = genq_src
        self.extra_env = extra_env
        self.canonical = canonical
        self.ready = ready

    def build(self, scheduler: Any):
        """Compile and bind (gsel, genq) for one live instance."""
        queues = scheduler.queues
        env = {
            "S": scheduler,
            "queues": queues,
            "qlist": queues.queues,
            "heads": queues.head_arrivals,
            "backlog": queues.bytes_backlog,
            "cols": queues.cols,
            "cheads": queues.col_heads,
            "n": scheduler.num_classes,
            "inf": inf,
            "NEGINF": -inf,
            "_COL_COMPACT": _COL_COMPACT,
            "Packet": Packet,
            "ConfigurationError": ConfigurationError,
            "__builtins__": {
                "range": range,
                "len": len,
                "type": type,
                "max": max,
                "int": int,
            },
        }
        env.update(self.extra_env(scheduler))
        namespace: dict = {}
        exec(compile(self.gsel_src, "<draingen:gsel>", "exec"), env, namespace)
        gsel = namespace["gsel"]
        genq = None
        if self.genq_src is not None:
            exec(
                compile(self.genq_src, "<draingen:genq>", "exec"),
                env,
                namespace,
            )
            genq = namespace["genq"]
        return gsel, genq


def _make_templates() -> dict:
    from .adaptive_wtp import AdaptiveWTPScheduler
    from .bpr import BPRScheduler
    from .drr import DRRScheduler
    from .hpd import HPDScheduler
    from .pad import PADScheduler
    from .wfq import SCFQScheduler

    sdps = (1.0, 2.0, 4.0, 8.0)
    return {
        BPRScheduler: _Template(
            _gsel_source(_BPR_CHOOSE, _BPR_ON_SELECT),
            None,
            lambda s: {
                "virtual": s._virtual,
                "rates": s._rates,
                "sdps": s.sdps,
            },
            lambda: BPRScheduler(sdps, capacity=3125.0),
            ready=lambda s: s.capacity is not None,
        ),
        PADScheduler: _Template(
            _gsel_source(_PAD_CHOOSE, _PAD_ON_SELECT),
            None,
            lambda s: {
                "sums": s._delay_sums,
                "counts": s._delay_counts,
                "sdps": s.sdps,
            },
            lambda: PADScheduler(sdps),
        ),
        HPDScheduler: _Template(
            _gsel_source(_HPD_CHOOSE, _PAD_ON_SELECT),
            None,
            lambda s: {
                "sums": s._delay_sums,
                "counts": s._delay_counts,
                "sdps": s.sdps,
                "G": s.g,
            },
            lambda: HPDScheduler(sdps),
        ),
        AdaptiveWTPScheduler: _Template(
            _gsel_source(_ADAPTIVE_CHOOSE, _ADAPTIVE_ON_SELECT),
            None,
            lambda s: {
                "esdps": s.effective_sdps,
                "ewma": s._ewma_delay,
                "ALPHA": s.ewma_alpha,
                "PERIOD": s.adjustment_period,
            },
            lambda: AdaptiveWTPScheduler(sdps),
        ),
        DRRScheduler: _Template(
            _gsel_source(_DRR_CHOOSE, _DRR_ON_SELECT),
            None,
            lambda s: {
                "deficits": s._deficits,
                "quanta": s.quanta,
                "BOUND": 2 * s.num_classes * 64,
            },
            lambda: DRRScheduler(sdps),
        ),
        SCFQScheduler: _Template(
            _gsel_source(_SCFQ_CHOOSE, _SCFQ_ON_SELECT),
            _SCFQ_GENQ,
            lambda s: {
                "tags": s._finish_tags,
                "weights": s.weights,
            },
            lambda: SCFQScheduler(sdps),
        ),
    }


_TEMPLATES: Optional[dict] = None
#: Per-class verification verdict: True (proven), or the failure text.
_VERDICTS: dict[type, Any] = {}


def _templates() -> dict:
    global _TEMPLATES
    if _TEMPLATES is None:
        _TEMPLATES = _make_templates()
    return _TEMPLATES


def supported_classes() -> tuple[type, ...]:
    """Scheduler classes with a generation template."""
    return tuple(_templates())


# ----------------------------------------------------------------------
# Class-level verification (the codegen contract's "oracle-verified
# before first use")
# ----------------------------------------------------------------------
class _GenerationMismatch(RuntimeError):
    pass


def _expect(cond: bool, detail: str) -> None:
    if not cond:
        raise _GenerationMismatch(detail)


def _meta_pid(meta) -> int:
    if type(meta) is int:
        return meta
    if type(meta) is Packet:
        return meta.packet_id
    return meta[0]


def _freeze(value):
    """Hashable, NaN-stable snapshot of one scheduler attribute."""
    if isinstance(value, float) and value != value:
        return "NaN"
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


def _state_of(scheduler: Any) -> dict:
    state = {
        key: _freeze(value)
        for key, value in scheduler.__dict__.items()
        if key not in ("queues", "_draingen_pair")
    }
    queues = scheduler.queues
    state["@total_packets"] = queues.total_packets
    state["@bytes_backlog"] = tuple(queues.bytes_backlog)
    state["@head_arrivals"] = tuple(queues.head_arrivals)
    return state


def _compare_dispatch(ref_packet: Packet, gen, now: float) -> None:
    meta, cid, arr, size = gen
    _expect(
        ref_packet.class_id == cid
        and ref_packet.packet_id == _meta_pid(meta)
        and ref_packet.arrived_at == arr
        and ref_packet.size == size,
        f"dispatch mismatch at t={now!r}: wrapper served "
        f"(cid={ref_packet.class_id}, pid={ref_packet.packet_id}, "
        f"arr={ref_packet.arrived_at!r}, size={ref_packet.size!r}) "
        f"but generated body served (cid={cid}, pid={_meta_pid(meta)}, "
        f"arr={arr!r}, size={size!r})",
    )


_SIZES = (250.0, 500.0, 1000.0, 1500.0)


def _run_differential(template: _Template, columnar: bool) -> None:
    """One verification phase: wrapper reference vs generated body.

    ``columnar=False`` feeds both sides identical real Packets (the
    generated dispatches additionally run through the scheduler's
    registered oracle, which reads object deques); ``columnar=True``
    feeds the generated side raw column entries instead, proving the
    column transcription.
    """
    from ..invariants.scheduler_checks import scheduler_check_for

    ref = template.canonical()
    gen = template.canonical()
    oracle = None if columnar else scheduler_check_for(gen)
    _expect(
        columnar or oracle is not None,
        f"no registered oracle for {type(ref).__name__} "
        f"(name={ref.name!r}); refusing to verify without one",
    )
    gsel, genq = template.build(gen)

    rng = random.Random(0xD1FF * (2 if columnar else 1))
    now = 0.0
    next_pid = 0
    num_classes = ref.num_classes

    def arrive() -> None:
        nonlocal now, next_pid
        now += rng.random() * 0.5
        cid = rng.randrange(num_classes)
        size = _SIZES[rng.randrange(len(_SIZES))]
        ref.enqueue(Packet(next_pid, cid, size, now), now)
        if columnar:
            gen.queues.push_col(cid, now, size, next_pid)
            if genq is not None:
                genq(cid, size, next_pid, now)
        else:
            gen.enqueue(Packet(next_pid, cid, size, now), now)
        next_pid += 1

    def serve() -> None:
        nonlocal now
        now += rng.random() * 2.0
        ref_packet = ref.select(now)
        dispatched = gsel(now)
        _compare_dispatch(ref_packet, dispatched, now)
        if oracle is not None:
            oracle(gen.queues.queues, now, dispatched[0])

    for _ in range(1600):
        if ref.queues.total_packets and rng.random() < 0.55:
            serve()
        else:
            arrive()
    while ref.queues.total_packets:
        serve()

    ref_state = _state_of(ref)
    gen_state = _state_of(gen)
    _expect(
        ref_state == gen_state,
        "final state mismatch after "
        f"{'columnar' if columnar else 'object'} phase: "
        + "; ".join(
            f"{key}: wrapper={ref_state.get(key)!r} "
            f"generated={gen_state.get(key)!r}"
            for key in sorted(set(ref_state) | set(gen_state))
            if ref_state.get(key) != gen_state.get(key)
        ),
    )


def _verify_class(cls: type, template: _Template) -> Any:
    """True when the template survives both phases, else failure text."""
    try:
        _run_differential(template, columnar=False)
        _run_differential(template, columnar=True)
    except Exception as exc:  # noqa: BLE001 - verdict, not control flow
        return f"{type(exc).__name__}: {exc}"
    return True


def generation_report() -> dict[str, Any]:
    """Verification verdict per supported scheduler class name.

    Forces verification of every template (normally it runs lazily on
    first use).  Values are ``True`` or the failure description; the
    differential harness asserts they are all ``True`` so a codegen
    regression fails CI instead of silently reverting schedulers to
    the wrapper path.
    """
    report = {}
    for cls, template in _templates().items():
        verdict = _VERDICTS.get(cls)
        if verdict is None:
            verdict = _verify_class(cls, template)
            _VERDICTS[cls] = verdict
        report[cls.__name__] = verdict
    return report


def generated_drain_pair(scheduler: Any):
    """``(gsel, genq)`` bound to ``scheduler``, or ``None``.

    Returns ``None`` -- leaving the drain kernel on the always-correct
    wrapper path -- when the scheduler's exact class has no template,
    its ``name`` has no registered oracle, a per-instance prerequisite
    is missing (unbound BPR capacity), or class verification failed.
    The bound pair is cached on the instance; verification is cached
    per class.
    """
    cls = type(scheduler)
    template = _templates().get(cls)
    if template is None:
        return None
    cached = scheduler.__dict__.get("_draingen_pair")
    if cached is not None:
        return cached
    if template.ready is not None and not template.ready(scheduler):
        return None
    from ..invariants.scheduler_checks import registered_scheduler_checks

    if scheduler.name not in registered_scheduler_checks():
        return None
    verdict = _VERDICTS.get(cls)
    if verdict is None:
        verdict = _verify_class(cls, template)
        _VERDICTS[cls] = verdict
    if verdict is not True:
        return None
    pair = template.build(scheduler)
    scheduler._draingen_pair = pair
    return pair
