"""First-Come-First-Served scheduler.

No differentiation: the oldest head-of-line packet across all classes is
served next, which is exactly a single shared FIFO.  FCFS is the
reference server in the paper's theory: the conservation law (Eq 5)
compares every discipline against the FCFS aggregate delay d(lambda),
and the feasibility conditions (Eq 7) are stated in terms of FCFS delays
of class subsets.
"""

from __future__ import annotations

from math import inf

from .base import Scheduler

__all__ = ["FCFSScheduler"]


class FCFSScheduler(Scheduler):
    """Serve the globally oldest packet (ties to the higher class)."""

    name = "fcfs"

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_arrival = inf
        # Incrementally-maintained head-arrival keys: an empty class is
        # ``+inf`` and loses the strict comparison automatically.
        heads = self.queues.head_arrivals
        for cid in range(self.num_classes - 1, -1, -1):
            arrived = heads[cid]
            if arrived < best_arrival:
                best_arrival = arrived
                best_class = cid
        return best_class
