"""Packet schedulers: the paper's WTP and BPR plus baselines/extensions."""

from .adaptive_wtp import AdaptiveWTPScheduler
from .additive import AdditiveDelayScheduler
from .base import Scheduler, validate_sdps
from .drr import DRRScheduler
from .bpr import (
    BPRScheduler,
    FluidBPRTracker,
    fluid_backlogs,
    fluid_clearing_time,
)
from .fcfs import FCFSScheduler
from .hpd import HPDScheduler
from .pad import PADScheduler
from .quantized_wtp import QuantizedWTPScheduler
from .registry import available_schedulers, make_scheduler
from .strict_priority import StrictPriorityScheduler
from .wfq import SCFQScheduler, WFQScheduler
from .wtp import WTPScheduler

__all__ = [
    "Scheduler",
    "validate_sdps",
    "AdaptiveWTPScheduler",
    "DRRScheduler",
    "WTPScheduler",
    "BPRScheduler",
    "FluidBPRTracker",
    "fluid_backlogs",
    "fluid_clearing_time",
    "FCFSScheduler",
    "StrictPriorityScheduler",
    "SCFQScheduler",
    "WFQScheduler",
    "AdditiveDelayScheduler",
    "PADScheduler",
    "QuantizedWTPScheduler",
    "HPDScheduler",
    "make_scheduler",
    "available_schedulers",
]
