"""Adaptive WTP: feedback-controlled SDPs -- extension.

Plain WTP only *tends to* the proportional model as rho -> 1; at
moderate load the paper measures ratios of ~1.5 against a target of 2
(Figure 1).  Section 7 asks what an "optimal proportional
differentiation scheduler" would look like; one practical answer from
the follow-on literature is to close the loop: keep WTP's head-of-line
rule (its short-timescale behaviour is the best of the lot) but *adapt*
the effective SDPs so the measured long-run ratios land on target.

Controller: every ``adjustment_period`` served packets, compare each
class's measured normalized delay m_i = d_i / delta_i to the across-
class geometric mean m*.  Classes lagging their target (m_i > m*) get
their effective SDP raised multiplicatively, classes ahead get it
lowered:

    s_i  <-  s_i * (m_i / m*) ** gain,

clamped to ``max_drift`` around the nominal SDPs so a pathological
interval cannot destabilize the ordering.  With gain = 0 this is
exactly WTP.  Measured delays use an exponentially-weighted average so
the controller tracks load changes.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ConfigurationError
from ..sim.packet import Packet
from .base import Scheduler, validate_sdps

__all__ = ["AdaptiveWTPScheduler"]


class AdaptiveWTPScheduler(Scheduler):
    """WTP with multiplicative SDP feedback toward the DDP targets."""

    name = "adaptive-wtp"

    def __init__(
        self,
        sdps: Sequence[float],
        gain: float = 0.4,
        adjustment_period: int = 200,
        ewma_alpha: float = 0.02,
        max_drift: float = 8.0,
    ) -> None:
        self.nominal_sdps = validate_sdps(sdps)
        if not 0.0 <= gain <= 1.0:
            raise ConfigurationError(f"gain must be in [0, 1]: {gain}")
        if adjustment_period < 1:
            raise ConfigurationError("adjustment_period must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError(f"ewma_alpha must be in (0, 1]: {ewma_alpha}")
        if max_drift < 1.0:
            raise ConfigurationError(f"max_drift must be >= 1: {max_drift}")
        super().__init__(len(self.nominal_sdps))
        self.gain = float(gain)
        self.adjustment_period = int(adjustment_period)
        self.ewma_alpha = float(ewma_alpha)
        self.max_drift = float(max_drift)
        self.effective_sdps = list(self.nominal_sdps)
        # Targets: delta_i proportional to 1 / s_i (Eq 13).
        self._inv_deltas = list(self.nominal_sdps)
        self._ewma_delay = [math.nan] * self.num_classes
        self._served_since_adjust = 0

    # ------------------------------------------------------------------
    def choose_class(self, now: float) -> int:
        best_class = -1
        best_priority = -1.0
        queues = self.queues.queues
        sdps = self.effective_sdps
        for cid in range(self.num_classes - 1, -1, -1):
            queue = queues[cid]
            if not queue:
                continue
            priority = (now - queue[0].arrived_at) * sdps[cid]
            if priority > best_priority:
                best_priority = priority
                best_class = cid
        return best_class

    def on_select(self, packet: Packet, now: float) -> None:
        cid = packet.class_id
        delay = now - packet.arrived_at
        previous = self._ewma_delay[cid]
        if math.isnan(previous):
            self._ewma_delay[cid] = delay
        else:
            alpha = self.ewma_alpha
            self._ewma_delay[cid] = (1.0 - alpha) * previous + alpha * delay
        self._served_since_adjust += 1
        if self._served_since_adjust >= self.adjustment_period:
            self._served_since_adjust = 0
            self._adjust()

    # ------------------------------------------------------------------
    def _adjust(self) -> None:
        """One controller step (see module docstring)."""
        normalized = []
        for cid in range(self.num_classes):
            delay = self._ewma_delay[cid]
            if math.isnan(delay) or delay <= 0.0:
                return  # not every class observed yet: hold
            normalized.append(delay * self._inv_deltas[cid])
        log_mean = sum(math.log(m) for m in normalized) / len(normalized)
        for cid, m in enumerate(normalized):
            factor = math.exp(self.gain * (math.log(m) - log_mean))
            proposed = self.effective_sdps[cid] * factor
            nominal = self.nominal_sdps[cid]
            low, high = nominal / self.max_drift, nominal * self.max_drift
            self.effective_sdps[cid] = min(max(proposed, low), high)

    def drift(self, class_id: int) -> float:
        """Effective / nominal SDP ratio (1.0 = no adaptation yet)."""
        return self.effective_sdps[class_id] / self.nominal_sdps[class_id]
