"""Hybrid Proportional Delay (HPD) scheduler -- extension.

Combines the two feedback signals of WTP (instantaneous head waiting
time: good short-timescale behaviour, inaccurate long-run ratios in
moderate load) and PAD (long-run normalized averages: exact long-run
ratios, noisy short-timescale behaviour).  The head-of-line metric is

    m_i(t) = g * s_i * w_i(t) / W  +  (1 - g) * a_i(t) / A

with w_i the head waiting time, a_i the PAD normalized-average metric,
and W, A running normalizers (the maxima seen so far) that put the two
terms on comparable scales.  g = 1 degenerates to WTP, g = 0 to PAD; the
authors' follow-on work found g around 0.875 a good compromise, which is
the default here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError
from ..sim.packet import Packet
from .base import Scheduler, validate_sdps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.hybrid import FluidSplitContext

__all__ = ["HPDScheduler", "hpd_fluid_map"]


class HPDScheduler(Scheduler):
    """Convex combination of the WTP and PAD head-of-line metrics."""

    name = "hpd"

    def __init__(self, sdps: Sequence[float], g: float = 0.875) -> None:
        if not 0.0 <= g <= 1.0:
            raise ConfigurationError(f"g must be in [0, 1]: {g}")
        self.sdps = validate_sdps(sdps)
        self.g = float(g)
        super().__init__(len(self.sdps))
        self._delay_sums = [0.0] * self.num_classes
        self._delay_counts = [0] * self.num_classes
        self._wtp_scale = 1.0
        self._pad_scale = 1.0

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_metric = float("-inf")
        queues = self.queues.queues
        sdps = self.sdps
        sums = self._delay_sums
        counts = self._delay_counts
        g = self.g
        # Normalizers are frozen for the duration of one selection so
        # every candidate is scored on the same scale; they are updated
        # from this round's observations afterwards.
        inv_w = 1.0 / self._wtp_scale
        inv_a = 1.0 / self._pad_scale
        max_wtp = self._wtp_scale
        max_pad = self._pad_scale
        for cid in range(self.num_classes - 1, -1, -1):
            queue = queues[cid]
            if not queue:
                continue
            head_wait = now - queue[0].arrived_at
            wtp_term = sdps[cid] * head_wait
            pad_term = (sums[cid] + head_wait) / (counts[cid] + 1) * sdps[cid]
            if wtp_term > max_wtp:
                max_wtp = wtp_term
            if pad_term > max_pad:
                max_pad = pad_term
            metric = g * wtp_term * inv_w + (1.0 - g) * pad_term * inv_a
            if metric > best_metric:
                best_metric = metric
                best_class = cid
        self._wtp_scale = max_wtp
        self._pad_scale = max_pad
        return best_class

    def on_select(self, packet: Packet, now: float) -> None:
        cid = packet.class_id
        self._delay_sums[cid] += now - packet.arrived_at
        self._delay_counts[cid] += 1


# ----------------------------------------------------------------------
# Fluid model (hybrid engine)
# ----------------------------------------------------------------------
def hpd_fluid_map(ctx: "FluidSplitContext") -> list[float]:
    """Relative per-class delays of the HPD fluid model.

    Both of HPD's ingredients target the same stationary fixed point:
    WTP's head-wait metric approaches the proportional model (Eq 3) in
    heavy load, and PAD's normalized-average metric (Eq 2) enforces it
    at every load.  Their convex combination therefore shares the fixed
    point -- ``g`` only blends *transient* behaviour -- so the fluid
    split is the proportional model ``d_i`` proportional to ``1/s_i``,
    with calibration refining the constant-of-motion once packet
    samples exist.
    """
    return [1.0 / s for s in ctx.sdps]
