"""Name -> scheduler factory registry.

Experiment configs and the CLI refer to schedulers by name; this module
centralizes construction.  Every factory takes the SDP tuple (or, for
parameterless disciplines like FCFS, the number of classes) so callers
can build any scheduler from the same experiment description.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import ConfigurationError
from .adaptive_wtp import AdaptiveWTPScheduler
from .additive import AdditiveDelayScheduler
from .base import Scheduler
from .bpr import BPRScheduler
from .drr import DRRScheduler
from .fcfs import FCFSScheduler
from .hpd import HPDScheduler
from .pad import PADScheduler
from .quantized_wtp import QuantizedWTPScheduler
from .strict_priority import StrictPriorityScheduler
from .wfq import SCFQScheduler
from .wtp import WTPScheduler

__all__ = ["make_scheduler", "available_schedulers"]

_FACTORIES: dict[str, Callable[[Sequence[float]], Scheduler]] = {
    "wtp": lambda sdps: WTPScheduler(sdps),
    "bpr": lambda sdps: BPRScheduler(sdps),
    "pad": lambda sdps: PADScheduler(sdps),
    "hpd": lambda sdps: HPDScheduler(sdps),
    "adaptive-wtp": lambda sdps: AdaptiveWTPScheduler(sdps),
    # Quantized WTP: default epoch of one paper p-unit (11.2 units).
    "qwtp": lambda sdps: QuantizedWTPScheduler(sdps, epoch=11.2),
    "fcfs": lambda sdps: FCFSScheduler(len(sdps)),
    "strict": lambda sdps: StrictPriorityScheduler(len(sdps)),
    # Capacity differentiation: SDPs double as static weights.
    "scfq": lambda sdps: SCFQScheduler(sdps),
    "wfq": lambda sdps: SCFQScheduler(sdps),
    "drr": lambda sdps: DRRScheduler(sdps),
    # Additive model: SDPs are offsets in time units; shift so s_1 = 0.
    "additive": lambda sdps: AdditiveDelayScheduler(
        [s - min(sdps) for s in sdps]
    ),
}


def available_schedulers() -> tuple[str, ...]:
    """Names accepted by :func:`make_scheduler`, sorted."""
    return tuple(sorted(_FACTORIES))


def make_scheduler(name: str, sdps: Sequence[float]) -> Scheduler:
    """Build the named scheduler for the given SDPs.

    ``sdps`` always has one entry per class; disciplines without
    differentiation parameters (FCFS, strict priority) only use its
    length.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    return factory(sdps)
