"""Class-based fair queueing -- the "capacity differentiation" baseline.

Section 2.1 argues that WFQ-style static bandwidth shares give
controllable *bandwidth* differentiation but not controllable *delay*
differentiation: delays at a bandwidth server depend on each class's
load and burstiness, so fixed weights cannot track load fluctuations.
This module provides that baseline so the claim can be demonstrated
(see the ablation benchmarks).

The implementation is Self-Clocked Fair Queueing (SCFQ, Golestani 1994)
over classes: packet k of class i gets the finish tag

    F_i^k = max(F_i^{k-1}, V(a)) + L / w_i

where V(a) is the finish tag of the packet in service when k arrives
(the "self-clocked" approximation of GPS virtual time), and the smallest
finish tag is served first.  SCFQ avoids the iterated-deletion machinery
of exact GPS virtual time while keeping the long-run weighted shares,
which is all this baseline must exhibit.  We name the class
``SCFQScheduler`` and alias it ``WFQScheduler`` with this caveat
documented.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from ..sim.packet import Packet
from .base import Scheduler

__all__ = ["SCFQScheduler", "WFQScheduler"]


class SCFQScheduler(Scheduler):
    """Self-clocked fair queueing across classes with static weights."""

    name = "scfq"

    def __init__(self, weights: Sequence[float]) -> None:
        values = tuple(float(w) for w in weights)
        if not values:
            raise ConfigurationError("need at least one weight")
        if any(w <= 0 for w in values):
            raise ConfigurationError(f"weights must be positive: {values}")
        self.weights = values
        super().__init__(len(values))
        self._finish_tags: dict[int, float] = {}
        self._last_class_finish = [0.0] * self.num_classes
        self._virtual_now = 0.0

    # ------------------------------------------------------------------
    def on_enqueue(self, packet: Packet, now: float) -> None:
        start = max(self._last_class_finish[packet.class_id], self._virtual_now)
        finish = start + packet.size / self.weights[packet.class_id]
        self._finish_tags[packet.packet_id] = finish
        self._last_class_finish[packet.class_id] = finish

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_tag = float("inf")
        queues = self.queues
        tags = self._finish_tags
        for cid in range(self.num_classes - 1, -1, -1):
            head = queues.head(cid)
            if head is not None and tags[head.packet_id] < best_tag:
                best_tag = tags[head.packet_id]
                best_class = cid
        return best_class

    def on_select(self, packet: Packet, now: float) -> None:
        # Self-clocking: virtual time jumps to the tag of the packet
        # entering service.
        self._virtual_now = self._finish_tags.pop(packet.packet_id)
        if self.queues.is_empty():
            # System drained: reset virtual time so a new busy period
            # starts fresh (standard SCFQ housekeeping).
            self._virtual_now = 0.0
            self._last_class_finish = [0.0] * self.num_classes


#: Alias: this library's "WFQ" baseline is SCFQ over classes (see module
#: docstring for why the self-clocked variant suffices here).
WFQScheduler = SCFQScheduler
