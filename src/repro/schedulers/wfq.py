"""Class-based fair queueing -- the "capacity differentiation" baseline.

Section 2.1 argues that WFQ-style static bandwidth shares give
controllable *bandwidth* differentiation but not controllable *delay*
differentiation: delays at a bandwidth server depend on each class's
load and burstiness, so fixed weights cannot track load fluctuations.
This module provides that baseline so the claim can be demonstrated
(see the ablation benchmarks).

The implementation is Self-Clocked Fair Queueing (SCFQ, Golestani 1994)
over classes: packet k of class i gets the finish tag

    F_i^k = max(F_i^{k-1}, V(a)) + L / w_i

where V(a) is the finish tag of the packet in service when k arrives
(the "self-clocked" approximation of GPS virtual time), and the smallest
finish tag is served first.  SCFQ avoids the iterated-deletion machinery
of exact GPS virtual time while keeping the long-run weighted shares,
which is all this baseline must exhibit.  We name the class
``SCFQScheduler`` and alias it ``WFQScheduler`` with this caveat
documented.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError
from ..sim.packet import Packet
from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.hybrid import FluidSplitContext

__all__ = [
    "SCFQScheduler",
    "WFQScheduler",
    "gps_fluid_rates",
    "scfq_fluid_map",
]


class SCFQScheduler(Scheduler):
    """Self-clocked fair queueing across classes with static weights."""

    name = "scfq"

    def __init__(self, weights: Sequence[float]) -> None:
        values = tuple(float(w) for w in weights)
        if not values:
            raise ConfigurationError("need at least one weight")
        if any(w <= 0 for w in values):
            raise ConfigurationError(f"weights must be positive: {values}")
        self.weights = values
        super().__init__(len(values))
        self._finish_tags: dict[int, float] = {}
        self._last_class_finish = [0.0] * self.num_classes
        self._virtual_now = 0.0

    # ------------------------------------------------------------------
    def on_enqueue(self, packet: Packet, now: float) -> None:
        start = max(self._last_class_finish[packet.class_id], self._virtual_now)
        finish = start + packet.size / self.weights[packet.class_id]
        self._finish_tags[packet.packet_id] = finish
        self._last_class_finish[packet.class_id] = finish

    def choose_class(self, now: float) -> int:
        best_class = -1
        best_tag = float("inf")
        queues = self.queues
        tags = self._finish_tags
        for cid in range(self.num_classes - 1, -1, -1):
            head = queues.head(cid)
            if head is not None and tags[head.packet_id] < best_tag:
                best_tag = tags[head.packet_id]
                best_class = cid
        return best_class

    def on_select(self, packet: Packet, now: float) -> None:
        # Self-clocking: virtual time jumps to the tag of the packet
        # entering service.
        self._virtual_now = self._finish_tags.pop(packet.packet_id)
        if self.queues.is_empty():
            # System drained: reset virtual time so a new busy period
            # starts fresh (standard SCFQ housekeeping).
            self._virtual_now = 0.0
            self._last_class_finish = [0.0] * self.num_classes


#: Alias: this library's "WFQ" baseline is SCFQ over classes (see module
#: docstring for why the self-clocked variant suffices here).
WFQScheduler = SCFQScheduler


# ----------------------------------------------------------------------
# Fluid model (hybrid engine)
# ----------------------------------------------------------------------
def gps_fluid_rates(
    weights: Sequence[float],
    demands: Sequence[float],
    capacity: float,
) -> list[float]:
    """Per-class service rates of the fluid GPS server (water-filling).

    In the fluid limit every weighted fair queueing variant (GPS, and
    its packetized approximations SCFQ and DRR via quanta) serves a
    *backlogged* class at its weight share of the capacity left over by
    the classes that need less than their share.  The classic
    water-filling: repeatedly satisfy every class whose demand fits
    under its current share, remove it (consuming only its demand), and
    re-share the remainder among the rest.  The returned rate for a
    satisfied class is the share it held when it was satisfied (the
    rate *available* to it while briefly backlogged); for a saturated
    class it is its final share -- the rate guarantee of Mukherjee et
    al.'s DRR analysis.
    """
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive: {capacity}")
    if len(weights) != len(demands):
        raise ConfigurationError("one demand per weight required")
    rates = [0.0] * len(weights)
    active = [i for i in range(len(weights)) if weights[i] > 0]
    cap = float(capacity)
    while active:
        total_w = sum(weights[i] for i in active)
        shares = {i: cap * weights[i] / total_w for i in active}
        satisfied = [i for i in active if demands[i] < shares[i]]
        if not satisfied:
            for i in active:
                rates[i] = shares[i]
            break
        for i in satisfied:
            rates[i] = shares[i]
            cap -= demands[i]
        active = [i for i in active if i not in satisfied]
    return rates


def scfq_fluid_map(ctx: "FluidSplitContext") -> list[float]:
    """Relative per-class delays of the SCFQ/WFQ fluid model.

    Capacity differentiation has no delay knob (Section 2.1), so the
    fluid split follows from the rate guarantee alone: class ``i`` is
    an M/G/1-like server at its GPS water-filled rate ``r_i``, whose
    congestion ``rho_i / (1 - rho_i)`` with ``rho_i = lambda_i / r_i``
    sets the *relative* delay -- the hybrid engine scales the vector
    onto Eq 5, so only ratios matter.  Without a real operating point
    (no span/capacity in the context) the demands are renormalized to
    a nominal 90%-utilization server so direct calls stay meaningful.
    """
    weights = ctx.sdps
    total_bytes = sum(ctx.class_bytes)
    if total_bytes <= 0:
        return [1.0] * len(weights)
    if ctx.capacity and ctx.span:
        capacity = ctx.capacity
        demands = [b / ctx.span for b in ctx.class_bytes]
    else:
        capacity = 1.0
        demands = [0.9 * b / total_bytes for b in ctx.class_bytes]
    rates = gps_fluid_rates(weights, demands, capacity)
    coeffs = []
    for lam, rate in zip(demands, rates):
        if lam <= 0 or rate <= 0:
            coeffs.append(0.0)
            continue
        rho = min(lam / rate, 0.97)
        coeffs.append(rho / (1.0 - rho))
    return coeffs
