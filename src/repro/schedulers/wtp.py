"""Waiting-Time Priority (WTP) scheduler -- Section 4.2.

Kleinrock's Time-Dependent-Priorities discipline (1964): the priority of
the head packet of class i at time t is

    p_i(t) = w_i(t) * s_i                                   (Eq 11)

where w_i(t) is the packet's waiting time at this hop and s_i is the
class's Scheduler Differentiation Parameter, s_1 < s_2 < ... < s_N.  The
backlogged class with the highest priority is served; ties go to the
higher class.

The paper's central empirical result is that in heavy load WTP
approximates proportional delay differentiation with DDP ratios equal to
the *inverse* SDP ratios, d_i/d_j -> s_j/s_i (Eq 13), and that it does so
even over monitoring timescales of tens of packet transmission times.

Complexity per selection is O(N); packets must be timestamped on
arrival (the simulator timestamps every packet anyway).
"""

from __future__ import annotations

from typing import Sequence

from .base import Scheduler, validate_sdps

__all__ = ["WTPScheduler"]


class WTPScheduler(Scheduler):
    """Waiting-time priority over per-class FIFOs."""

    name = "wtp"

    def __init__(self, sdps: Sequence[float]) -> None:
        self.sdps = validate_sdps(sdps)
        super().__init__(len(self.sdps))
        # High-class -> low-class (class id, SDP) pairs, precomputed so
        # the selection loop needs one list index per class.
        self._scan = tuple(
            (cid, self.sdps[cid])
            for cid in range(len(self.sdps) - 1, -1, -1)
        )
        # The paper's canonical configuration is four classes; unroll
        # that scan into straight-line code (same float expressions,
        # same comparison order, so selections stay bit-identical) --
        # choose_class runs once per departure and dominates the
        # columnar drain's remaining per-packet cost.
        self._four = len(self.sdps) == 4
        if self._four:
            self._s0, self._s1, self._s2, self._s3 = self.sdps

    def choose_class(self, now: float) -> int:
        # Scan the incrementally-maintained head-arrival keys instead of
        # dereferencing deques and packets: same float expression, so
        # selections are bit-identical to the per-packet form.  An empty
        # class has ``head == +inf`` and yields ``-inf``, which never
        # beats a real priority (``>= 0``).  High class -> low class so
        # ties resolve to the higher class with a strict comparison.
        heads = self.queues.head_arrivals
        if self._four:
            best_class = -1
            best_priority = -1.0
            priority = (now - heads[3]) * self._s3
            if priority > best_priority:
                best_priority = priority
                best_class = 3
            priority = (now - heads[2]) * self._s2
            if priority > best_priority:
                best_priority = priority
                best_class = 2
            priority = (now - heads[1]) * self._s1
            if priority > best_priority:
                best_priority = priority
                best_class = 1
            if (now - heads[0]) * self._s0 > best_priority:
                best_class = 0
            return best_class
        best_class = -1
        best_priority = -1.0
        for cid, sdp in self._scan:
            priority = (now - heads[cid]) * sdp
            if priority > best_priority:
                best_priority = priority
                best_class = cid
        return best_class
