"""Backlog-Proportional Rate (BPR) scheduler -- Section 4.1 + Appendices.

Fluid model
-----------
BPR is a GPS-style fluid server whose class service rates are
continuously re-weighted by the instantaneous class backlogs:

    r_i(t) / r_j(t) = (s_i * q_i(t)) / (s_j * q_j(t))        (Eq 8)
    sum_i r_i(t) = R                                          (Eq 9)

for backlogged classes, where q_i(t) is the backlog in bytes and the
SDPs satisfy s_1 < s_2 < ... < s_N.  With no arrivals the fluid backlogs
obey dq_i/dt = -R s_i q_i / sum_j s_j q_j, whose solution is

    q_i(t) = q_i(0) * theta(t) ** s_i

with a common theta(t) in (0, 1] found from work conservation
sum_i q_i(t) = Q(0) - R t.  All queues therefore hit zero at the same
instant theta -> 0 -- Proposition 1's *simultaneous queue clearing*.
:func:`fluid_backlogs` evaluates this closed form (used as a reference
implementation and in the Proposition 1 tests).

Packetized model (Appendix 3)
-----------------------------
The implementable scheduler tracks a virtual service function v_i for
each queue, approximating the fluid service the head packet would have
received:

* After each departure (and when a busy period starts) the rates r_i are
  recomputed from Eqs 8-9 using the current byte backlogs and held
  constant until the next departure.
* At a departure at time t^k:  v_i(t^k) = 0 if the head of queue i
  arrived after the previous departure t^{k-1}, else
  v_i(t^k) = v_i(t^{k-1}) + r_i(t^{k-1}) * (t^k - t^{k-1}).
* The next packet comes from queue  argmin_i (L_i - v_i(t^k)),  ties
  broken in favour of the higher class.

Appendix 3 leaves one case unspecified: v_i of the queue that was just
served.  We subtract the transmitted length (clamped at zero), so the
new head keeps any excess virtual service but does not inherit the full
credit of its predecessor.  This choice reproduces the paper's observed
behaviour: convergence to proportional differentiation in heavy load,
plus the characteristic sawtooth/noisy short-timescale delays
(Figure 4), because a nearly drained queue receives a tiny rate and its
last packets age until fresh arrivals restore the backlog.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ConfigurationError
from ..sim.packet import Packet
from .base import Scheduler, validate_sdps

__all__ = [
    "BPRScheduler",
    "FluidBPRTracker",
    "fluid_backlogs",
    "fluid_clearing_time",
]


class BPRScheduler(Scheduler):
    """Packetized Backlog-Proportional Rate scheduler (Appendix 3)."""

    name = "bpr"

    def __init__(self, sdps: Sequence[float], capacity: float | None = None) -> None:
        self.sdps = validate_sdps(sdps)
        super().__init__(len(self.sdps))
        #: Output link rate R (bytes per time unit).  May also be bound
        #: later by the owning Link via :meth:`bind_capacity`.
        self.capacity = capacity
        self._last_decision: float | None = None
        self._rates = [0.0] * self.num_classes
        self._virtual = [0.0] * self.num_classes

    def bind_capacity(self, capacity: float) -> None:
        """Set the link rate R used in Eq 9 (called by the Link)."""
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive: {capacity}")
        self.capacity = capacity

    # ------------------------------------------------------------------
    def choose_class(self, now: float) -> int:
        if self.capacity is None:
            raise ConfigurationError(
                "BPRScheduler needs the link capacity; pass capacity= or "
                "attach it to a Link"
            )
        queue_list = self.queues.queues
        last = self._last_decision
        virtual = self._virtual
        rates = self._rates
        # Update virtual service for the elapsed inter-departure interval.
        best_class = -1
        best_score = math.inf
        for cid in range(self.num_classes - 1, -1, -1):
            queue = queue_list[cid]
            if not queue:
                virtual[cid] = 0.0
                continue
            head = queue[0]
            if last is None or head.arrived_at > last:
                virtual[cid] = 0.0
            else:
                virtual[cid] += rates[cid] * (now - last)
            score = head.size - virtual[cid]
            if score < best_score:
                best_score = score
                best_class = cid
        return best_class

    def on_select(self, packet: Packet, now: float) -> None:
        # Consume the served queue's virtual credit (Appendix 3 does not
        # specify this case; see module docstring).
        cid = packet.class_id
        self._virtual[cid] = max(0.0, self._virtual[cid] - packet.size)
        self._recompute_rates()
        self._last_decision = now

    def _recompute_rates(self) -> None:
        """Eqs 8-9 over the *current* byte backlogs (post-selection).

        The normalized-rate counters are updated *in place* into the
        preallocated ``_rates`` list, and the weighted sum accumulates
        left-to-right -- deliberately kept this way (rather than, say,
        maintained incrementally per enqueue/dequeue) because float
        summation order is observable: the drain kernel promises
        bit-identical selections to the evented path, and an
        incremental sum would reassociate the additions.
        """
        backlog = self.queues.bytes_backlog
        sdps = self.sdps
        weight_sum = 0.0
        for cid in range(self.num_classes):
            weight_sum += sdps[cid] * backlog[cid]
        rates = self._rates
        if weight_sum <= 0.0:
            for cid in range(self.num_classes):
                rates[cid] = 0.0
            return
        scale = self.capacity / weight_sum
        for cid in range(self.num_classes):
            rates[cid] = sdps[cid] * backlog[cid] * scale

    @property
    def current_rates(self) -> tuple[float, ...]:
        """Service rates assigned at the last decision (bytes/unit)."""
        return tuple(self._rates)


class FluidBPRTracker:
    """Exact backlog dynamics of the BPR *fluid* server under piecewise
    arrivals.

    Between fluid-arrival events the backlogs follow the closed form
    q_i(t) = q_i(t0) * theta^{s_i} (see module docstring), so the whole
    trajectory is computed analytically -- no time-stepping error.  Used
    to validate the packetized scheduler and to demonstrate
    Proposition 1 with arrivals present.

    Usage: ``advance(t)`` drains to time t, ``add_fluid(cid, bytes)``
    injects work at the current time.
    """

    def __init__(self, sdps: Sequence[float], capacity: float) -> None:
        self.sdps = validate_sdps(sdps)
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.now = 0.0
        self.backlogs = [0.0] * len(self.sdps)

    def add_fluid(self, class_id: int, amount: float) -> None:
        """Instantaneously add ``amount`` bytes to a class backlog."""
        if amount < 0:
            raise ConfigurationError(f"amount must be non-negative: {amount}")
        if not 0 <= class_id < len(self.sdps):
            raise ConfigurationError(
                f"class_id {class_id} out of range [0, {len(self.sdps)})"
            )
        self.backlogs[class_id] += amount

    def advance(self, until: float) -> None:
        """Drain the fluid server up to time ``until``."""
        if until < self.now:
            raise ConfigurationError(
                f"cannot advance backwards: {until} < {self.now}"
            )
        elapsed = until - self.now
        total = sum(self.backlogs)
        if total <= 0:
            self.now = until
            return
        clearing = total / self.capacity
        if elapsed >= clearing:
            # Proposition 1: all queues empty simultaneously.
            self.backlogs = [0.0] * len(self.sdps)
        else:
            self.backlogs = fluid_backlogs(
                self.backlogs, self.sdps, self.capacity, elapsed
            )
        self.now = until

    @property
    def empty(self) -> bool:
        return all(q <= 0 for q in self.backlogs)

    def clearing_time(self) -> float:
        """Absolute time at which all queues empty if no more arrivals."""
        return self.now + fluid_clearing_time(self.backlogs, self.capacity)


# ----------------------------------------------------------------------
# Fluid reference (Proposition 1)
# ----------------------------------------------------------------------
def fluid_backlogs(
    initial: Sequence[float],
    sdps: Sequence[float],
    capacity: float,
    elapsed: float,
    tolerance: float = 1e-12,
) -> list[float]:
    """Backlogs of the BPR *fluid* server after ``elapsed`` time units
    with no further arrivals.

    Solves  sum_i q_i(0) * theta**s_i = Q(0) - R*elapsed  for theta by
    bisection and returns q_i(0) * theta**s_i.  An all-empty system
    stays empty (zeros for any ``elapsed``); a *non-empty* system that
    would have emptied strictly before ``elapsed`` raises, as does a
    negative ``elapsed`` or non-positive ``capacity``.
    """
    q0 = [float(q) for q in initial]
    s = validate_sdps(sdps)
    if len(q0) != len(s):
        raise ConfigurationError("initial backlogs and SDPs must align")
    if any(q < 0 for q in q0):
        raise ConfigurationError(f"backlogs must be non-negative: {q0}")
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive: {capacity}")
    if elapsed < 0:
        raise ConfigurationError(f"elapsed must be non-negative: {elapsed}")
    total0 = sum(q0)
    if total0 == 0.0:
        # An all-empty system stays empty: theta is undefined (any value
        # satisfies the drain equation), but the trajectory is trivial.
        return [0.0] * len(q0)
    target = total0 - capacity * elapsed
    if target < -tolerance * max(total0, 1.0):
        raise ConfigurationError(
            f"system empties at t={total0 / capacity:.6g} < elapsed={elapsed}"
        )
    if target <= 0:
        return [0.0] * len(q0)

    def total_at(theta: float) -> float:
        return sum(q * theta**si for q, si in zip(q0, s))

    lo, hi = 0.0, 1.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if total_at(mid) < target:
            lo = mid
        else:
            hi = mid
    theta = 0.5 * (lo + hi)
    return [q * theta**si for q, si in zip(q0, s)]


def fluid_clearing_time(initial: Sequence[float], capacity: float) -> float:
    """Instant at which *all* fluid BPR queues empty (Proposition 1)."""
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive: {capacity}")
    backlogs = [float(q) for q in initial]
    if any(q < 0 for q in backlogs):
        raise ConfigurationError(f"backlogs must be non-negative: {backlogs}")
    return sum(backlogs) / capacity
