"""Differentiation metrics -- the paper's figures of merit.

* Long-term successive-class delay ratios (Figures 1 and 2).
* The interval metric R_D (Figure 3): per monitoring interval of length
  tau, the average of normalized delay ratios between successive
  *active* classes; summarized by its 5/25/50/75/95 percentiles.
* The end-to-end metric of Table 1: per "user experiment", compare
  per-flow delay percentiles across classes, flag inconsistent
  differentiation, and average the normalized ratios over class pairs,
  experiments and percentiles.

Normalization: with SDP ratios s_{i+1}/s_i = r the ideal ratio between
classes i < j is r^(j-i); when some classes are inactive in an interval
the paper "normalizes the ratios of average delays of the active
classes".  We take the per-class-step geometric normalization
(d_i/d_j)^(1/(j-i)) so every pair contributes on the same scale as a
successive pair, then average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "PercentileSummary",
    "interval_rd",
    "rd_series",
    "summarize_rd",
    "successive_ratio_rd",
    "EndToEndComparison",
    "compare_flow_percentiles",
]

#: The five percentiles plotted in Figure 3.
FIGURE3_PERCENTILES = (5.0, 25.0, 50.0, 75.0, 95.0)


@dataclass(frozen=True)
class PercentileSummary:
    """5/25/50/75/95 percentiles of a sample, as plotted in Figure 3."""

    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "PercentileSummary":
        data = np.asarray(samples, dtype=float)
        data = data[~np.isnan(data)]
        if not len(data):
            nan = float("nan")
            return cls(nan, nan, nan, nan, nan, 0)
        p5, p25, p50, p75, p95 = np.percentile(data, FIGURE3_PERCENTILES)
        return cls(float(p5), float(p25), float(p50), float(p75), float(p95),
                   int(len(data)))


def interval_rd(
    means: Sequence[float], min_active: int = 2
) -> Optional[float]:
    """R_D of one monitoring interval from per-class mean delays.

    ``means`` holds one value per class with NaN for inactive classes.
    Successive *active* classes i < j contribute the normalized ratio
    (d_i / d_j)^(1/(j-i)); the interval's R_D is their average.  Returns
    None when fewer than ``min_active`` classes are active or a mean is
    non-positive (ratio undefined).
    """
    active = [
        (idx, value)
        for idx, value in enumerate(means)
        if not math.isnan(value)
    ]
    if len(active) < min_active:
        return None
    ratios = []
    for (i, di), (j, dj) in zip(active, active[1:]):
        if di <= 0 or dj <= 0:
            return None
        ratios.append((di / dj) ** (1.0 / (j - i)))
    return sum(ratios) / len(ratios)


def rd_series(interval_means: np.ndarray) -> list[float]:
    """R_D for every interval (rows of an interval-means matrix)."""
    series = []
    for row in interval_means:
        value = interval_rd(row)
        if value is not None:
            series.append(value)
    return series


def summarize_rd(interval_means: np.ndarray) -> PercentileSummary:
    """Figure 3 box summary of the R_D distribution."""
    return PercentileSummary.from_samples(rd_series(interval_means))


def successive_ratio_rd(means: Sequence[float]) -> float:
    """Average of d_i/d_{i+1} over all successive pairs (all classes
    active) -- the long-run single-number counterpart of R_D."""
    if any(math.isnan(m) or m <= 0 for m in means):
        raise ConfigurationError(f"need positive means for all classes: {means}")
    ratios = [means[i] / means[i + 1] for i in range(len(means) - 1)]
    if not ratios:
        raise ConfigurationError("need >= 2 classes")
    return sum(ratios) / len(ratios)


# ----------------------------------------------------------------------
# End-to-end comparison (Section 6 / Table 1)
# ----------------------------------------------------------------------
#: The ten per-flow delay percentiles of the Table 1 methodology.
TABLE1_PERCENTILES = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 99.0)


@dataclass
class EndToEndComparison:
    """Outcome of comparing one user experiment's flows across classes.

    ``percentile_matrix`` has one row per class (low class first) and
    one column per percentile in :data:`TABLE1_PERCENTILES`.
    ``inconsistencies`` counts (class pair, percentile) cells where a
    higher class saw a *larger* delay than a lower class -- the paper's
    definition of inconsistent differentiation.  ``rd`` is the average
    of successive-class percentile ratios over all pairs and
    percentiles.
    """

    percentile_matrix: np.ndarray
    inconsistencies: int
    rd: float

    @property
    def consistent(self) -> bool:
        return self.inconsistencies == 0


def compare_flow_percentiles(
    delays_per_class: Sequence[Sequence[float]],
    percentiles: Sequence[float] = TABLE1_PERCENTILES,
    tolerance: float = 0.0,
) -> EndToEndComparison:
    """Evaluate one user experiment (Section 6 methodology).

    ``delays_per_class[i]`` holds the end-to-end queueing delays of the
    class-(i+1) flow's packets.  A cell is inconsistent when the higher
    class's percentile exceeds the lower class's by more than
    ``tolerance`` (relative).
    """
    num_classes = len(delays_per_class)
    if num_classes < 2:
        raise ConfigurationError("need >= 2 flows to compare")
    if any(len(d) == 0 for d in delays_per_class):
        raise ConfigurationError("every flow needs at least one delay sample")
    matrix = np.asarray(
        [
            np.percentile(np.asarray(d, dtype=float), percentiles)
            for d in delays_per_class
        ]
    )
    inconsistencies = 0
    ratios = []
    for low in range(num_classes - 1):
        high = low + 1
        for col in range(matrix.shape[1]):
            d_low, d_high = matrix[low, col], matrix[high, col]
            if d_high > d_low * (1.0 + tolerance):
                inconsistencies += 1
            if d_high > 0:
                ratios.append(d_low / d_high)
    rd = float(np.mean(ratios)) if ratios else float("nan")
    return EndToEndComparison(matrix, inconsistencies, rd)
