"""Feasibility of a set of class average delays -- Section 3, Eq 7.

Coffman & Mitrani's characterization: given class rates {lambda_i} and
the FCFS aggregate-delay function d(.), a vector of class average delays
{d_i} is achievable by *some* work-conserving scheduler if and only if

  (a) the conservation law holds with equality over all classes
      (Eq 5:  sum_i lambda_i d_i = lambda d(lambda)), and
  (b) for every nonempty proper subset phi of classes,

        sum_{i in phi} lambda_i d_i  >=
            (sum_{i in phi} lambda_i) * d(sum_{i in phi} lambda_i)   (Eq 7)

      -- the backlog of any class subset cannot be pushed below what
      that subset's traffic alone would build in a FCFS server.

The subset delays d(sum lambda_i) depend on the traffic; callers supply
them either analytically (Poisson: :mod:`repro.theory.mg1`) or from
measurements of FCFS simulations of the subset traffic, exactly as the
paper does when it verifies Figures 1 and 2 operate at feasible points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain, combinations
from typing import Callable, Iterable, Sequence

from ..errors import ConfigurationError
from .ddp import DelayDifferentiationParameters
from .model import ProportionalDelayModel

__all__ = ["FeasibilityReport", "proper_subsets", "check_feasibility",
           "check_proportional_feasibility"]


def proper_subsets(num_classes: int) -> Iterable[tuple[int, ...]]:
    """All 2^N - 2 nonempty proper subsets of {0, ..., N-1}."""
    if num_classes < 1:
        raise ConfigurationError("num_classes must be >= 1")
    indices = range(num_classes)
    return chain.from_iterable(
        combinations(indices, size) for size in range(1, num_classes)
    )


@dataclass
class FeasibilityReport:
    """Outcome of a feasibility check.

    ``violations`` lists (subset, lhs, rhs) triples where Eq 7 failed;
    ``margins`` maps each checked subset to lhs - rhs (>= 0 iff
    satisfied), useful for seeing how close an operating point is to the
    feasibility boundary.
    """

    feasible: bool
    violations: list[tuple[tuple[int, ...], float, float]] = field(
        default_factory=list
    )
    margins: dict[tuple[int, ...], float] = field(default_factory=dict)
    conservation_residual: float = 0.0

    def worst_margin(self) -> float:
        """Smallest subset margin (negative when infeasible)."""
        return min(self.margins.values()) if self.margins else float("inf")


def check_feasibility(
    rates: Sequence[float],
    delays: Sequence[float],
    subset_delay: Callable[[tuple[int, ...]], float],
    relative_tolerance: float = 1e-9,
) -> FeasibilityReport:
    """Evaluate Eq 7 for explicit per-class delays.

    Parameters
    ----------
    rates, delays:
        Per-class arrival rates and candidate average delays.
    subset_delay:
        Callback returning d(sum_{i in phi} lambda_i) for a subset
        ``phi`` of class indices -- the FCFS mean delay of the combined
        traffic of those classes.  The full set is also queried to audit
        the conservation law.
    relative_tolerance:
        Slack applied to each inequality (both simulation-measured and
        floating-point inputs need one).
    """
    if len(rates) != len(delays):
        raise ConfigurationError("rates and delays must align")
    if any(r <= 0 for r in rates):
        raise ConfigurationError(f"class rates must be positive: {rates}")
    if any(d < 0 for d in delays):
        raise ConfigurationError(f"delays must be non-negative: {delays}")
    num_classes = len(rates)

    report = FeasibilityReport(feasible=True)
    # Conservation-law residual over the full class set (Eq 5).
    full = tuple(range(num_classes))
    total_rate = sum(rates)
    aggregate = subset_delay(full)
    lhs_full = sum(r * d for r, d in zip(rates, delays))
    rhs_full = total_rate * aggregate
    denominator = max(abs(rhs_full), 1e-300)
    report.conservation_residual = (lhs_full - rhs_full) / denominator

    for subset in proper_subsets(num_classes):
        subset_rate = sum(rates[i] for i in subset)
        lhs = sum(rates[i] * delays[i] for i in subset)
        rhs = subset_rate * subset_delay(subset)
        report.margins[subset] = lhs - rhs
        slack = relative_tolerance * max(abs(lhs), abs(rhs), 1.0)
        if lhs < rhs - slack:
            report.feasible = False
            report.violations.append((subset, lhs, rhs))
    return report


def check_proportional_feasibility(
    ddps: DelayDifferentiationParameters,
    rates: Sequence[float],
    subset_delay: Callable[[tuple[int, ...]], float],
    relative_tolerance: float = 1e-9,
) -> FeasibilityReport:
    """Check whether a DDP vector is feasible at the given class rates.

    Combines Eq 6 (the unique delay vector a proportional scheduler
    would have to realize, given d(lambda) from ``subset_delay`` on the
    full set) with the Eq 7 subset conditions.
    """
    full = tuple(range(len(rates)))
    aggregate = subset_delay(full)
    delays = ProportionalDelayModel(ddps).class_delays(rates, aggregate)
    return check_feasibility(rates, delays, subset_delay, relative_tolerance)
