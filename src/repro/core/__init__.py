"""Core: the proportional differentiation model, feasibility and metrics."""

from .conservation import (
    conservation_residual,
    fcfs_mean_delay,
    fcfs_mean_delay_per_class,
    fcfs_waiting_times,
    subset_delay_function,
)
from .ddp import DelayDifferentiationParameters, ddps_from_sdps, sdps_from_ddps
from .delay_curve import DelayCurve, estimate_delay_curve, thin_trace
from .feasibility import (
    FeasibilityReport,
    check_feasibility,
    check_proportional_feasibility,
    proper_subsets,
)
from .metrics import (
    EndToEndComparison,
    PercentileSummary,
    compare_flow_percentiles,
    interval_rd,
    rd_series,
    successive_ratio_rd,
    summarize_rd,
)
from .model import AdditiveDelayModel, ProportionalDelayModel

__all__ = [
    "conservation_residual",
    "fcfs_mean_delay",
    "fcfs_mean_delay_per_class",
    "fcfs_waiting_times",
    "subset_delay_function",
    "DelayDifferentiationParameters",
    "ddps_from_sdps",
    "sdps_from_ddps",
    "DelayCurve",
    "estimate_delay_curve",
    "thin_trace",
    "FeasibilityReport",
    "check_feasibility",
    "check_proportional_feasibility",
    "proper_subsets",
    "EndToEndComparison",
    "PercentileSummary",
    "compare_flow_percentiles",
    "interval_rd",
    "rd_series",
    "successive_ratio_rd",
    "summarize_rd",
    "AdditiveDelayModel",
    "ProportionalDelayModel",
]
