"""Delay Differentiation Parameters (DDPs) and their SDP duals.

The proportional delay differentiation model (Eq 1) fixes the pairwise
ratios of class average delays:

    d_i / d_j = delta_i / delta_j,    delta_1 > delta_2 > ... > delta_N > 0.

Class 1 is the lowest class (largest delay).  The schedulers are
parameterized by Scheduler Differentiation Parameters (SDPs)
s_1 < s_2 < ... < s_N, and the paper's empirical finding (Eq 13) is that
in heavy load the achieved DDP ratios are the inverse SDP ratios:
delta_i / delta_j = s_j / s_i.  This module holds both parameter sets
and the conversion between them; only ratios matter, so conversions are
normalized to delta_N = 1 and s_1 = 1 respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError

__all__ = ["DelayDifferentiationParameters", "sdps_from_ddps", "ddps_from_sdps"]


@dataclass(frozen=True)
class DelayDifferentiationParameters:
    """Validated DDP vector delta_1 > delta_2 > ... > delta_N > 0."""

    deltas: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.deltas) < 2:
            raise ConfigurationError("differentiation needs >= 2 classes")
        if any(d <= 0 for d in self.deltas):
            raise ConfigurationError(f"DDPs must be positive: {self.deltas}")
        if any(b >= a for a, b in zip(self.deltas, self.deltas[1:])):
            raise ConfigurationError(
                "DDPs must be strictly decreasing (class 1 worst): "
                f"{self.deltas}"
            )

    @property
    def num_classes(self) -> int:
        return len(self.deltas)

    def ratio(self, i: int, j: int) -> float:
        """Target delay ratio d_i / d_j = delta_i / delta_j (0-based)."""
        return self.deltas[i] / self.deltas[j]

    def successive_ratios(self) -> list[float]:
        """delta_i / delta_{i+1} for each successive pair (all > 1)."""
        return [
            self.deltas[i] / self.deltas[i + 1]
            for i in range(self.num_classes - 1)
        ]

    def normalized(self) -> "DelayDifferentiationParameters":
        """Scale so that the highest class has delta_N = 1."""
        last = self.deltas[-1]
        return DelayDifferentiationParameters(
            tuple(d / last for d in self.deltas)
        )


def sdps_from_ddps(ddps: DelayDifferentiationParameters) -> tuple[float, ...]:
    """SDPs realizing the DDPs in heavy load (Eq 13): s_i = delta_1/delta_i."""
    first = ddps.deltas[0]
    return tuple(first / d for d in ddps.deltas)


def ddps_from_sdps(sdps: Sequence[float]) -> DelayDifferentiationParameters:
    """DDPs a scheduler with these SDPs targets in heavy load (Eq 13)."""
    values = tuple(float(s) for s in sdps)
    if len(values) < 2:
        raise ConfigurationError("differentiation needs >= 2 classes")
    if any(s <= 0 for s in values):
        raise ConfigurationError(f"SDPs must be positive: {values}")
    if any(b <= a for a, b in zip(values, values[1:])):
        raise ConfigurationError(f"SDPs must be strictly increasing: {values}")
    first = values[0]
    return DelayDifferentiationParameters(tuple(first / s for s in values))
