"""Empirical delay-vs-rate curve d(lambda) -- a Section 7 open issue.

The feasibility conditions (Eq 7) and the model dynamics (Eq 6) both
need d(.), the FCFS mean delay of this link's traffic as a function of
the offered rate.  The paper notes that estimating d(lambda) from
measurements of a specific link is "a challenging open issue"; this
module provides the natural estimator it hints at:

* take a measured arrival trace of the link,
* produce lower-rate variants by *thinning* (keeping each packet
  independently with probability p = target_rate / measured_rate,
  which preserves the burstiness structure of the surviving points,
  unlike rescaling time),
* run the exact O(n) FCFS recursion on each variant.

The resulting :class:`DelayCurve` interpolates d(lambda) and plugs
straight into the Eq 6/Eq 7 machinery, giving the operator the "space
of feasible DDPs" workflow the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..traffic.trace import ArrivalTrace
from .conservation import fcfs_mean_delay

__all__ = ["DelayCurve", "estimate_delay_curve", "thin_trace"]


def thin_trace(
    trace: ArrivalTrace,
    keep_probability: float,
    rng: np.random.Generator,
) -> ArrivalTrace:
    """Keep each packet independently with the given probability."""
    if not 0 < keep_probability <= 1.0:
        raise ConfigurationError(
            f"keep_probability must be in (0, 1]: {keep_probability}"
        )
    if keep_probability == 1.0:
        return trace
    mask = rng.random(len(trace)) < keep_probability
    return ArrivalTrace(
        trace.times[mask], trace.class_ids[mask], trace.sizes[mask]
    )


@dataclass(frozen=True)
class DelayCurve:
    """Piecewise-linear interpolation of d(lambda) from measured points.

    ``rates`` are aggregate packet rates (ascending); ``delays`` the
    corresponding FCFS mean queueing delays.
    """

    rates: tuple[float, ...]
    delays: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.rates) != len(self.delays) or len(self.rates) < 2:
            raise ConfigurationError("need >= 2 aligned (rate, delay) points")
        if any(b <= a for a, b in zip(self.rates, self.rates[1:])):
            raise ConfigurationError("rates must be strictly increasing")

    def __call__(self, rate: float) -> float:
        """Interpolated d(lambda); linear extrapolation outside range."""
        return float(
            np.interp(rate, self.rates, self.delays)
            if self.rates[0] <= rate <= self.rates[-1]
            else self._extrapolate(rate)
        )

    def _extrapolate(self, rate: float) -> float:
        rates, delays = self.rates, self.delays
        if rate < rates[0]:
            lo, hi = 0, 1
        else:
            lo, hi = -2, -1
        slope = (delays[hi] - delays[lo]) / (rates[hi] - rates[lo])
        return max(0.0, delays[lo] + slope * (rate - rates[lo]))


def estimate_delay_curve(
    trace: ArrivalTrace,
    capacity: float,
    fractions: Sequence[float] = (0.4, 0.55, 0.7, 0.85, 1.0),
    warmup: float = 0.0,
    seed: int = 0,
) -> DelayCurve:
    """Estimate d(lambda) by thinning a measured trace.

    ``fractions`` are the kept-traffic fractions (ascending, ending at
    1.0 to include the measured operating point itself).
    """
    if not len(trace):
        raise ConfigurationError("empty trace")
    values = tuple(float(f) for f in fractions)
    if any(b <= a for a, b in zip(values, values[1:])) or not values:
        raise ConfigurationError("fractions must be strictly increasing")
    if values[-1] > 1.0 or values[0] <= 0.0:
        raise ConfigurationError("fractions must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    horizon = float(trace.times[-1])
    base_rate = len(trace) / horizon
    rates, delays = [], []
    for fraction in values:
        thinned = thin_trace(trace, fraction, rng)
        if not len(thinned):
            continue
        rates.append(fraction * base_rate)
        delays.append(fcfs_mean_delay(thinned, capacity, warmup))
    return DelayCurve(tuple(rates), tuple(delays))
