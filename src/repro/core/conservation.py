"""Conservation law (Eq 5) and fast FCFS reference delays.

For any work-conserving discipline over traffic with one packet-length
distribution,

    sum_i lambda_i * d_i = lambda * d(lambda)                    (Eq 5)

where d(lambda) is the mean queueing delay of the aggregate through a
FCFS server of the same capacity.  This module provides:

* :func:`fcfs_waiting_times` -- the Lindley recursion, an O(n) exact
  FCFS simulation of an arrival trace (no event engine needed).
* :func:`subset_delay_function` -- the ``subset_delay`` callback that
  :mod:`repro.core.feasibility` expects, backed by FCFS replays of the
  trace filtered to each subset (memoized: Eq 7 touches 2^N - 1
  subsets).
* :func:`conservation_residual` -- the relative Eq 5 residual of a
  measured (rates, delays) outcome, used as a run-level audit in the
  experiment harnesses and property tests.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..traffic.trace import ArrivalTrace

__all__ = [
    "fcfs_waiting_times",
    "fcfs_mean_delay",
    "fcfs_mean_delay_per_class",
    "subset_delay_function",
    "conservation_residual",
]


def fcfs_waiting_times(
    times: np.ndarray, sizes: np.ndarray, capacity: float
) -> np.ndarray:
    """Waiting time of every packet in a FCFS server (Lindley recursion).

    W_1 = 0;  W_{k+1} = max(0, W_k + S_k - (t_{k+1} - t_k))  with
    S_k = sizes_k / capacity.  Arrival times must be sorted.

    Evaluated in vectorized form via the random-walk solution of the
    recursion: with X_k = S_k - gap_k and C_k = X_1 + ... + X_k
    (C_0 = 0),  W_{k+1} = C_k - min(C_0, ..., C_k),  so one ``cumsum``
    and one ``minimum.accumulate`` replace the Python loop.  The
    invariant subsystem runs this over every checked trace, so the O(n)
    loop constant matters.
    """
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive: {capacity}")
    n = len(times)
    if len(sizes) != n:
        raise ConfigurationError("times and sizes must align")
    if not n:
        return np.empty(0)
    gaps = np.diff(times)
    if len(gaps) and gaps.min() < 0:
        raise ConfigurationError("arrival times must be sorted")
    walk = np.empty(n)
    walk[0] = 0.0
    np.cumsum(sizes[:-1] / capacity - gaps, out=walk[1:])
    return walk - np.minimum.accumulate(walk)


def fcfs_mean_delay(
    trace: ArrivalTrace, capacity: float, warmup: float = 0.0
) -> float:
    """Mean FCFS queueing delay of a trace (departure-agnostic warm-up
    cut on *arrival* time, adequate for long runs)."""
    waits = fcfs_waiting_times(trace.times, trace.sizes, capacity)
    if warmup > 0.0:
        mask = trace.times >= warmup
        waits = waits[mask]
    if not len(waits):
        return float("nan")
    return float(waits.mean())


def fcfs_mean_delay_per_class(
    trace: ArrivalTrace, capacity: float, warmup: float = 0.0
) -> list[float]:
    """Per-class mean FCFS delays of the *aggregate* trace."""
    waits = fcfs_waiting_times(trace.times, trace.sizes, capacity)
    class_ids = trace.class_ids
    if warmup > 0.0:
        mask = trace.times >= warmup
        waits = waits[mask]
        class_ids = class_ids[mask]
    means = []
    for cid in range(trace.num_classes):
        class_waits = waits[class_ids == cid]
        means.append(float(class_waits.mean()) if len(class_waits) else float("nan"))
    return means


def subset_delay_function(
    trace: ArrivalTrace, capacity: float, warmup: float = 0.0
) -> Callable[[tuple[int, ...]], float]:
    """Memoized  phi -> d(sum_{i in phi} lambda_i)  via FCFS replay."""
    cache: dict[tuple[int, ...], float] = {}

    def subset_delay(subset: tuple[int, ...]) -> float:
        key = tuple(sorted(subset))
        if key not in cache:
            cache[key] = fcfs_mean_delay(
                trace.filter_classes(key), capacity, warmup
            )
        return cache[key]

    return subset_delay


def conservation_residual(
    rates: Sequence[float],
    delays: Sequence[float],
    aggregate_delay: float,
) -> float:
    """Relative residual of Eq 5: (sum lambda_i d_i - lambda d) / (lambda d)."""
    if len(rates) != len(delays):
        raise ConfigurationError("rates and delays must align")
    total_rate = sum(rates)
    if total_rate <= 0:
        raise ConfigurationError("aggregate rate must be positive")
    lhs = sum(r * d for r, d in zip(rates, delays))
    rhs = total_rate * aggregate_delay
    if rhs == 0:
        return 0.0 if lhs == 0 else float("inf")
    return (lhs - rhs) / rhs
