"""Dynamics of the proportional delay differentiation model -- Section 3.

Assuming a work-conserving, lossless scheduler that enforces Eq 4
(d_i / d_j = delta_i / delta_j) and the conservation law (Eq 5,
sum_i lambda_i d_i = lambda * d(lambda)), the class average delays are
pinned to

    d_i = delta_i * lambda * d(lambda) / sum_j (delta_j * lambda_j)   (Eq 6)

where lambda_i are the class arrival rates, lambda their sum, and
d(lambda) the average delay the *aggregate* traffic would see in a FCFS
server of the same capacity.  :class:`ProportionalDelayModel` evaluates
Eq 6 and exposes the four qualitative "dynamics" properties the paper
derives from it (used as executable checks in the test suite).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from .ddp import DelayDifferentiationParameters

__all__ = ["ProportionalDelayModel", "AdditiveDelayModel"]


class ProportionalDelayModel:
    """Closed-form class delays implied by Eq 6."""

    def __init__(self, ddps: DelayDifferentiationParameters) -> None:
        self.ddps = ddps

    def class_delays(
        self, rates: Sequence[float], aggregate_fcfs_delay: float
    ) -> list[float]:
        """Evaluate Eq 6 for the given class rates and d(lambda).

        ``aggregate_fcfs_delay`` is d(lambda): the mean queueing delay of
        the combined traffic through a FCFS server of the same capacity
        (measure it with :class:`repro.core.conservation` helpers or the
        M/G/1 formula for Poisson inputs).
        """
        deltas = self.ddps.deltas
        if len(rates) != len(deltas):
            raise ConfigurationError(
                f"got {len(rates)} rates for {len(deltas)} classes"
            )
        if any(r < 0 for r in rates) or sum(rates) <= 0:
            raise ConfigurationError(f"rates must be non-negative, sum > 0: {rates}")
        if aggregate_fcfs_delay < 0:
            raise ConfigurationError("d(lambda) must be non-negative")
        total_rate = sum(rates)
        weight = sum(d * r for d, r in zip(deltas, rates))
        scale = total_rate * aggregate_fcfs_delay / weight
        return [d * scale for d in deltas]

    # ------------------------------------------------------------------
    # The four dynamics properties of Section 3 (informal monotonicity
    # statements made precise and executable).  Each returns the model
    # delays before/after the perturbation so tests can assert the
    # claimed direction of change.
    # ------------------------------------------------------------------
    def delays_after_rate_shift(
        self,
        rates: Sequence[float],
        aggregate_fcfs_delay_before: float,
        aggregate_fcfs_delay_after: float,
        from_class: int,
        to_class: int,
        fraction: float,
    ) -> tuple[list[float], list[float]]:
        """Property 4's perturbation: move load between classes.

        Moves ``fraction`` of class ``from_class``'s rate to ``to_class``
        (aggregate unchanged, so the two d(lambda) arguments are usually
        equal) and returns (delays_before, delays_after).
        """
        if not 0 <= fraction <= 1:
            raise ConfigurationError(f"fraction must be in [0, 1]: {fraction}")
        before = self.class_delays(rates, aggregate_fcfs_delay_before)
        shifted = list(rates)
        moved = shifted[from_class] * fraction
        shifted[from_class] -= moved
        shifted[to_class] += moved
        after = self.class_delays(shifted, aggregate_fcfs_delay_after)
        return before, after


class AdditiveDelayModel:
    """The additive alternative (Eq 3): d_i - d_j = D_ij in heavy load.

    Given offsets s_1 < ... < s_N of the additive scheduler, the
    heavy-load spacing is D_ij = s_j - s_i; combined with the
    conservation law the class delays solve

        d_i = d_N + (s_N - s_i),
        sum_i lambda_i d_i = lambda d(lambda).
    """

    def __init__(self, offsets: Sequence[float]) -> None:
        values = tuple(float(s) for s in offsets)
        if len(values) < 2:
            raise ConfigurationError("differentiation needs >= 2 classes")
        if any(b <= a for a, b in zip(values, values[1:])):
            raise ConfigurationError(f"offsets must be increasing: {values}")
        self.offsets = values

    def spacing(self, i: int, j: int) -> float:
        """Heavy-load delay difference d_i - d_j (i < j, 0-based)."""
        return self.offsets[j] - self.offsets[i]

    def class_delays(
        self, rates: Sequence[float], aggregate_fcfs_delay: float
    ) -> list[float]:
        """Solve the conservation law for the additive spacing."""
        if len(rates) != len(self.offsets):
            raise ConfigurationError(
                f"got {len(rates)} rates for {len(self.offsets)} classes"
            )
        total_rate = sum(rates)
        if total_rate <= 0:
            raise ConfigurationError("aggregate rate must be positive")
        s_last = self.offsets[-1]
        # sum_i lambda_i (d_N + s_N - s_i) = lambda d(lambda)
        offset_load = sum(
            r * (s_last - s) for r, s in zip(rates, self.offsets)
        )
        d_last = (total_rate * aggregate_fcfs_delay - offset_load) / total_rate
        return [d_last + (s_last - s) for s in self.offsets]
