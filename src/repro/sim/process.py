"""Coroutine processes on top of the event kernel.

The library's own components are callback-driven for speed, but
protocol logic (handshakes, retransmits, closed control loops) is far
clearer as sequential code.  This module adds a minimal SimPy-style
layer:

* ``spawn(sim, generator)`` runs a generator as a process.  The
  generator may ``yield``:

  - a ``float``/``int`` -- sleep for that long;
  - an :class:`Event` -- wait until it is triggered (the ``yield``
    evaluates to the event's value);
  - a :class:`Process` -- wait for that process to finish (evaluates
    to its return value).

* :class:`Event` -- one-shot signal carrying a value.
* :class:`AsyncQueue` -- unbounded FIFO with blocking ``get``.

Example
-------
>>> from repro.sim import Simulator
>>> from repro.sim.process import spawn
>>> sim = Simulator()
>>> log = []
>>> def worker():
...     yield 5.0
...     log.append(("woke", sim.now))
>>> _ = spawn(sim, worker())
>>> sim.run()
>>> log
[('woke', 5.0)]
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from ..errors import SimulationError
from .engine import Simulator

__all__ = ["Event", "Process", "AsyncQueue", "spawn"]


class Event:
    """One-shot signal; processes yield it to wait for :meth:`succeed`."""

    __slots__ = ("sim", "_value", "_triggered", "_waiters")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._value: Any = None
        self._triggered = False
        self._waiters: list["Process"] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Trigger the event; wakes every waiting process *now*."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim.schedule(self.sim.now, process._resume, value)

    def _add_waiter(self, process: "Process") -> None:
        if self._triggered:
            self.sim.schedule(self.sim.now, process._resume, self._value)
        else:
            self._waiters.append(process)


class Process:
    """A generator being driven by the simulator."""

    __slots__ = ("sim", "_generator", "done", "_finished")

    def __init__(self, sim: Simulator, generator: Generator) -> None:
        self.sim = sim
        self._generator = generator
        #: Triggered with the generator's return value on completion.
        self.done = Event(sim)
        self._finished = False
        sim.schedule(sim.now, self._resume, None)

    @property
    def finished(self) -> bool:
        return self._finished

    # ------------------------------------------------------------------
    def _resume(self, value: Any = None) -> None:
        # Default handles the kernel's no-payload convention (a None
        # payload invokes the callback with zero arguments).
        if self._finished:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self._finished = True
            self.done.succeed(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"cannot sleep a negative time: {yielded}")
            self.sim.schedule(self.sim.now + yielded, self._resume, None)
        elif isinstance(yielded, Event):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.done._add_waiter(self)
        else:
            raise SimulationError(
                f"process yielded unsupported value: {yielded!r} "
                "(expected a delay, an Event, or a Process)"
            )


class AsyncQueue:
    """Unbounded FIFO whose ``get`` blocks the calling process."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Enqueue; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event to ``yield`` on; resolves to the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


def spawn(sim: Simulator, generator: Generator) -> Process:
    """Run ``generator`` as a process; returns its :class:`Process`."""
    return Process(sim, generator)
