"""Cancellable-event facade for the discrete-event kernel.

The kernel's heap holds plain ``(time, seq, callback, payload)`` tuples
ordered by time and by insertion sequence for ties, so heap comparisons
never reach the callbacks (callables are not orderable) and stay in C.
Only :meth:`repro.sim.engine.Simulator.schedule_cancellable` allocates
this thin :class:`EventHandle` facade, which supports cancellation
without the O(n) cost of removing an entry from the heap: cancelled
handles are skipped when popped.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["EventHandle"]


class EventHandle:
    """Handle to a scheduled event; allows cancellation.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    callback:
        Zero- or one-argument callable invoked at ``time``.  ``None``
        once cancelled.
    payload:
        Optional argument passed to the callback; ``None`` means the
        callback is invoked with no arguments.
    """

    __slots__ = ("time", "seq", "callback", "payload")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        payload: Any = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.payload = payload

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.callback = None
        self.payload = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self.callback is None

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else getattr(
            self.callback, "__qualname__", repr(self.callback)
        )
        return f"EventHandle(t={self.time:.6g}, seq={self.seq}, {state})"
