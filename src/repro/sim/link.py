"""Output link: a work-conserving server driving a scheduler.

The link is the paper's forwarding engine for one hop: packets arrive
(from sources or an upstream node), join the scheduler's per-class
FIFOs, and are transmitted one at a time at ``capacity`` bytes per time
unit.  By default the link is lossless (unbounded buffers), matching the
paper's stable ECN-regulated operating assumption (Section 3); an
optional packet-count buffer limit plus a drop policy turn it into a
lossy multiplexer for the loss-differentiation extension.

Departed packets are handed to ``target.receive(packet)`` (next hop or
sink) and reported to the attached monitors.

The runtime invariant checker (:mod:`repro.invariants`) attaches to a
link by *replacing bound methods on the instance* (``receive`` and
``_complete_service``), so an unchecked link runs the exact original
code with no hook branches; ``_start_service`` deliberately looks up
``self._complete_service`` at call time so the per-instance override
takes effect.
"""

from __future__ import annotations

from typing import Optional, Protocol, TYPE_CHECKING

from ..errors import ConfigurationError
from .engine import Simulator
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..dropping.base import DropPolicy
    from ..schedulers.base import Scheduler

__all__ = ["Link", "PacketSink", "Receiver"]


class Receiver(Protocol):
    """Anything that can accept a departed packet (next hop, sink...)."""

    def receive(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class PacketSink:
    """Terminal receiver: counts packets and optionally keeps them."""

    def __init__(self, keep_packets: bool = False) -> None:
        self.received = 0
        self.keep_packets = keep_packets
        self.packets: list[Packet] = []

    def receive(self, packet: Packet) -> None:
        self.received += 1
        if self.keep_packets:
            self.packets.append(packet)


class Link:
    """Single-server transmission link with pluggable scheduler."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: "Scheduler",
        capacity: float,
        target: Optional[Receiver] = None,
        name: str = "link",
        buffer_packets: Optional[int] = None,
        drop_policy: Optional["DropPolicy"] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"link capacity must be positive: {capacity}")
        if buffer_packets is not None and buffer_packets < 1:
            raise ConfigurationError("buffer_packets must be >= 1 when set")
        if drop_policy is not None and buffer_packets is None:
            raise ConfigurationError("a drop policy requires buffer_packets")
        self.sim = sim
        self.scheduler = scheduler
        self.capacity = capacity
        # Schedulers that need the link rate (e.g. BPR's Eq 9) expose
        # bind_capacity; bind it unless the caller already fixed one.
        bind = getattr(scheduler, "bind_capacity", None)
        if bind is not None and getattr(scheduler, "capacity", None) is None:
            bind(capacity)
        self.target: Receiver = target if target is not None else PacketSink()
        self.name = name
        self.buffer_packets = buffer_packets
        self.drop_policy = drop_policy
        self.monitors: list = []

        self.busy = False
        self._in_service: Optional[Packet] = None
        # Counters (arrivals/departures are per link; drops only with a
        # bounded buffer).
        self.arrivals = 0
        self.departures = 0
        self.drops = 0
        self.drops_per_class = [0] * scheduler.num_classes
        self.bytes_sent = 0.0
        self.busy_time = 0.0
        self._busy_since = 0.0

    # ------------------------------------------------------------------
    def add_monitor(self, monitor) -> None:
        """Attach an object with ``on_departure(packet, now)``."""
        self.monitors.append(monitor)

    @property
    def backlog_packets(self) -> int:
        """Queued packets, excluding the one in service."""
        return self.scheduler.queues.total_packets

    @property
    def in_service(self) -> Optional[Packet]:
        """The packet currently being transmitted, if any.

        Exposed read-only for instrumentation (monitors, the invariant
        checker); the link alone mutates the underlying slot.
        """
        return self._in_service

    @property
    def busy_since(self) -> float:
        """Start time of the current busy period (valid while ``busy``)."""
        return self._busy_since

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Packet arrival at this hop."""
        now = self.sim.now
        packet.arrived_at = now
        self.arrivals += 1
        if self.drop_policy is not None:
            self.drop_policy.on_arrival(packet.class_id, now)
        if (
            self.buffer_packets is not None
            and self.backlog_packets >= self.buffer_packets
        ):
            if not self._drop_for(packet):
                return  # arriving packet itself was dropped
        self.scheduler.enqueue(packet, now)
        if not self.busy:
            self._begin_busy_period(now)
            self._start_service()

    def _drop_for(self, arriving: Packet) -> bool:
        """Make room for ``arriving``; return False if *it* was dropped."""
        if self.drop_policy is None:
            # Plain tail drop of the arriving packet.
            self.drops += 1
            self.drops_per_class[arriving.class_id] += 1
            return False
        victim_class = self.drop_policy.choose_victim(
            self.scheduler.queues, arriving, self.sim.now
        )
        if victim_class is None:
            self.drops += 1
            self.drops_per_class[arriving.class_id] += 1
            self.drop_policy.on_drop(arriving.class_id, self.sim.now)
            return False
        self.scheduler.queues.pop_tail(victim_class)
        self.drops += 1
        self.drops_per_class[victim_class] += 1
        self.drop_policy.on_drop(victim_class, self.sim.now)
        return True

    # ------------------------------------------------------------------
    def _begin_busy_period(self, now: float) -> None:
        self.busy = True
        self._busy_since = now

    def _start_service(self) -> None:
        now = self.sim.now
        packet = self.scheduler.select(now)
        packet.service_start = now
        self._in_service = packet
        self.sim.schedule(
            now + packet.size / self.capacity, self._complete_service, packet
        )

    def _complete_service(self, packet: Packet) -> None:
        now = self.sim.now
        packet.departed_at = now
        packet.hop_delays.append(packet.service_start - packet.arrived_at)
        self.departures += 1
        self.bytes_sent += packet.size
        self._in_service = None
        scheduler = self.scheduler
        scheduler.on_departure(packet, now)
        for monitor in self.monitors:
            monitor.on_departure(packet, now)
        self.target.receive(packet)
        if scheduler.queues.total_packets:
            # Inlined _start_service (one departure-to-service handoff
            # per transmitted packet makes this the hottest link path).
            # ``scheduler.select`` and ``self._complete_service`` stay
            # call-time lookups so per-instance overrides (the invariant
            # checker) keep intercepting both.
            nxt = scheduler.select(now)
            nxt.service_start = now
            self._in_service = nxt
            self.sim.schedule(
                now + nxt.size / self.capacity, self._complete_service, nxt
            )
        else:
            self.busy = False
            self.busy_time += now - self._busy_since

    # ------------------------------------------------------------------
    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the server was transmitting.

        If the link is busy at the end of the run the open busy period is
        counted up to ``now``.  ``horizon`` defaults to the current clock.
        """
        total = self.busy_time
        if self.busy:
            total += self.sim.now - self._busy_since
        span = horizon if horizon is not None else self.sim.now
        return total / span if span > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Link({self.name!r}, capacity={self.capacity}, "
            f"scheduler={self.scheduler.name})"
        )
